"""Empirical estimators over observed path states.

:class:`PathObservations` wraps the snapshot × path boolean matrix of path
congestion verdicts and implements both measurement protocols:

* :class:`~repro.core.interfaces.PathGoodProvider` — ``log P(Y_i = 0)``
  and ``log P(Y_i = 0, Y_j = 0)`` as empirical frequencies, feeding the
  practical algorithm;
* :class:`~repro.core.interfaces.PathStateProvider` — empirical
  frequencies of exact congested-path sets, feeding the theorem algorithm.

Zero-count smoothing: an event never observed in ``N`` snapshots gets
frequency ``1/(2N)`` instead of 0, keeping logarithms finite.  This is the
usual "half a count" continuity correction; its effect vanishes as ``N``
grows and is documented in DESIGN.md.

Every estimator is backed by a *batch kernel* — one NumPy operation over
all paths (or all requested pairs) at once:

* single-path good counts come from one column sum;
* joint good counts come from the cached Gram matrix ``good.T @ good``
  (or an indexed gather for small queries), never a per-pair Python loop;
* exact congested-set counts come from packing each snapshot row into
  bytes (:func:`numpy.packbits`) and running one ``np.unique`` over the
  packed rows.

The scalar accessors (``p_good``, ``log_good_pair``, ...) are thin
wrappers over those kernels, so existing callers keep working while bulk
consumers (the equation builder, the theorem algorithm) use the batch
APIs directly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasurementError

__all__ = ["PathObservations"]

#: Below this many requested pairs a direct column gather beats building
#: (and caching) the full path × path Gram matrix.
_GRAM_QUERY_THRESHOLD = 64


class PathObservations:
    """Observed path congestion verdicts for one experiment.

    Args:
        path_states: Boolean matrix, ``path_states[t, i]`` true when path
            ``P_i`` was congested during snapshot ``t``.
    """

    def __init__(self, path_states: np.ndarray) -> None:
        states = np.asarray(path_states)
        if states.ndim != 2:
            raise MeasurementError(
                f"path_states must be 2-D (snapshot × path), got shape "
                f"{states.shape}"
            )
        if states.shape[0] < 1:
            raise MeasurementError("need at least one snapshot")
        self._states = states.astype(bool)
        self._n_snapshots, self._n_paths = self._states.shape
        self._good = ~self._states
        self._good_counts = self._good.sum(axis=0).astype(np.int64)
        self._mask_counts: dict[int, int] | None = None
        self._log_good_all: np.ndarray | None = None
        self._joint_gram: np.ndarray | None = None
        self._packed_rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_snapshots(self) -> int:
        return self._n_snapshots

    @property
    def n_paths(self) -> int:
        return self._n_paths

    @property
    def path_states(self) -> np.ndarray:
        """The raw snapshot × path boolean matrix (read-only view)."""
        view = self._states.view()
        view.flags.writeable = False
        return view

    def congestion_frequency(self, path_id: int) -> float:
        """Observed fraction of snapshots with the path congested."""
        self._check_path(path_id)
        return 1.0 - self._good_counts[path_id] / self._n_snapshots

    # ------------------------------------------------------------------
    # Batch kernels
    # ------------------------------------------------------------------
    def _smooth_counts(self, counts: np.ndarray) -> np.ndarray:
        """Vectorised half-count smoothing of event counts."""
        n = self._n_snapshots
        return np.where(
            counts <= 0,
            0.5 / n,
            np.where(counts >= n, 1.0 - 0.5 / n, counts / n),
        )

    def p_good_all(self) -> np.ndarray:
        """Smoothed ``P(Y_i = 0)`` for every path, in one shot."""
        return self._smooth_counts(self._good_counts)

    def log_good_all(self) -> np.ndarray:
        """``y_i = log P(Y_i = 0)`` for every path (cached)."""
        if self._log_good_all is None:
            self._log_good_all = np.log(self.p_good_all())
            self._log_good_all.flags.writeable = False
        return self._log_good_all

    def joint_good_gram(self) -> np.ndarray:
        """``G[i, j]`` = number of snapshots with paths i and j both good.

        Computed once as ``good.T @ good`` and cached; the float
        accumulation is exact because counts are bounded by the snapshot
        count.
        """
        if self._joint_gram is None:
            # float32 matmul is exact for sums below 2^24 and twice as
            # fast; fall back to float64 for absurdly long experiments.
            dtype = np.float32 if self._n_snapshots < 2**24 else np.float64
            good = self._good.astype(dtype)
            self._joint_gram = (good.T @ good).astype(np.int64)
            self._joint_gram.flags.writeable = False
        return self._joint_gram

    def _check_pairs(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise MeasurementError(
                f"pairs must have shape (m, 2), got {pairs.shape}"
            )
        if pairs.size and (
            pairs.min() < 0 or pairs.max() >= self._n_paths
        ):
            raise MeasurementError(
                f"pair path ids out of range 0..{self._n_paths - 1}"
            )
        return pairs

    def joint_good_counts(self, pairs) -> np.ndarray:
        """Joint good counts for an ``(m, 2)`` array of path-id pairs."""
        pairs = self._check_pairs(pairs)
        if pairs.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        if (
            self._joint_gram is None
            and pairs.shape[0] < _GRAM_QUERY_THRESHOLD
        ):
            both = self._good[:, pairs[:, 0]] & self._good[:, pairs[:, 1]]
            return both.sum(axis=0).astype(np.int64)
        gram = self.joint_good_gram()
        return gram[pairs[:, 0], pairs[:, 1]]

    def p_good_pairs(self, pairs) -> np.ndarray:
        """Smoothed ``P(Y_i = 0, Y_j = 0)`` for many pairs at once."""
        return self._smooth_counts(self.joint_good_counts(pairs))

    def log_good_pairs(self, pairs) -> np.ndarray:
        """``y_ij`` (paper Eq. 10 left-hand side) for many pairs at once."""
        return np.log(self.p_good_pairs(pairs))

    # ------------------------------------------------------------------
    # PathGoodProvider protocol (scalar wrappers over the batch kernels)
    # ------------------------------------------------------------------
    def _smooth(self, count: int) -> float:
        if count <= 0:
            return 0.5 / self._n_snapshots
        if count >= self._n_snapshots:
            return 1.0 - 0.5 / self._n_snapshots
        return count / self._n_snapshots

    def p_good(self, path_id: int) -> float:
        """Smoothed ``P(Y_i = 0)`` estimate."""
        self._check_path(path_id)
        return self._smooth(int(self._good_counts[path_id]))

    def log_good(self, path_id: int) -> float:
        """``y_i = log P(Y_i = 0)`` (paper Eq. 9 left-hand side)."""
        self._check_path(path_id)
        return float(self.log_good_all()[path_id])

    def p_good_pair(self, path_a: int, path_b: int) -> float:
        """Smoothed ``P(Y_i = 0, Y_j = 0)`` estimate."""
        self._check_path(path_a)
        self._check_path(path_b)
        return float(self.p_good_pairs([[path_a, path_b]])[0])

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        """``y_ij`` (paper Eq. 10 left-hand side)."""
        self._check_path(path_a)
        self._check_path(path_b)
        return float(self.log_good_pairs([[path_a, path_b]])[0])

    # ------------------------------------------------------------------
    # PathStateProvider protocol
    # ------------------------------------------------------------------
    def _ensure_packed_rows(self) -> np.ndarray:
        """Each snapshot row packed into bytes, little-endian bit order,
        so byte ``k`` bit ``j`` is path ``8k + j`` — the byte sequence of
        the row *is* the congested-path bitmask."""
        if self._packed_rows is None:
            self._packed_rows = np.packbits(
                self._states, axis=1, bitorder="little"
            )
        return self._packed_rows

    def _ensure_mask_counts(self) -> dict[int, int]:
        if self._mask_counts is None:
            packed = self._ensure_packed_rows()
            unique, counts = np.unique(packed, axis=0, return_counts=True)
            self._mask_counts = {
                int.from_bytes(row.tobytes(), "little"): int(count)
                for row, count in zip(unique, counts)
            }
        return self._mask_counts

    def p_congested_mask(self, mask: int) -> float:
        """Empirical ``P(ψ(S) = F)`` for the exact path set ``F``.

        Unlike the good-probability estimators this is *not* smoothed: the
        theorem algorithm sums these over disjoint events, and smoothing
        every mask would inflate total probability mass.  A never-observed
        state simply has empirical probability 0.
        """
        return self._ensure_mask_counts().get(mask, 0) / self._n_snapshots

    def observed_masks(self) -> dict[int, int]:
        """``{congested-path mask: count}`` over all snapshots."""
        return dict(self._ensure_mask_counts())

    # ------------------------------------------------------------------
    def congested_mask_of_snapshot(self, snapshot: int) -> int:
        """Bitmask of congested paths during one snapshot (for the
        localization extension)."""
        if not 0 <= snapshot < self._n_snapshots:
            raise MeasurementError(
                f"snapshot {snapshot} out of range 0..{self._n_snapshots - 1}"
            )
        row = self._ensure_packed_rows()[snapshot]
        return int.from_bytes(row.tobytes(), "little")

    def _check_path(self, path_id: int) -> None:
        if not 0 <= path_id < self._n_paths:
            raise MeasurementError(
                f"path id {path_id} out of range 0..{self._n_paths - 1}"
            )

    def __repr__(self) -> str:
        return (
            f"PathObservations(n_snapshots={self._n_snapshots}, "
            f"n_paths={self._n_paths})"
        )
