"""The asyncio HTTP/1.1 front end of the tomography service.

Hand-built on :func:`asyncio.start_server` — stdlib only, like the dist
wire.  Request bodies and responses are JSON.  Endpoints:

=========  =================================  ===================================
Method     Path                               Purpose
=========  =================================  ===================================
GET        ``/health``                        Liveness + topology count
GET        ``/stats``                         Prep-registry / batcher statistics
GET        ``/topologies``                    List loaded topologies
POST       ``/topologies``                    Load (generator spec or instance)
DELETE     ``/topologies/<fp>``               Evict one topology
POST       ``/topologies/<fp>/query``         Run a query (``kind`` in body)
POST       ``/topologies/<fp>/localize``      Sugar: ``kind=localization``
POST       ``/topologies/<fp>/identifiability``  Sugar: ``kind=identifiability``
POST       ``/topologies/<fp>/stream``        Window uploads → chunked deltas
=========  =================================  ===================================

Status mapping: bad payloads → 400, unknown topology/path → 404, store
at capacity → 409, batcher queue full (backpressure) → 429, shutting
down → 503.  Query execution itself happens on a worker thread through
:func:`repro.eval.parallel.run_scenario_tasks`, so answers are
bit-identical to the batch CLI's for the same seeds.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import time

from repro.eval.parallel import run_scenario_tasks
from repro.serve.batching import BatcherClosed, BatcherFull, QueryBatcher
from repro.serve.queries import encode_vectors, query_tasks, validate_query
from repro.serve.registry import StoreFull, TopologyStore, instance_from_payload
from repro.serve.stream import StepFailure

__all__ = ["TomographyService", "serve_forever"]

#: Upper bound on request bodies (full instance documents are the
#: largest legitimate payload; anything bigger is a client bug).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class TomographyService:
    """A resident tomography query engine behind an HTTP/1.1 socket.

    Args:
        host / port: Bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port` after :meth:`start`).
        max_topologies: Topology-store capacity.
        workers: Engine worker knob per batch (1 = in-process serial;
            larger values use a local process pool per batch).
        batch_max / flush_interval / max_pending: Batcher knobs (see
            :class:`repro.serve.batching.QueryBatcher`).
        options: :class:`repro.core.correlation_algorithm.AlgorithmOptions`
            shared by every query (must match the batch CLI's for
            bit-identical answers).
        cache: Optional :class:`repro.eval.cache.TrialCache`; repeated
            identical queries then load from disk.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_topologies: int = 4,
        workers: int | None = 1,
        batch_max: int = 8,
        flush_interval: float = 0.005,
        max_pending: int = 64,
        options=None,
        cache=None,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.options = options
        self.cache = cache
        self._batcher_knobs = dict(
            batch_max=batch_max,
            flush_interval=flush_interval,
            max_pending=max_pending,
        )
        self.store = TopologyStore(max_topologies=max_topologies)
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Query execution (worker thread)
    # ------------------------------------------------------------------
    def _make_batcher(self, instance) -> QueryBatcher:
        return QueryBatcher(
            functools.partial(self._run_batch, instance),
            **self._batcher_knobs,
        )

    def _run_batch(self, instance, queries: list) -> list[dict]:
        """Execute one coalesced batch through the scenario engine.

        Tasks keep per-query pre-spawned seeds, so coalescing changes
        throughput only — each query's answer is the one it would get
        alone (and identical to the batch CLI's).

        Callable payloads are streaming window-update jobs
        (:meth:`repro.serve.stream.StreamSession.step` closures); they
        run directly on this worker thread, in batch order, sharing the
        per-topology single-flight pipeline with ordinary queries.
        """
        results: list = [None] * len(queries)
        positions, tasks = [], []
        for position, query in enumerate(queries):
            if callable(query):
                # Isolate stream-job failures: an exception from
                # run_batch would fail every co-batched query, so a bad
                # window must settle only its own submission.
                try:
                    results[position] = query()
                except Exception as exc:
                    results[position] = StepFailure(exc)
            else:
                positions.append(position)
                tasks.extend(query_tasks(query, group=position))
        if tasks:
            task_results = run_scenario_tasks(
                instance,
                tasks,
                config=None,
                options=self.options,
                workers=self.workers,
                cache=self.cache,
                registry=self.store.prep_registry,
            )
            for position, result in zip(positions, task_results):
                results[position] = result
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Stop accepting, drain batchers (pending queries fail 503)."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for entry in self.store.entries():
            await entry.batcher.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, raw_path, _version = (
                        request_line.decode("latin-1").split(None, 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}
                    )
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "bad Content-Length"}
                    )
                    break
                if length > MAX_BODY_BYTES:
                    await self._respond(
                        writer,
                        413,
                        {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                path = raw_path.split("?", 1)[0]
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    routed = await self._route(
                        method, path, body, writer=writer,
                        keep_alive=keep_alive,
                    )
                except _HttpError as exc:
                    routed = exc.status, {"error": str(exc)}
                except Exception as exc:  # engine/runner failure
                    routed = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
                if routed is None:
                    # Streaming route: the response (chunked) was already
                    # written by the handler.
                    if not keep_alive:
                        break
                    continue
                status, payload = routed
                await self._respond(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self, writer, status: int, payload: dict, *, keep_alive: bool = False
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        *,
        writer=None,
        keep_alive: bool = False,
    ) -> tuple[int, dict] | None:
        if self._closing:
            raise _HttpError(503, "service is shutting down")
        parts = [part for part in path.split("/") if part]
        if path == "/health" and method == "GET":
            return 200, {
                "status": "ok",
                "topologies": len(self.store),
                "uptime_s": time.time() - self._started_at,
            }
        if path == "/stats" and method == "GET":
            return 200, self._stats()
        if path == "/topologies":
            if method == "GET":
                return 200, {
                    "topologies": [
                        entry.describe() for entry in self.store.entries()
                    ]
                }
            if method == "POST":
                return await self._load_topology(self._json_body(body))
            raise _HttpError(405, f"{method} not allowed on {path}")
        if len(parts) >= 2 and parts[0] == "topologies":
            fingerprint = parts[1]
            if len(parts) == 2 and method == "DELETE":
                entry = self.store.evict(fingerprint)
                if entry is None:
                    raise _HttpError(
                        404, f"no topology {fingerprint!r} loaded"
                    )
                await entry.batcher.close()
                return 200, {"evicted": fingerprint}
            if len(parts) == 3 and method == "POST":
                action = parts[2]
                kinds = {
                    "query": None,
                    "localize": "localization",
                    "identifiability": "identifiability",
                    "whatif": "whatif",
                }
                if action in kinds:
                    return await self._query(
                        fingerprint, self._json_body(body), kinds[action]
                    )
                if action == "stream":
                    return await self._stream(
                        fingerprint,
                        self._json_body(body),
                        writer,
                        keep_alive=keep_alive,
                    )
        raise _HttpError(404, f"no route for {method} {path}")

    def _stats(self) -> dict:
        return {
            "uptime_s": time.time() - self._started_at,
            "topologies": len(self.store),
            "max_topologies": self.store.max_topologies,
            "prep_registry": self.store.prep_registry.stats(),
            "batchers": {
                entry.fingerprint: dict(
                    entry.batcher.stats, pending=entry.batcher.pending
                )
                for entry in self.store.entries()
            },
        }

    async def _load_topology(self, payload: dict) -> tuple[int, dict]:
        try:
            instance = instance_from_payload(payload)
        except (ValueError, KeyError, TypeError) as exc:
            raise _HttpError(400, f"bad topology payload: {exc}") from None
        loop = asyncio.get_running_loop()
        try:
            # Generation + prep warm-up can take seconds on big
            # instances; keep the event loop responsive meanwhile.
            entry, created = await loop.run_in_executor(
                None,
                functools.partial(
                    self.store.load,
                    instance,
                    name=payload.get("name"),
                    make_batcher=self._make_batcher,
                ),
            )
        except StoreFull as exc:
            raise _HttpError(409, str(exc)) from None
        return (201 if created else 200), entry.describe()

    async def _query(
        self, fingerprint: str, query: dict, kind: str | None
    ) -> tuple[int, dict]:
        entry = self.store.get(fingerprint)
        if entry is None:
            raise _HttpError(404, f"no topology {fingerprint!r} loaded")
        if kind is not None:
            query = dict(query, kind=kind)
        try:
            # Reject bad queries before queueing — including what-if
            # demands that do not bind to this topology, which would
            # otherwise fail mid-batch and take co-batched queries down.
            validate_query(entry.instance, query)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        try:
            result = await entry.batcher.submit(query)
        except BatcherFull as exc:
            raise _HttpError(429, str(exc)) from None
        except BatcherClosed as exc:
            raise _HttpError(503, str(exc)) from None
        entry.queries += 1
        return 200, {
            "fingerprint": fingerprint,
            "result": encode_vectors(result),
        }

    # ------------------------------------------------------------------
    # Streaming (/topologies/<fp>/stream)
    # ------------------------------------------------------------------
    async def _stream(
        self, fingerprint: str, payload: dict, writer, *, keep_alive: bool
    ) -> None:
        """Per-window verdict deltas over a chunked HTTP/1.1 response.

        The request body carries the whole window sequence; each window
        is submitted through the topology's batcher (keeping the
        single-flight ordering and 429 backpressure of ordinary
        queries), and its delta is written as one chunk as soon as the
        update completes.  The final chunk carries the full-history
        estimates, bit-identical to a batch inference over the
        concatenated windows.  Validation errors before the first
        window fail with ordinary status responses; failures mid-stream
        are reported as a terminal ``{"error": ...}`` line (the status
        line is already on the wire).
        """
        from repro.serve.stream import StreamSession

        entry = self.store.get(fingerprint)
        if entry is None:
            raise _HttpError(404, f"no topology {fingerprint!r} loaded")
        windows = payload.get("windows")
        if not isinstance(windows, list) or not windows:
            raise _HttpError(
                400, "'windows' must be a non-empty list of windows"
            )
        threshold = payload.get("threshold", 0.5)
        max_window = payload.get("max_window")
        try:
            session = StreamSession(
                entry.instance,
                options=self.options,
                registry=self.store.prep_registry,
                threshold=float(threshold),
                max_window=None if max_window is None else int(max_window),
                localize_last=bool(payload.get("localize_last", False)),
            )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad stream parameters: {exc}") from None

        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        try:
            for rows in windows:
                delta = await entry.batcher.submit(
                    functools.partial(session.step, rows)
                )
                if isinstance(delta, StepFailure):
                    raise delta.error
                entry.queries += 1
                await self._write_chunk(writer, delta)
            await self._write_chunk(writer, {"final": session.final()})
        except (BatcherFull, BatcherClosed, ValueError) as exc:
            await self._write_chunk(writer, {"error": str(exc)})
        except Exception as exc:  # engine failure mid-stream
            await self._write_chunk(
                writer, {"error": f"{type(exc).__name__}: {exc}"}
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return None

    @staticmethod
    async def _write_chunk(writer, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8") + b"\n"
        writer.write(f"{len(data):X}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()


async def _serve_until_signalled(service: TomographyService, banner) -> None:
    await service.start()
    if banner is not None:
        banner(service)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await stop.wait()
    finally:
        await service.shutdown()


def serve_forever(service: TomographyService, *, banner=None) -> None:
    """Run *service* until SIGINT/SIGTERM, then shut down cleanly.

    ``banner(service)`` is invoked once the socket is bound — the CLI
    prints its machine-parseable "serving on host:port" line there.
    """
    asyncio.run(_serve_until_signalled(service, banner))
