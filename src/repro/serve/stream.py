"""Streaming sessions for the ``/stream`` endpoint.

One :class:`StreamSession` holds the per-connection estimator state — an
appendable :class:`~repro.simulate.observations.PathObservations` plus a
:class:`~repro.core.streaming.StreamingTomography` whose equation
structure is cached against the service's shared prepared registry.  The
HTTP handler submits each uploaded window through the topology's
:class:`~repro.serve.batching.QueryBatcher` (sharing the single-flight
ordering and backpressure of ordinary queries) and relays the returned
verdict delta as one chunk of the chunked response.

Wire shapes (JSON):

* upload — ``{"windows": [[[0|1, ...], ...], ...], "threshold": 0.5,
  "max_window": null, "localize_last": false}``;
* per-window delta — ``{"window", "timestamp", "n_snapshots",
  "onsets", "clears", "changed", "n_congested"}``;
* final line — ``{"final": {... encoded float64 vectors ...}}`` with the
  full-history probabilities, bit-identical to a batch
  :func:`~repro.core.correlation_algorithm.infer_congestion` over the
  concatenated windows.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import StreamingTomography, WindowVerdict
from repro.serve.queries import encode_vectors
from repro.simulate.observations import PathObservations

__all__ = ["StepFailure", "StreamSession", "decode_window", "verdict_delta"]


class StepFailure:
    """A stream step's exception, carried as a batch *result*.

    The batcher fails every job in a batch when ``run_batch`` raises, so
    stream-job errors are returned as values and re-raised only on the
    submitting side.
    """

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def decode_window(rows, n_paths: int) -> np.ndarray:
    """Validate one uploaded window into a snapshot × path bool matrix."""
    states = np.asarray(rows)
    if states.ndim != 2 or states.dtype == object:
        raise ValueError(
            "window must be a rectangular list of snapshot rows"
        )
    if states.shape[0] < 1:
        raise ValueError("window must contain at least one snapshot")
    if states.shape[1] != n_paths:
        raise ValueError(
            f"window rows have {states.shape[1]} paths, topology has "
            f"{n_paths}"
        )
    return states.astype(bool)


def verdict_delta(verdict: WindowVerdict) -> dict:
    """The JSON-ready per-window delta (verdict diff + event time)."""
    delta = {
        "window": verdict.window_index,
        "timestamp": verdict.timestamp,
        "n_snapshots": verdict.n_snapshots,
        "onsets": list(verdict.onsets),
        "clears": list(verdict.clears),
        "changed": verdict.changed,
        "n_congested": int(verdict.congested.sum()),
    }
    if verdict.localization is not None:
        delta["localized_links"] = sorted(
            int(k) for k in verdict.localization.congested_links
        )
    return delta


class StreamSession:
    """Estimator state for one ``/stream`` request.

    ``step`` runs on the batcher's worker thread; the handler submits
    windows strictly in order and awaits each result, so the session is
    never touched concurrently.
    """

    def __init__(
        self,
        instance,
        *,
        options=None,
        registry=None,
        threshold: float = 0.5,
        max_window: int | None = None,
        localize_last: bool = False,
    ) -> None:
        self._n_paths = instance.topology.n_paths
        self._max_window = max_window
        self._observations: PathObservations | None = None
        self._engine = StreamingTomography(
            instance.topology,
            instance.correlation,
            options=options,
            threshold=threshold,
            localize_last=localize_last,
            registry=registry,
        )

    def step(self, rows) -> dict:
        """Append one uploaded window and return its verdict delta."""
        states = decode_window(rows, self._n_paths)
        if self._observations is None:
            self._observations = PathObservations(
                states, max_window=self._max_window
            )
        else:
            self._observations.append_window(states)
        return verdict_delta(self._engine.update(self._observations))

    def final(self) -> dict:
        """The full-history estimates after the last window."""
        if self._observations is None:
            raise ValueError("no windows were streamed")
        result = self._engine.template().infer(self._observations)
        return {
            "n_snapshots": int(self._observations.n_snapshots),
            "n_evicted": int(self._observations.n_evicted),
            "result": encode_vectors(
                {
                    "probabilities": result.congestion_probabilities,
                    "log_good": result.log_good,
                }
            ),
        }
