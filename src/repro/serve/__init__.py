"""Tomography-as-a-service: a resident async query engine.

The batch CLI rebuilds the instance, routing, and measurement-independent
equation prep on every invocation.  This package keeps all of that warm
in a long-lived process instead: topologies are loaded once into a
bounded registry (with their :class:`repro.core.prepared.PreparedTopology`
state), and localization / identifiability queries are answered over
HTTP, coalesced per topology into chunks that run through the existing
:class:`repro.eval.parallel.TaskExecutor` backends.

Layers (stdlib only — the server is hand-built on :mod:`asyncio`, in the
same spirit as the hand-built dist wire):

* :mod:`repro.serve.queries` — query normalisation and the task runners;
  the *same* code path the batch CLI uses, so service answers are
  bit-identical to batch answers for identical seeds.
* :mod:`repro.serve.batching` — per-topology coalescing with a bounded
  queue (backpressure: full queue ⇒ shed).
* :mod:`repro.serve.registry` — the bounded topology store.
* :mod:`repro.serve.stream` — per-connection streaming sessions behind
  the ``/stream`` endpoint (window uploads ⇒ chunked verdict deltas).
* :mod:`repro.serve.server` — the asyncio HTTP/1.1 front end.
* :mod:`repro.serve.client` — a small blocking client for tests,
  benchmarks, and examples.
"""

from repro.serve.batching import BatcherClosed, BatcherFull, QueryBatcher
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.queries import (
    decode_vectors,
    encode_vectors,
    normalize_query,
    query_tasks,
    run_query,
)
from repro.serve.registry import TopologyStore
from repro.serve.server import TomographyService
from repro.serve.stream import StreamSession

__all__ = [
    "QueryBatcher",
    "BatcherFull",
    "BatcherClosed",
    "ServiceClient",
    "ServiceError",
    "normalize_query",
    "query_tasks",
    "run_query",
    "encode_vectors",
    "decode_vectors",
    "TopologyStore",
    "TomographyService",
    "StreamSession",
]
