"""The service's bounded topology store.

Maps instance fingerprints to loaded :class:`TomographyInstance` objects
plus their per-topology batcher.  Loading is explicit (``POST``), so
eviction is too: the store refuses new topologies beyond its capacity
instead of silently dropping one that live clients still query —
operators evict via ``DELETE``.  Each loaded topology's
measurement-independent equation prep is warmed into the service's
:class:`repro.core.prepared.PreparedRegistry` at load time, which is
exactly the state a warm query skips rebuilding.

Only the event loop touches the store, so it needs no locking; the
prepared registry underneath has its own lock because executor worker
threads share it.
"""

from __future__ import annotations

import time

from repro.core.prepared import PreparedRegistry
from repro.io import instance_fingerprint, instance_from_dict
from repro.topogen.brite import generate_brite
from repro.topogen.planetlab import generate_planetlab

__all__ = ["StoreFull", "TopologyEntry", "TopologyStore"]

#: Whitelisted generator parameters per kind — everything else in a
#: ``generator`` payload is rejected so typos fail loudly instead of
#: silently generating a default topology.
_GENERATOR_PARAMS = {
    "brite": {
        "n_ases",
        "routers_per_as",
        "n_paths",
        "as_model",
        "as_edges_per_node",
        "correlation_mode",
        "routing",
        "seed",
    },
    "planetlab": {
        "n_routers",
        "n_vantages",
        "n_paths",
        "graph_model",
        "waxman_alpha",
        "waxman_beta",
        "ba_edges_per_node",
        "cluster_size_range",
        "cluster_fraction",
        "seed",
    },
}


class StoreFull(RuntimeError):
    """The store is at capacity; evict before loading more."""


class TopologyEntry:
    """One loaded topology and its runtime bookkeeping."""

    __slots__ = (
        "fingerprint",
        "name",
        "instance",
        "batcher",
        "loaded_at",
        "queries",
    )

    def __init__(self, fingerprint, name, instance, batcher) -> None:
        self.fingerprint = fingerprint
        self.name = name
        self.instance = instance
        self.batcher = batcher
        self.loaded_at = time.time()
        self.queries = 0

    def describe(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "name": self.name,
            "n_links": self.instance.topology.n_links,
            "n_paths": self.instance.topology.n_paths,
            "n_correlation_sets": self.instance.correlation.n_sets,
            "queries": self.queries,
            "pending": self.batcher.pending,
            "loaded_at": self.loaded_at,
        }


def instance_from_payload(payload: dict):
    """Materialise an instance from a load request body.

    Accepts either ``{"generator": {"kind": ..., ...params}}`` (the
    service generates it, cheap to ship) or ``{"instance": {...}}``
    (a full :func:`repro.io.instance_to_dict` document — required for
    topologies the generators cannot express, e.g. operator-measured
    ones).
    """
    generator = payload.get("generator")
    document = payload.get("instance")
    if (generator is None) == (document is None):
        raise ValueError(
            "exactly one of 'generator' or 'instance' is required"
        )
    if document is not None:
        return instance_from_dict(document)
    if not isinstance(generator, dict):
        raise ValueError("'generator' must be an object")
    params = dict(generator)
    kind = params.pop("kind", None)
    if kind not in _GENERATOR_PARAMS:
        raise ValueError(
            f"generator kind must be one of "
            f"{sorted(_GENERATOR_PARAMS)}, got {kind!r}"
        )
    unknown = sorted(set(params) - _GENERATOR_PARAMS[kind])
    if unknown:
        raise ValueError(
            f"unknown {kind} generator parameter(s) {unknown}"
        )
    if "cluster_size_range" in params:
        params["cluster_size_range"] = tuple(params["cluster_size_range"])
    if kind == "brite":
        return generate_brite(**params).instance
    return generate_planetlab(**params)


class TopologyStore:
    """Fingerprint-keyed store of loaded topologies (bounded, explicit)."""

    def __init__(
        self,
        *,
        max_topologies: int = 4,
        prep_registry: PreparedRegistry | None = None,
    ) -> None:
        if max_topologies < 1:
            raise ValueError(
                f"max_topologies must be >= 1, got {max_topologies}"
            )
        self.max_topologies = max_topologies
        # Sized so every loaded topology keeps its prep warm with room
        # for the occasional ad-hoc correlation structure.
        self.prep_registry = prep_registry or PreparedRegistry(
            capacity=2 * max_topologies
        )
        self._entries: dict[str, TopologyEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> TopologyEntry | None:
        return self._entries.get(fingerprint)

    def entries(self) -> list[TopologyEntry]:
        return list(self._entries.values())

    def load(self, instance, *, name, make_batcher) -> tuple[TopologyEntry, bool]:
        """Register *instance*, warming its equation prep.

        Returns ``(entry, created)`` — re-loading an already-present
        fingerprint is an idempotent no-op.  Raises :class:`StoreFull`
        at capacity.
        """
        fingerprint = instance_fingerprint(instance)
        entry = self._entries.get(fingerprint)
        if entry is not None:
            return entry, False
        if len(self._entries) >= self.max_topologies:
            raise StoreFull(
                f"store holds {len(self._entries)} topologies "
                f"(max {self.max_topologies}); evict one first"
            )
        # Warm the measurement-independent prep now so the first query
        # pays nothing but simulation + inference.
        self.prep_registry.get_or_build(
            instance.topology, instance.correlation
        )
        entry = TopologyEntry(
            fingerprint,
            name or fingerprint[:12],
            instance,
            make_batcher(instance),
        )
        self._entries[fingerprint] = entry
        return entry, True

    def evict(self, fingerprint: str) -> TopologyEntry | None:
        entry = self._entries.pop(fingerprint, None)
        if entry is not None:
            self.prep_registry.evict(
                entry.instance.topology, entry.instance.correlation
            )
        return entry
