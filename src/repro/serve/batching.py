"""Per-topology request batching with bounded-queue backpressure.

Concurrent queries against one topology are coalesced into batches: the
dispatcher takes the first waiting job, then keeps collecting until
either ``batch_max`` jobs are in hand or ``flush_interval`` seconds have
passed since the batch opened, and hands the whole batch to the
injected ``run_batch`` callable on a worker thread.  One batch is in
flight per batcher at a time, so the executor underneath sees chunky,
ordered work instead of a stampede of single-task calls.

Backpressure is a bounded queue: when ``max_pending`` jobs are already
waiting, :meth:`QueryBatcher.submit` raises :class:`BatcherFull`
immediately (the server maps this to ``429``).  On close, queued and
future jobs fail with :class:`BatcherClosed` (mapped to ``503``).

``run_batch`` is injected — ``run_batch(payloads) -> results`` (one
result per payload, same order) — so unit tests can observe coalescing
without standing up the engine.
"""

from __future__ import annotations

import asyncio

__all__ = ["BatcherFull", "BatcherClosed", "QueryBatcher"]


class BatcherFull(RuntimeError):
    """The pending-query queue is at capacity; shed the request."""


class BatcherClosed(RuntimeError):
    """The batcher is draining/closed; no new work is accepted."""


class _Job:
    __slots__ = ("payload", "future")

    def __init__(self, payload, future: asyncio.Future) -> None:
        self.payload = payload
        self.future = future


class QueryBatcher:
    """Coalesce concurrent submissions into bounded batches.

    Args:
        run_batch: Blocking callable executed on a worker thread with the
            list of batched payloads; must return one result per payload
            in order.  An exception fails every job in that batch (jobs
            in *other* batches are unaffected).
        batch_max: Largest batch handed to ``run_batch``.
        flush_interval: Seconds a non-full batch waits for stragglers
            after its first job arrived.
        max_pending: Bound on jobs waiting to be batched; submissions
            beyond it shed with :class:`BatcherFull`.
    """

    def __init__(
        self,
        run_batch,
        *,
        batch_max: int = 8,
        flush_interval: float = 0.005,
        max_pending: int = 64,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if flush_interval < 0:
            raise ValueError(
                f"flush_interval must be >= 0, got {flush_interval}"
            )
        self._run_batch = run_batch
        self._batch_max = batch_max
        self._flush_interval = flush_interval
        self._queue: asyncio.Queue[_Job] = asyncio.Queue(maxsize=max_pending)
        self._closed = False
        self._dispatcher: asyncio.Task | None = None
        self._inflight: list[_Job] = []
        self.stats = {
            "queries": 0,
            "batches": 0,
            "shed": 0,
            "failed": 0,
            "max_batch": 0,
        }

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    async def submit(self, payload):
        """Enqueue one query; resolves to its result.

        Raises :class:`BatcherFull` when the queue is at capacity and
        :class:`BatcherClosed` when the batcher is shut down.
        """
        if self._closed:
            raise BatcherClosed("service is shutting down")
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        job = _Job(payload, asyncio.get_running_loop().create_future())
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.stats["shed"] += 1
            raise BatcherFull(
                f"{self._queue.maxsize} queries already pending"
            ) from None
        self.stats["queries"] += 1
        return await job.future

    async def _collect_batch(self) -> list[_Job]:
        batch = [await self._queue.get()]
        if self._flush_interval > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self._flush_interval
            while len(batch) < self._batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
        else:
            while len(batch) < self._batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        return batch

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            # Jobs cancelled while queued (client gone) need no compute.
            batch = [job for job in batch if not job.future.done()]
            if not batch:
                continue
            self.stats["batches"] += 1
            self.stats["max_batch"] = max(
                self.stats["max_batch"], len(batch)
            )
            self._inflight = batch
            try:
                results = await loop.run_in_executor(
                    None,
                    self._run_batch,
                    [job.payload for job in batch],
                )
            except Exception as exc:
                self.stats["failed"] += len(batch)
                for job in batch:
                    if not job.future.done():
                        job.future.set_exception(exc)
                continue
            finally:
                self._inflight = []
            for job, result in zip(batch, results):
                if not job.future.done():
                    job.future.set_result(result)

    async def close(self) -> None:
        """Stop dispatching and fail everything still queued."""
        self._closed = True
        # A batch interrupted mid-dispatch keeps running on its worker
        # thread (threads cannot be cancelled), but its submitters must
        # not hang — fail them alongside everything still queued.  The
        # snapshot happens *before* the cancel: the dispatch loop's
        # ``finally`` clears ``_inflight`` while the cancellation
        # unwinds, which is earlier than this coroutine resumes.
        leftovers = list(self._inflight)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        leftovers.extend(self._inflight)
        self._inflight = []
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        for job in leftovers:
            if not job.future.done():
                job.future.set_exception(
                    BatcherClosed("service is shutting down")
                )
