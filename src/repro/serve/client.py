"""Blocking HTTP client for the tomography service.

Stdlib :mod:`http.client` with a persistent keep-alive connection —
the shape SNIPPETS' long-lived predictor clients use: connect once,
load the topology once, then issue many cheap queries.  Used by the
integration tests, the service benchmark, and the examples.
"""

from __future__ import annotations

import http.client
import json

import numpy as np

from repro.serve.queries import decode_vectors

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """A non-2xx service response or a transport-level failure.

    Attributes:
        status: HTTP status code (e.g. 429 when shed by backpressure);
            0 when no response arrived at all (socket timeout).
        payload: Decoded JSON error body (``{"error": ...}``).
    """

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"service returned {status}: "
            f"{payload.get('error', payload) if isinstance(payload, dict) else payload}"
        )
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to a :class:`repro.serve.server.TomographyService`.

    Every socket read is bounded by ``timeout`` (seconds): a stalled or
    wedged server surfaces as a clean :class:`ServiceError` (status 0)
    after at most that long, never an unbounded blocking read.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8077, *, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    def _timeout_error(self) -> "ServiceError":
        self.close()
        return ServiceError(
            0,
            {
                "error": (
                    f"no response from {self.host}:{self.port} within "
                    f"{self.timeout}s"
                )
            },
        )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, payload: dict | None = None):
        """One JSON round trip; raises :class:`ServiceError` on non-2xx.

        The keep-alive connection is re-established once if the server
        closed it between requests (idle timeout, restart).
        """
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except TimeoutError:
                # socket.timeout: the server accepted but never answered
                # within self.timeout — fail cleanly, not hang forever.
                raise self._timeout_error() from None
            except (
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
            ):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if response.status >= 300:
            raise ServiceError(response.status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def topologies(self) -> list[dict]:
        return self.request("GET", "/topologies")["topologies"]

    def load_topology(
        self,
        *,
        generator: dict | None = None,
        instance: dict | None = None,
        name: str | None = None,
    ) -> str:
        """Load a topology; returns its fingerprint (idempotent)."""
        payload: dict = {}
        if generator is not None:
            payload["generator"] = generator
        if instance is not None:
            payload["instance"] = instance
        if name is not None:
            payload["name"] = name
        return self.request("POST", "/topologies", payload)["fingerprint"]

    def evict(self, fingerprint: str) -> None:
        self.request("DELETE", f"/topologies/{fingerprint}")

    def query(self, fingerprint: str, query: dict) -> dict:
        """Run one query; returns decoded float64 result vectors."""
        response = self.request(
            "POST", f"/topologies/{fingerprint}/query", query
        )
        return decode_vectors(response["result"])

    def localize(self, fingerprint: str, **params) -> dict:
        return self.query(fingerprint, dict(params, kind="localization"))

    def identifiability(self, fingerprint: str, **params) -> dict:
        return self.query(fingerprint, dict(params, kind="identifiability"))

    def whatif(self, fingerprint: str, demand: dict, **params) -> dict:
        """Run a what-if forecast; returns decoded float64 vectors.

        ``demand`` is a demand-matrix payload (flows, capacities,
        optional shifts); ``params`` take the same knobs as the
        ``predict`` CLI command (``shifts``, ``utilization_threshold``,
        ``exact_max_flows``, ``mc_samples``, simulation window, seed).
        """
        return self.query(
            fingerprint, dict(params, kind="whatif", demand=demand)
        )

    def stream(
        self,
        fingerprint: str,
        windows,
        *,
        threshold: float = 0.5,
        max_window: int | None = None,
        localize_last: bool = False,
    ):
        """Upload windows; iterate per-window verdict deltas as they land.

        A generator over the service's chunked ``/stream`` response: one
        dict per window (``window``, ``timestamp``, ``onsets``,
        ``clears``, ``changed``, ...), then a terminal
        ``{"final": ...}`` dict with the full-history estimates.  A
        mid-stream server error arrives as ``{"error": ...}`` and is
        raised as :class:`ServiceError`.  The generator must be
        exhausted (or closed) before the client issues other requests
        on this connection.
        """
        payload = {
            "windows": [
                np.asarray(window).astype(int).tolist()
                for window in windows
            ],
            "threshold": threshold,
            "max_window": max_window,
            "localize_last": localize_last,
        }
        body = json.dumps(payload).encode()
        connection = self._connect()
        try:
            connection.request(
                "POST",
                f"/topologies/{fingerprint}/stream",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
        except TimeoutError:
            raise self._timeout_error() from None
        if response.status >= 300:
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(response.status, decoded)

        def deltas():
            try:
                while True:
                    try:
                        line = response.readline()
                    except TimeoutError:
                        raise self._timeout_error() from None
                    if not line:
                        break
                    delta = json.loads(line)
                    if "error" in delta:
                        raise ServiceError(500, delta)
                    yield delta
            finally:
                # Drain any unread tail so the keep-alive connection
                # stays usable after an abandoned iteration.
                try:
                    response.read()
                except (OSError, http.client.HTTPException):
                    self.close()

        return deltas()
