"""Blocking HTTP client for the tomography service.

Stdlib :mod:`http.client` with a persistent keep-alive connection —
the shape SNIPPETS' long-lived predictor clients use: connect once,
load the topology once, then issue many cheap queries.  Used by the
integration tests, the service benchmark, and the examples.
"""

from __future__ import annotations

import http.client
import json

from repro.serve.queries import decode_vectors

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """A non-2xx service response.

    Attributes:
        status: HTTP status code (e.g. 429 when shed by backpressure).
        payload: Decoded JSON error body (``{"error": ...}``).
    """

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"service returned {status}: "
            f"{payload.get('error', payload) if isinstance(payload, dict) else payload}"
        )
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to a :class:`repro.serve.server.TomographyService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8077, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, payload: dict | None = None):
        """One JSON round trip; raises :class:`ServiceError` on non-2xx.

        The keep-alive connection is re-established once if the server
        closed it between requests (idle timeout, restart).
        """
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
            ):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if response.status >= 300:
            raise ServiceError(response.status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def topologies(self) -> list[dict]:
        return self.request("GET", "/topologies")["topologies"]

    def load_topology(
        self,
        *,
        generator: dict | None = None,
        instance: dict | None = None,
        name: str | None = None,
    ) -> str:
        """Load a topology; returns its fingerprint (idempotent)."""
        payload: dict = {}
        if generator is not None:
            payload["generator"] = generator
        if instance is not None:
            payload["instance"] = instance
        if name is not None:
            payload["name"] = name
        return self.request("POST", "/topologies", payload)["fingerprint"]

    def evict(self, fingerprint: str) -> None:
        self.request("DELETE", f"/topologies/{fingerprint}")

    def query(self, fingerprint: str, query: dict) -> dict:
        """Run one query; returns decoded float64 result vectors."""
        response = self.request(
            "POST", f"/topologies/{fingerprint}/query", query
        )
        return decode_vectors(response["result"])

    def localize(self, fingerprint: str, **params) -> dict:
        return self.query(fingerprint, dict(params, kind="localization"))

    def identifiability(self, fingerprint: str, **params) -> dict:
        return self.query(fingerprint, dict(params, kind="identifiability"))
