"""Service queries: normalisation, task construction, and runners.

A query is a plain JSON dict (``kind`` plus parameters).  It is turned
into :class:`repro.eval.parallel.ScenarioTask` records whose ``factory``
is a dotted ``"module:attribute"`` task-runner spec, so the *identical*
code executes whether the query arrives over HTTP (dispatched through
the service's batcher and executor), through the batch CLI's ``localize``
command, or inside a pool/dist worker process.  Seeds are pre-spawned
per task exactly like the figure sweeps, which is what makes service
answers bit-identical to batch answers for the same seed.

Results are ``dict[str, float64 ndarray]`` — the one shape every
executor transport and the trial cache already speak.  Variable-length
set results (per-snapshot congested links) are encoded as a counts
vector plus a flattened ids vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.identifiability import (
    check_assumption4,
    unidentifiable_links_structural,
)
from repro.core.localization import localize_map
from repro.eval.parallel import ScenarioTask, scenario_tasks
from repro.eval.runner import run_comparison
from repro.eval.scenario import make_clustered_scenario, resolve_per_set_range
from repro.simulate.experiment import ExperimentConfig
from repro.utils.bitset import bit_count
from repro.utils.rng import clone_generator

__all__ = [
    "LOCALIZATION_RUNNER",
    "IDENTIFIABILITY_RUNNER",
    "WHATIF_RUNNER",
    "QUERY_KINDS",
    "normalize_query",
    "validate_query",
    "query_tasks",
    "run_query",
    "encode_vectors",
    "decode_vectors",
    "run_localization_task",
    "run_identifiability_task",
]

#: Dotted runner specs — resolvable by name in any worker process.
LOCALIZATION_RUNNER = "repro.serve.queries:run_localization_task"
IDENTIFIABILITY_RUNNER = "repro.serve.queries:run_identifiability_task"
WHATIF_RUNNER = "repro.predict.tasks:run_whatif_task"

#: Query kind → (runner spec, parameter defaults).  ``None`` defaults
#: are passed through untouched (e.g. infinite-traffic probing).
QUERY_KINDS: dict[str, tuple[str, dict]] = {
    "localization": (
        LOCALIZATION_RUNNER,
        {
            "congested_fraction": 0.10,
            "per_set_range": "high",
            "n_snapshots": 120,
            "packets_per_path": 400,
            "loc_snapshots": 8,
            "max_nodes": 20_000,
        },
    ),
    "identifiability": (
        IDENTIFIABILITY_RUNNER,
        {"max_subset_size": 2},
    ),
    "whatif": (
        WHATIF_RUNNER,
        {
            "demand": None,  # required — a demand-matrix payload
            "shifts": None,  # default: the matrix's own named shifts
            "utilization_threshold": 0.85,
            "exact_max_flows": 16,
            "mc_samples": 20_000,
            "congested_fraction": 0.10,
            "per_set_range": "high",
            "n_snapshots": 120,
            "packets_per_path": 400,
        },
    ),
}


def _normalize_whatif(kwargs: dict) -> dict:
    """Canonicalise and validate the what-if parameters.

    The demand payload round-trips through :class:`DemandMatrix` so
    equivalent spellings (int vs float rates, missing optional fields)
    produce byte-identical ``factory_kwargs`` — and therefore identical
    cache keys — and malformed payloads fail here with a clear message
    instead of poisoning a service batch at execution time.
    """
    from repro.predict.demand import DemandMatrix, DemandShift

    demand = kwargs.get("demand")
    if demand is None:
        raise ValueError("whatif queries require a 'demand' matrix payload")
    kwargs["demand"] = DemandMatrix.from_payload(demand).to_payload()
    shifts = kwargs.get("shifts")
    if shifts is not None:
        if not isinstance(shifts, list) or not shifts:
            raise ValueError(
                "'shifts' must be a non-empty list of shift objects (or "
                "omitted to use the demand matrix's own)"
            )
        kwargs["shifts"] = [
            DemandShift.from_payload(shift).to_payload() for shift in shifts
        ]
    threshold = kwargs["utilization_threshold"]
    if not isinstance(threshold, (int, float)) or not threshold > 0:
        raise ValueError(
            f"utilization_threshold must be > 0, got {threshold!r}"
        )
    if not isinstance(kwargs["exact_max_flows"], int) or kwargs["exact_max_flows"] < 0:
        raise ValueError(
            f"exact_max_flows must be an integer >= 0, got "
            f"{kwargs['exact_max_flows']!r}"
        )
    if not isinstance(kwargs["mc_samples"], int) or kwargs["mc_samples"] < 1:
        raise ValueError(
            f"mc_samples must be an integer >= 1, got {kwargs['mc_samples']!r}"
        )
    return kwargs


def normalize_query(query: dict) -> tuple[str, dict, int]:
    """Validate a raw query dict into ``(runner, kwargs, seed)``.

    Unknown kinds and unknown parameters fail loudly (they would
    otherwise silently change the cache key without changing the
    computation, or vice versa).  ``per_set_range`` is resolved to its
    canonical tuple here so the service, the CLI, and round-trips
    through JSON codecs all produce the same task kwargs.
    """
    if not isinstance(query, dict):
        raise ValueError(f"query must be an object, got {type(query).__name__}")
    query = dict(query)
    kind = query.pop("kind", "localization")
    if kind not in QUERY_KINDS:
        raise ValueError(
            f"unknown query kind {kind!r}; expected one of "
            f"{sorted(QUERY_KINDS)}"
        )
    seed = query.pop("seed", 0)
    if not isinstance(seed, int):
        raise ValueError(f"seed must be an integer, got {seed!r}")
    runner, defaults = QUERY_KINDS[kind]
    unknown = sorted(set(query) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown {kind} query parameter(s) {unknown}; "
            f"accepted: {sorted(defaults)} (plus 'kind' and 'seed')"
        )
    kwargs = {**defaults, **query}
    if "per_set_range" in kwargs:
        kwargs["per_set_range"] = resolve_per_set_range(
            kwargs["per_set_range"]
        )
    if kind == "whatif":
        kwargs = _normalize_whatif(kwargs)
    return runner, kwargs, seed


def validate_query(instance, query: dict) -> None:
    """Full pre-queue validation of one query against its instance.

    :func:`normalize_query` checks everything checkable without a
    topology; this additionally binds a what-if query's demand matrix
    to the instance, so unresolvable flows (unknown paths, endpoint
    pairs with no routed path) are rejected as bad requests instead of
    failing — and taking co-batched queries with them — inside the
    engine.  Raises :class:`ValueError`.
    """
    runner, kwargs, _ = normalize_query(query)
    if runner == WHATIF_RUNNER:
        from repro.predict.demand import DemandMatrix

        DemandMatrix.from_payload(kwargs["demand"]).resolve(
            instance.topology
        )


def query_tasks(query: dict, *, group: int = 0) -> list[ScenarioTask]:
    """The (single-element) task list for one query.

    Child-seed layout is the engine's standard ``n_trials=1`` spawn, so
    the task — and therefore its cache key and its result — is a pure
    function of the normalised query.
    """
    runner, kwargs, seed = normalize_query(query)
    return scenario_tasks(runner, kwargs, n_trials=1, seed=seed, group=group)


def run_query(
    instance,
    query: dict,
    *,
    options=None,
    workers=None,
    cache=None,
    executor=None,
    registry=None,
) -> dict[str, np.ndarray]:
    """Execute one query end to end through the scenario engine.

    This is the batch-mode entry point (the ``localize`` CLI command);
    the service runs the very same tasks, merely coalescing several
    queries into one engine call.
    """
    from repro.eval.parallel import run_scenario_tasks

    tasks = query_tasks(query)
    results = run_scenario_tasks(
        instance,
        tasks,
        config=None,
        options=options,
        workers=workers,
        cache=cache,
        executor=executor,
        registry=registry,
    )
    return results[0]


# ----------------------------------------------------------------------
# JSON transport for float64 result vectors
# ----------------------------------------------------------------------
def encode_vectors(vectors: dict[str, np.ndarray]) -> dict[str, list]:
    """JSON-safe encoding of a result dict.

    Python floats round-trip losslessly through ``repr`` (shortest
    round-trip serialisation), so decoding recovers bit-identical
    float64 vectors.
    """
    return {
        name: np.asarray(vector, dtype=np.float64).ravel().tolist()
        for name, vector in vectors.items()
    }


def decode_vectors(payload: dict) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_vectors`."""
    return {
        name: np.asarray(values, dtype=np.float64)
        for name, values in payload.items()
    }


# ----------------------------------------------------------------------
# Task runners (executed inside whatever worker the executor picks)
# ----------------------------------------------------------------------
def _flatten_link_sets(
    link_sets: list[frozenset[int]],
) -> tuple[np.ndarray, np.ndarray]:
    counts = np.array([len(links) for links in link_sets], dtype=np.float64)
    flat = np.array(
        [link for links in link_sets for link in sorted(links)],
        dtype=np.float64,
    )
    return counts, flat


def run_localization_task(instance, config, options, task) -> dict:
    """One localization query: simulate, infer, localize, score.

    The simulation window is part of the query (``n_snapshots``,
    ``packets_per_path``), so the context ``config`` is ignored — the
    cache key carries the window through ``factory_kwargs`` instead.

    Returns float64 vectors only (executor-transport requirement):
    inferred probabilities for both algorithms, the standard per-link
    absolute-error vectors, and per-snapshot localization outcomes for
    the first ``loc_snapshots`` snapshots (precision, recall, exactness,
    trimmed noise paths, log-likelihood, and the inferred / true
    congested link sets as counts + flattened ids).
    """
    kwargs = dict(task.factory_kwargs)
    congested_fraction = float(kwargs.pop("congested_fraction"))
    per_set_range = resolve_per_set_range(kwargs.pop("per_set_range"))
    n_snapshots = int(kwargs.pop("n_snapshots"))
    packets = kwargs.pop("packets_per_path")
    packets = None if packets is None else int(packets)
    loc_snapshots = int(kwargs.pop("loc_snapshots"))
    max_nodes = int(kwargs.pop("max_nodes"))
    if kwargs:
        raise ValueError(
            f"unexpected localization task parameters {sorted(kwargs)}"
        )

    scenario = make_clustered_scenario(
        instance,
        congested_fraction=congested_fraction,
        per_set_range=per_set_range,
        seed=clone_generator(task.scenario_seed),
    )
    comparison = run_comparison(
        instance.topology,
        scenario,
        config=ExperimentConfig(
            n_snapshots=n_snapshots, packets_per_path=packets
        ),
        options=options,
        seed=clone_generator(task.run_seed),
    )
    probabilities = comparison.results[
        "correlation"
    ].congestion_probabilities
    run = comparison.run

    window = min(loc_snapshots, run.observations.n_snapshots)
    precision = np.empty(window, dtype=np.float64)
    recall = np.empty(window, dtype=np.float64)
    exact = np.empty(window, dtype=np.float64)
    noise = np.empty(window, dtype=np.float64)
    log_likelihood = np.empty(window, dtype=np.float64)
    found_sets: list[frozenset[int]] = []
    true_sets: list[frozenset[int]] = []
    for snapshot in range(window):
        mask = run.observations.congested_mask_of_snapshot(snapshot)
        true_links = frozenset(
            int(link) for link in np.flatnonzero(run.link_states[snapshot])
        )
        result = localize_map(
            instance.topology,
            mask,
            probabilities,
            max_nodes=max_nodes,
            on_infeasible="trim",
        )
        precision[snapshot], recall[snapshot] = result.precision_recall(
            true_links
        )
        exact[snapshot] = float(result.exact)
        noise[snapshot] = float(bit_count(result.noise_paths))
        log_likelihood[snapshot] = float(result.log_likelihood)
        found_sets.append(result.congested_links)
        true_sets.append(true_links)

    loc_counts, loc_links = _flatten_link_sets(found_sets)
    true_counts, true_links_flat = _flatten_link_sets(true_sets)
    return {
        "probabilities": probabilities.astype(np.float64, copy=False),
        "independence_probabilities": comparison.results[
            "independence"
        ].congestion_probabilities.astype(np.float64, copy=False),
        "err_correlation": comparison.errors["correlation"],
        "err_independence": comparison.errors["independence"],
        "loc_precision": precision,
        "loc_recall": recall,
        "loc_exact": exact,
        "loc_noise_paths": noise,
        "loc_log_likelihood": log_likelihood,
        "loc_link_counts": loc_counts,
        "loc_links": loc_links,
        "true_link_counts": true_counts,
        "true_links": true_links_flat,
    }


def run_identifiability_task(instance, config, options, task) -> dict:
    """One identifiability query: Assumption-4 check + structural holes.

    Deterministic — the task seeds are ignored.  Encoded as float64
    scalars/vectors so the result rides the same transports (and cache)
    as every other trial.
    """
    kwargs = dict(task.factory_kwargs)
    max_subset_size = kwargs.pop("max_subset_size")
    max_subset_size = (
        None if max_subset_size is None else int(max_subset_size)
    )
    if kwargs:
        raise ValueError(
            f"unexpected identifiability task parameters {sorted(kwargs)}"
        )
    report = check_assumption4(
        instance.correlation, max_subset_size=max_subset_size
    )
    structural = unidentifiable_links_structural(
        instance.topology, instance.correlation
    )
    return {
        "holds": np.array([float(report.holds)]),
        "exhaustive": np.array([float(report.exhaustive)]),
        "n_collisions": np.array([float(len(report.collisions))]),
        "unidentifiable_links": np.array(
            sorted(report.unidentifiable_links), dtype=np.float64
        ),
        "structural_unidentifiable_links": np.array(
            sorted(structural), dtype=np.float64
        ),
    }
