"""Hypothesis strategies for random tomography instances.

Random instances are built from random node walks (so paths are always
contiguous and loop-free), random correlation partitions of the resulting
links, and random explicit joint congestion models per correlation set —
everything the exactness properties need, with exactly known ground truth.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.model.explicit import ExplicitJointModel
from repro.model.network import NetworkCongestionModel


@st.composite
def topologies(draw, max_nodes: int = 7, max_paths: int = 5):
    """A random topology built from random distinct-node walks."""
    n_nodes = draw(st.integers(min_value=3, max_value=max_nodes))
    nodes = [f"v{i}" for i in range(n_nodes)]
    n_paths = draw(st.integers(min_value=1, max_value=max_paths))
    walks = []
    for _ in range(n_paths):
        length = draw(st.integers(min_value=2, max_value=min(4, n_nodes)))
        walk = draw(
            st.permutations(nodes).map(lambda p, ln=length: list(p[:ln]))
        )
        walks.append(walk)
    builder = TopologyBuilder()
    for index, walk in enumerate(walks):
        link_names = []
        for src, dst in zip(walk, walk[1:]):
            link = builder.ensure_link(f"{src}->{dst}", src, dst)
            link_names.append(link.name)
        builder.add_path(f"P{index + 1}", link_names)
    return builder.build()


@st.composite
def correlated_instances(draw, max_set_size: int = 3):
    """(topology, correlation) with a random partition into small sets."""
    topology = draw(topologies())
    link_ids = list(range(topology.n_links))
    order = draw(st.permutations(link_ids))
    sets = []
    index = 0
    while index < len(order):
        size = draw(st.integers(min_value=1, max_value=max_set_size))
        group = list(order[index : index + size])
        sets.append(group)
        index += size
    return topology, CorrelationStructure(topology, sets)


@st.composite
def explicit_set_models(draw, links: frozenset):
    """A random explicit joint distribution over subsets of ``links``."""
    members = sorted(links)
    subsets = [frozenset()]
    # All singletons plus (when applicable) the full set keep the support
    # small but genuinely correlated.
    subsets.extend(frozenset({m}) for m in members)
    if len(members) > 1:
        subsets.append(frozenset(members))
    weights = [
        draw(
            st.floats(
                min_value=0.01,
                max_value=1.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        for _ in subsets
    ]
    # Give the empty state extra mass so P(all good) stays comfortably
    # positive (the theorem algorithm divides by it).
    weights[0] += 2.0
    total = sum(weights)
    distribution = {
        subset: weight / total
        for subset, weight in zip(subsets, weights)
    }
    return ExplicitJointModel(frozenset(links), distribution)


@st.composite
def network_models(draw, correlation: CorrelationStructure):
    """A random ground-truth model matching a correlation structure."""
    models = [
        draw(explicit_set_models(group)) for group in correlation.sets
    ]
    return NetworkCongestionModel(correlation, models)
