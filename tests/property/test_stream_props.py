"""Property-based tests for the incremental observation pipeline.

The contract under test: after ANY schedule of appends and evictions,
an incrementally-maintained :class:`PathObservations` is observationally
identical to one built from scratch over the surviving rows.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.simulate.observations import PathObservations

# A schedule: the initial window, then appends (row matrices with a
# shared path count) interleaved with evictions (a fraction of the
# surviving history, biased so at least one row always remains).
row_counts = st.integers(min_value=1, max_value=12)


@st.composite
def schedules(draw):
    n_paths = draw(st.integers(min_value=1, max_value=6))

    def window():
        return arrays(
            dtype=bool, shape=st.tuples(row_counts, st.just(n_paths))
        )

    initial = draw(window())
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("append"), window()),
                st.tuples(
                    st.just("evict"),
                    st.floats(min_value=0.0, max_value=1.0),
                ),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return initial, steps


def apply_schedule(observations, rows, steps, materialise):
    """Run the schedule, mirroring it on a plain row list."""
    if materialise:
        observations.joint_good_gram()
        observations.observed_masks()
        observations.log_good_all()
    for kind, payload in steps:
        if kind == "append":
            observations.append_window(payload)
            rows.append(np.array(payload))
        else:
            surviving = sum(chunk.shape[0] for chunk in rows)
            count = min(int(payload * surviving), surviving - 1)
            observations.evict_oldest(count)
            flat = np.concatenate(rows, axis=0)[count:]
            rows.clear()
            rows.append(flat)
    return np.concatenate(rows, axis=0)


def assert_equivalent(incremental, scratch):
    assert incremental.n_snapshots == scratch.n_snapshots
    assert np.array_equal(incremental.path_states, scratch.path_states)
    assert np.array_equal(
        incremental.log_good_all(), scratch.log_good_all()
    )
    assert np.array_equal(
        incremental.joint_good_gram(), scratch.joint_good_gram()
    )
    assert incremental.observed_masks() == scratch.observed_masks()


@given(schedules(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_any_append_evict_schedule_matches_from_scratch(
    schedule, materialise
):
    initial, steps = schedule
    observations = PathObservations(initial)
    surviving = apply_schedule(
        observations, [np.array(initial)], steps, materialise
    )
    assert_equivalent(observations, PathObservations(surviving))


@given(schedules(), st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_sliding_window_matches_tail_rebuild(schedule, max_window):
    """With ``max_window`` set, the incremental state always equals a
    from-scratch build over the most recent ``max_window`` rows."""
    initial, steps = schedule
    observations = PathObservations(initial, max_window=max_window)
    observations.joint_good_gram()
    observations.observed_masks()
    total = [np.array(initial)]
    for kind, payload in steps:
        if kind != "append":
            continue
        observations.append_window(payload)
        total.append(np.array(payload))
    history = np.concatenate(total, axis=0)
    tail = history[-max_window:]
    assert_equivalent(observations, PathObservations(tail))
    assert observations.n_evicted == max(
        0, history.shape[0] - max_window
    )
