"""Property-based tests for the empirical estimators."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.simulate.observations import PathObservations

matrices = arrays(
    dtype=bool,
    shape=st.tuples(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=8),
    ),
)


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_p_good_matches_direct_count(states):
    observations = PathObservations(states)
    n = states.shape[0]
    for path_id in range(states.shape[1]):
        count = int((~states[:, path_id]).sum())
        expected = (
            count / n
            if 0 < count < n
            else (0.5 / n if count == 0 else 1 - 0.5 / n)
        )
        assert math.isclose(observations.p_good(path_id), expected)


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_probabilities_strictly_inside_unit_interval(states):
    """Smoothing keeps every estimate usable under log()."""
    observations = PathObservations(states)
    for path_id in range(states.shape[1]):
        p = observations.p_good(path_id)
        assert 0.0 < p < 1.0
        assert math.isfinite(observations.log_good(path_id))


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_pair_good_never_exceeds_singles(states):
    observations = PathObservations(states)
    n_paths = states.shape[1]
    if n_paths < 2:
        return
    tolerance = 0.5 / states.shape[0] + 1e-12
    for a in range(min(n_paths, 3)):
        for b in range(a + 1, min(n_paths, 4)):
            pair = observations.p_good_pair(a, b)
            assert pair <= observations.p_good(a) + tolerance
            assert pair <= observations.p_good(b) + tolerance


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_mask_counts_partition_snapshots(states):
    observations = PathObservations(states)
    masks = observations.observed_masks()
    assert sum(masks.values()) == states.shape[0]
    # Each snapshot's own mask must be recorded.
    for row in range(states.shape[0]):
        mask = observations.congested_mask_of_snapshot(row)
        assert masks[mask] >= 1


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_mask_probabilities_sum_to_one(states):
    observations = PathObservations(states)
    total = sum(
        observations.p_congested_mask(mask)
        for mask in observations.observed_masks()
    )
    assert math.isclose(total, 1.0, abs_tol=1e-9)


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_pair_is_symmetric(states):
    observations = PathObservations(states)
    n_paths = states.shape[1]
    if n_paths < 2:
        return
    assert observations.p_good_pair(0, 1) == observations.p_good_pair(
        1, 0
    )
