"""Property-based tests for bitmask helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitset import bit_count, bits_of, mask_of, subset_of

index_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=30)


@given(index_sets)
def test_mask_roundtrip(indices):
    assert set(bits_of(mask_of(indices))) == indices


@given(index_sets, index_sets)
def test_union_is_or(a, b):
    assert mask_of(a | b) == mask_of(a) | mask_of(b)


@given(index_sets, index_sets)
def test_intersection_is_and(a, b):
    assert mask_of(a & b) == mask_of(a) & mask_of(b)


@given(index_sets)
def test_bit_count_matches_cardinality(indices):
    assert bit_count(mask_of(indices)) == len(indices)


@given(index_sets, index_sets)
def test_subset_of_matches_set_semantics(a, b):
    assert subset_of(mask_of(a), mask_of(b)) == (a <= b)


@given(index_sets, index_sets, index_sets)
def test_subset_transitivity(a, b, c):
    small, mid, big = mask_of(a), mask_of(a | b), mask_of(a | b | c)
    assert subset_of(small, mid)
    assert subset_of(mid, big)
    assert subset_of(small, big)
