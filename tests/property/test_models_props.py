"""Property-based consistency of congestion models' exact queries."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.common_cause import CommonCauseModel
from repro.model.shared_resource import SharedResourceModel
from tests.property.strategies import explicit_set_models

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def common_cause_models(draw):
    size = draw(st.integers(min_value=1, max_value=4))
    links = frozenset(range(size))
    cause = draw(probabilities)
    background = {link: draw(probabilities) for link in links}
    return CommonCauseModel(links, cause, background)


@st.composite
def shared_resource_models(draw):
    n_links = draw(st.integers(min_value=1, max_value=3))
    n_resources = draw(st.integers(min_value=1, max_value=4))
    resource_ids = [f"r{i}" for i in range(n_resources)]
    resource_map = {}
    for link in range(n_links):
        owned = draw(
            st.sets(
                st.sampled_from(resource_ids),
                min_size=1,
                max_size=n_resources,
            )
        )
        resource_map[link] = frozenset(owned)
    q = {r: draw(probabilities) for r in resource_ids}
    return SharedResourceModel(resource_map, q)


def check_support_consistency(model):
    support = list(model.support())
    total = sum(p for _, p in support)
    assert math.isclose(total, 1.0, abs_tol=1e-9)
    for link_id in model.links:
        from_support = sum(
            p for state, p in support if link_id in state
        )
        assert math.isclose(
            from_support, model.marginal(link_id), abs_tol=1e-9
        )


def check_joint_consistency(model):
    support = list(model.support())
    members = sorted(model.links)
    # joint(A) = Σ P(state ⊇ A) for a few subsets.
    for size in range(1, min(len(members), 3) + 1):
        subset = frozenset(members[:size])
        from_support = sum(
            p for state, p in support if subset <= state
        )
        assert math.isclose(
            from_support, model.joint(subset), abs_tol=1e-9
        )


@given(common_cause_models())
@RELAXED
def test_common_cause_support_consistency(model):
    check_support_consistency(model)


@given(common_cause_models())
@RELAXED
def test_common_cause_joint_consistency(model):
    check_joint_consistency(model)


@given(shared_resource_models())
@RELAXED
def test_shared_resource_support_consistency(model):
    check_support_consistency(model)


@given(shared_resource_models())
@RELAXED
def test_shared_resource_joint_consistency(model):
    check_joint_consistency(model)


@given(st.data())
@RELAXED
def test_explicit_model_support_consistency(data):
    size = data.draw(st.integers(min_value=1, max_value=4))
    model = data.draw(explicit_set_models(frozenset(range(size))))
    check_support_consistency(model)
    check_joint_consistency(model)


@given(common_cause_models())
@RELAXED
def test_joint_is_monotone_decreasing_in_subset_growth(model):
    members = sorted(model.links)
    previous = 1.0
    for size in range(1, len(members) + 1):
        current = model.joint(frozenset(members[:size]))
        assert current <= previous + 1e-12
        previous = current


@given(shared_resource_models())
@RELAXED
def test_sharing_never_produces_negative_association(model):
    """Shared independent resources can only correlate links positively:
    joint ≥ product of marginals."""
    members = sorted(model.links)
    if len(members) < 2:
        return
    a, b = members[0], members[1]
    joint = model.joint(frozenset({a, b}))
    assert joint >= model.marginal(a) * model.marginal(b) - 1e-9
