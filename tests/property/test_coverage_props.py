"""Property-based tests for the coverage function ψ on random topologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitset import bit_count, subset_of
from tests.property.strategies import topologies


@given(topologies(), st.data())
@settings(max_examples=40, deadline=None)
def test_coverage_union_is_or(topology, data):
    """ψ(A ∪ B) = ψ(A) ∪ ψ(B) — Eq. 1 is a union homomorphism."""
    links = list(range(topology.n_links))
    a = data.draw(st.sets(st.sampled_from(links)))
    b = data.draw(st.sets(st.sampled_from(links)))
    assert topology.coverage_of(a | b) == (
        topology.coverage_of(a) | topology.coverage_of(b)
    )


@given(topologies(), st.data())
@settings(max_examples=40, deadline=None)
def test_coverage_monotone(topology, data):
    links = list(range(topology.n_links))
    a = data.draw(st.sets(st.sampled_from(links)))
    b = data.draw(st.sets(st.sampled_from(links)))
    assert subset_of(
        topology.coverage_of(a), topology.coverage_of(a | b)
    )


@given(topologies())
@settings(max_examples=40, deadline=None)
def test_all_links_cover_all_paths(topology):
    """No unused links (model invariant) ⇒ ψ(E) covers every path."""
    assert (
        topology.coverage_of(range(topology.n_links))
        == topology.all_paths_mask
    )


@given(topologies())
@settings(max_examples=40, deadline=None)
def test_every_link_covers_something(topology):
    for link_id in range(topology.n_links):
        assert bit_count(topology.coverage[link_id]) >= 1


@given(topologies())
@settings(max_examples=40, deadline=None)
def test_path_coverage_consistency(topology):
    """Link k covers path i iff path i traverses link k."""
    for path in topology.paths:
        for link_id in range(topology.n_links):
            covered = bool(topology.coverage[link_id] >> path.id & 1)
            assert covered == path.traverses(link_id)


@given(topologies())
@settings(max_examples=40, deadline=None)
def test_routing_matrix_agrees_with_coverage(topology):
    matrix = topology.routing_matrix()
    for path in topology.paths:
        for link_id in range(topology.n_links):
            assert (matrix[path.id, link_id] == 1.0) == bool(
                topology.coverage[link_id] >> path.id & 1
            )
