"""Exactness of the theorem algorithm on random identifiable instances.

This is the strongest correctness property in the suite: for *any* random
topology, random correlation partition, and random correlated ground
truth, as long as Assumption 4 holds, the theorem algorithm fed with the
exact path-state distribution must recover every link marginal and every
within-set joint probability exactly (Theorem 1)."""

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.identifiability import check_assumption4
from repro.core.theorem import TheoremAlgorithm
from repro.simulate.oracle import ExactPathStateDistribution
from tests.property.strategies import correlated_instances, network_models

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.filter_too_much,
        HealthCheck.data_too_large,
    ],
)


@given(correlated_instances(), st.data())
@RELAXED
def test_theorem_recovers_marginals_exactly(instance, data):
    topology, correlation = instance
    assume(check_assumption4(correlation).holds)
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    result = TheoremAlgorithm(topology, correlation).identify(oracle)
    truth = model.link_marginals()
    for link_id, value in result.link_marginals.items():
        assert math.isclose(value, truth[link_id], abs_tol=1e-7)
    # Exact inputs must never trigger a genuine clamp (tiny float
    # cancellations on true-zero factors are zeroed silently).
    assert result.clamped_subsets == ()


@given(correlated_instances(), st.data())
@RELAXED
def test_theorem_recovers_set_joints_exactly(instance, data):
    topology, correlation = instance
    assume(check_assumption4(correlation).holds)
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    result = TheoremAlgorithm(topology, correlation).identify(oracle)
    for group in correlation.sets:
        members = sorted(group)
        assert math.isclose(
            result.joint(members), model.joint(members), abs_tol=1e-7
        )


@given(correlated_instances(), st.data())
@RELAXED
def test_theorem_factors_reconstruct_state_probabilities(instance, data):
    """α_A · P(Sp=∅) must equal the true P(Sp=A) for every subset the
    ground-truth model can produce."""
    topology, correlation = instance
    assume(check_assumption4(correlation).holds)
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    result = TheoremAlgorithm(topology, correlation).identify(oracle)
    for set_index, set_model in enumerate(model.models):
        for state, probability in set_model.support():
            if not state:
                recovered = result.factors.p_set_empty(set_index)
            else:
                recovered = result.factors.p_set_equals(state)
            assert math.isclose(recovered, probability, abs_tol=1e-7)
