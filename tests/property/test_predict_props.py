"""Property-based checks for the predict layer.

The exact memoized evaluator is checked against full joint enumeration
on arbitrary small flow sets, the Monte Carlo fallback against the
exact answer, and demand fingerprints against arbitrary perturbations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predict.demand import DemandMatrix
from repro.predict.model import (
    exceedance_exact,
    exceedance_naive,
    exceedance_sample,
)

N_LINKS = 4

rates_st = st.floats(
    min_value=0.05, max_value=3.0, allow_nan=False, allow_infinity=False
)
limits_st = st.floats(
    min_value=0.1, max_value=4.0, allow_nan=False, allow_infinity=False
)


@st.composite
def flow_sets(draw, max_flows=6, max_candidates=3):
    """(rates, incidences, limits) over a fixed small link set."""
    n_flows = draw(st.integers(min_value=1, max_value=max_flows))
    rates = [draw(rates_st) for _ in range(n_flows)]
    incidences = []
    for _ in range(n_flows):
        n_candidates = draw(st.integers(min_value=1, max_value=max_candidates))
        rows = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=1),
                    min_size=N_LINKS,
                    max_size=N_LINKS,
                )
            )
            for _ in range(n_candidates)
        ]
        incidences.append(np.array(rows, dtype=np.float64))
    limits = [draw(limits_st) for _ in range(N_LINKS)]
    return rates, incidences, limits


@given(flow_sets())
@settings(max_examples=60, deadline=None)
def test_exact_matches_full_joint_enumeration(flow_set):
    rates, incidences, limits = flow_set
    exact = exceedance_exact(rates, incidences, limits)
    naive = exceedance_naive(rates, incidences, limits)
    assert np.allclose(exact, naive, atol=1e-12)
    assert np.all((exact >= 0.0) & (exact <= 1.0))


@given(flow_sets(max_flows=4))
@settings(max_examples=15, deadline=None)
def test_monte_carlo_converges_to_exact(flow_set):
    rates, incidences, limits = flow_set
    exact = exceedance_exact(rates, incidences, limits)
    sampled = exceedance_sample(
        rates,
        incidences,
        limits,
        rng=np.random.default_rng(0),
        n_samples=20_000,
    )
    # 20k Bernoulli samples: tol 0.03 is ~8.5 sigma at worst (p=0.5).
    assert np.abs(exact - sampled).max() < 0.03


@given(flow_sets())
@settings(max_examples=40, deadline=None)
def test_scaling_demand_up_never_reduces_risk(flow_set):
    rates, incidences, limits = flow_set
    base = exceedance_exact(rates, incidences, limits)
    scaled = exceedance_exact(
        [rate * 1.5 for rate in rates], incidences, limits
    )
    assert np.all(scaled >= base - 1e-12)


@st.composite
def demand_payloads(draw, max_flows=4):
    n_flows = draw(st.integers(min_value=1, max_value=max_flows))
    flows = []
    for index in range(n_flows):
        paths = draw(
            st.lists(
                st.integers(min_value=0, max_value=9),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        flows.append(
            {"name": f"f{index}", "rate": draw(rates_st), "paths": paths}
        )
    return {"flows": flows, "capacities": {"default": draw(limits_st)}}


@given(demand_payloads(), st.data())
@settings(max_examples=40, deadline=None)
def test_fingerprint_separates_distinct_demands(payload, data):
    base = DemandMatrix.from_payload(payload)
    index = data.draw(
        st.integers(min_value=0, max_value=len(payload["flows"]) - 1)
    )
    mutation = data.draw(st.sampled_from(["rate", "paths", "capacity"]))
    if mutation == "rate":
        payload["flows"][index]["rate"] += 0.25
    elif mutation == "paths":
        payload["flows"][index]["paths"] = [
            ref + 10 for ref in payload["flows"][index]["paths"]
        ]
    else:
        payload["capacities"]["default"] += 0.5
    perturbed = DemandMatrix.from_payload(payload)
    assert perturbed.fingerprint() != base.fingerprint()
    # And the fingerprint is stable across payload round-trips.
    replay = DemandMatrix.from_payload(perturbed.to_payload())
    assert replay.fingerprint() == perturbed.fingerprint()
