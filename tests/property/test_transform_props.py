"""Property-based invariants of the merge transformations."""

from hypothesis import HealthCheck, given, settings

from repro.core.transform import merge_indistinguishable_links
from tests.property.strategies import topologies

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(topologies())
@RELAXED
def test_merge_preserves_path_link_multisets(topology):
    """Expanding each merged link back to its originals reproduces each
    path's original link sequence exactly."""
    result = merge_indistinguishable_links(topology)
    for old_path, new_path in zip(
        topology.paths, result.topology.paths
    ):
        expanded = []
        for new_link in new_path.link_ids:
            expanded.extend(sorted(result.origin[new_link]))
        # Order within a merged run follows the run's traversal order;
        # compare as sets per path (each link appears exactly once).
        assert set(expanded) == set(old_path.link_ids)
        assert len(expanded) == len(old_path.link_ids)


@given(topologies())
@RELAXED
def test_merge_origin_partitions_links(topology):
    """The origins of the new links partition the original link set."""
    result = merge_indistinguishable_links(topology)
    seen: set[int] = set()
    for originals in result.origin.values():
        assert not originals & seen
        seen |= originals
    assert seen == set(range(topology.n_links))


@given(topologies())
@RELAXED
def test_merge_is_idempotent(topology):
    """Merging an already-merged topology changes nothing."""
    once = merge_indistinguishable_links(topology)
    twice = merge_indistinguishable_links(once.topology)
    assert twice.topology.n_links == once.topology.n_links


@given(topologies())
@RELAXED
def test_merged_links_have_distinct_coverage(topology):
    """After merging, no two links share a coverage *and* appear
    consecutively (the classical indistinguishability is resolved)."""
    result = merge_indistinguishable_links(topology)
    merged = result.topology
    for path in merged.paths:
        for a, b in zip(path.link_ids, path.link_ids[1:]):
            assert merged.coverage[a] != merged.coverage[b]


@given(topologies())
@RELAXED
def test_coverage_preserved_through_merge(topology):
    """A merged link covers exactly the paths its originals covered."""
    result = merge_indistinguishable_links(topology)
    for new_id, originals in result.origin.items():
        old_coverage = topology.coverage_of(originals)
        assert result.topology.coverage[new_id] == old_coverage


@given(topologies())
@RELAXED
def test_project_probabilities_keys(topology):
    import numpy as np

    result = merge_indistinguishable_links(topology)
    probabilities = np.linspace(
        0.0, 1.0, result.topology.n_links
    )
    projected = result.project_probabilities(probabilities)
    assert set(projected) == set(result.origin.values())
