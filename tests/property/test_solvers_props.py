"""Property-based optimality checks for the solvers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.solvers import solve_l1, solve_min_norm_least_squares

finite = st.floats(
    min_value=-3.0, max_value=0.0, allow_nan=False, allow_infinity=False
)


@st.composite
def systems(draw):
    n_rows = draw(st.integers(min_value=1, max_value=6))
    n_cols = draw(st.integers(min_value=1, max_value=5))
    matrix = draw(
        arrays(
            dtype=np.int8,
            shape=(n_rows, n_cols),
            elements=st.integers(min_value=0, max_value=1),
        )
    ).astype(np.float64)
    values = np.array(
        [draw(finite) for _ in range(n_rows)], dtype=np.float64
    )
    return matrix, values


@given(systems(), st.data())
@settings(max_examples=50, deadline=None)
def test_l1_solution_beats_random_feasible_points(system, data):
    """The LP optimum's L1 residual is no worse than any feasible x."""
    matrix, values = system
    solution = solve_l1(matrix, values)
    optimum = np.abs(matrix @ solution - values).sum()
    n_cols = matrix.shape[1]
    for _ in range(5):
        candidate = np.array(
            [data.draw(finite) for _ in range(n_cols)]
        )
        candidate_cost = np.abs(matrix @ candidate - values).sum()
        assert optimum <= candidate_cost + 1e-7


@given(systems())
@settings(max_examples=50, deadline=None)
def test_l1_solution_is_feasible(system):
    matrix, values = system
    solution = solve_l1(matrix, values)
    assert np.all(solution <= 1e-9)
    assert np.all(np.isfinite(solution))


@given(systems())
@settings(max_examples=50, deadline=None)
def test_consistent_systems_solved_exactly_by_l1(system):
    """Build y = R x* for a feasible x*: the L1 LP must reach zero
    residual (possibly at a different optimum than x*).  The clipped
    min-norm solver only guarantees this when the raw pseudo-inverse
    solution already satisfies the sign constraint — the clipping is a
    post-hoc projection, not a constrained optimum."""
    matrix, _ = system
    n_cols = matrix.shape[1]
    x_star = np.linspace(-1.0, -0.1, n_cols)
    values = matrix @ x_star
    l1 = solve_l1(matrix, values)
    assert np.allclose(matrix @ l1, values, atol=1e-7)
    raw, *_ = np.linalg.lstsq(matrix, values, rcond=None)
    if np.all(raw <= 1e-12):
        mn = solve_min_norm_least_squares(matrix, values)
        assert np.allclose(matrix @ mn, values, atol=1e-7)


@given(systems())
@settings(max_examples=50, deadline=None)
def test_min_norm_minimises_norm_among_solutions(system):
    """For consistent systems the pseudo-inverse solution has the
    smallest L2 norm among exact solutions: adding any null-space vector
    cannot shrink it."""
    matrix, _ = system
    n_cols = matrix.shape[1]
    x_star = np.linspace(-1.0, -0.1, n_cols)
    values = matrix @ x_star
    solution = solve_min_norm_least_squares(matrix, values)
    if np.any(solution > -1e-12) and np.any(solution < -1e-12):
        # Clipping may have engaged; the pure-min-norm argument then no
        # longer applies verbatim.
        pass
    raw, *_ = np.linalg.lstsq(matrix, values, rcond=None)
    assert np.linalg.norm(raw) <= np.linalg.norm(x_star) + 1e-7
