"""Soundness of the Section-4 equation builder on random instances.

Every accepted row (single-path or pair) must be *exactly* satisfied by
the true log-good vector when measurements are exact — this is the
factorisation claim behind Eqs. 9 and 10: correlation-free paths and
pairs see independent links, so their good-probabilities multiply.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.equations import build_equations
from repro.simulate.oracle import ExactPathStateDistribution
from tests.property.strategies import correlated_instances, network_models

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
    ],
)


@given(correlated_instances(), st.data())
@RELAXED
def test_accepted_rows_hold_exactly(instance, data):
    topology, correlation = instance
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    system = build_equations(topology, correlation, oracle)
    if not system.rows:
        return
    truth = model.link_marginals()
    # All explicit models in the strategies keep marginals < 1, so the
    # log is finite.
    x_true = np.log(1.0 - truth)
    matrix, values = system.matrix()
    assert np.allclose(matrix @ x_true, values, atol=1e-8)


@given(correlated_instances(), st.data())
@RELAXED
def test_rank_never_exceeds_links(instance, data):
    topology, correlation = instance
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    system = build_equations(topology, correlation, oracle)
    assert system.rank <= topology.n_links
    assert system.rank <= len(system.rows) or not system.rows


@given(correlated_instances(), st.data())
@RELAXED
def test_independent_selection_rank_equals_row_count(instance, data):
    """In "independent" mode every kept row increases the rank, so the
    row count equals the rank exactly."""
    topology, correlation = instance
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    system = build_equations(
        topology, correlation, oracle, selection="independent"
    )
    assert len(system.rows) == system.rank


@given(correlated_instances(), st.data())
@RELAXED
def test_eligible_paths_are_correlation_free(instance, data):
    topology, correlation = instance
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    system = build_equations(topology, correlation, oracle)
    for path_id in system.eligible_paths:
        assert correlation.path_is_correlation_free(path_id)


@given(correlated_instances(), st.data())
@RELAXED
def test_full_rank_implies_exact_recovery(instance, data):
    """When the builder reaches full column rank, the L1 solve recovers
    the exact marginals from noise-free measurements."""
    from repro.core.correlation_algorithm import infer_congestion

    topology, correlation = instance
    model = data.draw(network_models(correlation))
    oracle = ExactPathStateDistribution.from_model(topology, model)
    system = build_equations(topology, correlation, oracle)
    if not system.is_fully_determined:
        return
    result = infer_congestion(topology, correlation, oracle)
    truth = model.link_marginals()
    assert np.allclose(
        result.congestion_probabilities, truth, atol=1e-5
    )
