"""Property-based invariants of snapshot localization."""

import itertools
import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.localization import (
    feasible_candidate_links,
    localize_map,
    localize_smallest_set,
)
from repro.exceptions import MeasurementError
from repro.utils.bitset import subset_of
from tests.property.strategies import topologies

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def localization_cases(draw):
    """A topology plus a *realizable* congested-path observation (the
    coverage of a random link set), plus random link probabilities."""
    topology = draw(topologies(max_nodes=6, max_paths=4))
    n_links = topology.n_links
    congested = draw(
        st.sets(
            st.integers(min_value=0, max_value=n_links - 1),
            max_size=n_links,
        )
    )
    mask = topology.coverage_of(congested)
    probabilities = np.array(
        [
            draw(
                st.floats(
                    min_value=0.01,
                    max_value=0.99,
                    allow_nan=False,
                )
            )
            for _ in range(n_links)
        ]
    )
    return topology, mask, probabilities


@given(localization_cases())
@RELAXED
def test_map_explanation_is_feasible(case):
    topology, mask, probabilities = case
    result = localize_map(topology, mask, probabilities)
    covered = topology.coverage_of(result.congested_links)
    assert covered == mask
    for link_id in result.congested_links:
        assert subset_of(topology.coverage[link_id], mask)


@given(localization_cases())
@RELAXED
def test_map_is_optimal_among_enumerable_explanations(case):
    """On small instances, brute-force every feasible explanation and
    verify the branch-and-bound returns a maximiser."""
    topology, mask, probabilities = case
    result = localize_map(topology, mask, probabilities)
    if not result.exact:
        return
    candidates = feasible_candidate_links(topology, mask)
    if len(candidates) > 12:
        return

    def loglik(links):
        total = 0.0
        for k in candidates:
            p = min(max(probabilities[k], 1e-9), 1 - 1e-9)
            total += math.log(p if k in links else 1.0 - p)
        return total

    best = None
    for size in range(len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            if topology.coverage_of(combo) != mask:
                continue
            score = loglik(frozenset(combo))
            if best is None or score > best:
                best = score
    assert best is not None
    assert loglik(result.congested_links) >= best - 1e-9


@given(localization_cases())
@RELAXED
def test_smallest_set_is_feasible_and_minimal_ish(case):
    topology, mask, probabilities = case
    result = localize_smallest_set(topology, mask)
    assert topology.coverage_of(result.congested_links) == mask
    # Greedy set cover is within ln(n)+1 of optimal; on these tiny
    # instances just check it never exceeds the candidate count.
    assert len(result.congested_links) <= max(
        1, len(feasible_candidate_links(topology, mask))
    )


@given(localization_cases())
@RELAXED
def test_trim_mode_never_raises(case):
    """With arbitrary (even unrealizable) masks, trim mode completes."""
    topology, mask, probabilities = case
    # Corrupt the mask by flipping the lowest path bit.
    corrupted = mask ^ 1
    try:
        result = localize_map(
            topology, corrupted, probabilities, on_infeasible="trim"
        )
    except MeasurementError:
        raise AssertionError("trim mode must not raise")
    explained = topology.coverage_of(result.congested_links)
    # The explanation covers exactly the cleaned observation, and the
    # trimmed noise is disjoint from it and inside the original mask.
    assert explained == corrupted & ~result.noise_paths
    assert not explained & result.noise_paths
    assert subset_of(result.noise_paths, corrupted)
