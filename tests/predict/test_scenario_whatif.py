"""WhatIfScenario, the whatif task runner, and the risk-shift sweep."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.eval.predict import render_risk_shift, risk_shift_sweep
from repro.eval.scenario import make_clustered_scenario, resolve_per_set_range
from repro.predict.demand import DemandMatrix, DemandShift
from repro.predict.model import CongestionModel
from repro.predict.scenario import WhatIfScenario, risk_ranking
from repro.predict.tasks import run_whatif_task, whatif_vectors_to_result
from repro.serve.queries import run_query
from repro.simulate.experiment import ExperimentConfig, run_experiment

#: Small probe window — the inference leg dominates test runtime.
WINDOW = {"n_snapshots": 40, "packets_per_path": 150}


@pytest.fixture(scope="module")
def observations(instance):
    scenario = make_clustered_scenario(
        instance,
        congested_fraction=0.10,
        per_set_range=resolve_per_set_range("high"),
        seed=3,
    )
    run = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(**WINDOW),
        seed=5,
    )
    return run.observations


class TestRiskRanking:
    def test_descending_with_id_tiebreak(self):
        ranking = risk_ranking(np.array([0.2, 0.5, 0.5, 0.1]))
        assert ranking.tolist() == [1, 2, 0, 3]


class TestWhatIfScenario:
    def test_shifts_default_to_the_demand_matrix_own(
        self, instance, demand_payload
    ):
        demand = DemandMatrix.from_payload(demand_payload)
        scenario = WhatIfScenario(instance, demand)
        assert [shift.name for shift in scenario.shifts] == ["surge"]

    def test_shiftless_demand_gets_the_identity_baseline(
        self, instance, demand_payload
    ):
        demand_payload.pop("shifts")
        demand = DemandMatrix.from_payload(demand_payload)
        scenario = WhatIfScenario(instance, demand)
        assert [shift.name for shift in scenario.shifts] == ["baseline"]
        assert scenario.shifts[0].scale == 1.0

    def test_duplicate_shift_names_rejected(self, instance, demand_payload):
        demand = DemandMatrix.from_payload(demand_payload)
        with pytest.raises(ValueError, match="duplicate"):
            WhatIfScenario(
                instance,
                demand,
                shifts=[DemandShift(name="s"), DemandShift(name="s")],
            )

    def test_unresolvable_demand_fails_at_construction(self, instance):
        demand = DemandMatrix.from_payload(
            {"flows": [{"name": "f", "rate": 1.0, "paths": [9_999]}]}
        )
        with pytest.raises(ValueError, match="flow 'f'"):
            WhatIfScenario(instance, demand)

    def test_evaluate_is_deterministic_and_self_consistent(
        self, instance, demand_payload, observations
    ):
        demand = DemandMatrix.from_payload(demand_payload)
        scenario = WhatIfScenario(instance, demand)
        one = scenario.evaluate(observations, seed=7)
        two = scenario.evaluate(observations, seed=7)
        assert np.array_equal(one.current, two.current)
        for risk_one, risk_two in zip(one.shifts, two.shifts):
            assert np.array_equal(risk_one.combined, risk_two.combined)
            assert np.array_equal(risk_one.ranking, risk_two.ranking)

        risk = one.shift("surge")
        expected = 1.0 - (1.0 - one.current) * (1.0 - risk.predicted)
        assert np.allclose(risk.combined, expected, atol=1e-15)
        assert np.array_equal(risk.ranking, risk_ranking(risk.combined))
        assert risk.method == "exact"  # 3 flows < exact_max_flows
        with pytest.raises(KeyError):
            one.shift("no-such-shift")

    def test_more_demand_means_no_less_predicted_risk(
        self, instance, demand_payload, observations
    ):
        demand = DemandMatrix.from_payload(demand_payload)
        scenario = WhatIfScenario(
            instance,
            demand,
            shifts=[
                DemandShift(name="x1", scale=1.0),
                DemandShift(name="x2", scale=2.0),
            ],
            model=CongestionModel(),
        )
        result = scenario.evaluate(observations, seed=0)
        low, high = result.shift("x1"), result.shift("x2")
        assert np.all(high.predicted >= low.predicted - 1e-12)


class TestTaskRunner:
    def query(self, demand_payload, **overrides):
        query = {
            "kind": "whatif",
            "demand": demand_payload,
            "seed": 13,
            **WINDOW,
        }
        query.update(overrides)
        return query

    def test_serial_and_pool_runs_are_bit_identical(
        self, instance, demand_payload
    ):
        serial = run_query(instance, self.query(demand_payload))
        pooled = run_query(instance, self.query(demand_payload), workers=2)
        assert sorted(serial) == sorted(pooled)
        for key, vector in serial.items():
            assert np.array_equal(vector, pooled[key]), key

    def test_result_reshapes_with_names(self, instance, demand_payload):
        vectors = run_query(instance, self.query(demand_payload))
        assert vectors["n_shifts"][0] == 1.0
        result = whatif_vectors_to_result(vectors, shift_names=["surge"])
        assert result["shifts"][0]["name"] == "surge"
        assert result["shifts"][0]["scale"] == pytest.approx(1.6)
        assert result["shifts"][0]["method"] == "exact"
        assert result["shifts"][0]["ranking"].dtype.kind == "i"
        assert len(result["current"]) == instance.topology.n_links
        with pytest.raises(ValueError, match="names"):
            whatif_vectors_to_result(vectors, shift_names=["a", "b"])

    def test_explicit_shifts_override_the_matrix(
        self, instance, demand_payload
    ):
        query = self.query(
            demand_payload,
            shifts=[
                {"name": "a", "scale": 1.0},
                {"name": "b", "scale": 2.5, "flows": {"f0": 0.5}},
            ],
        )
        vectors = run_query(instance, query)
        assert vectors["n_shifts"][0] == 2.0
        assert vectors["shift0_scale"][0] == 1.0
        assert vectors["shift1_scale"][0] == 2.5

    def test_unknown_task_parameters_fail_loudly(self, instance):
        task = SimpleNamespace(
            factory_kwargs={
                "demand": {"flows": [{"name": "f", "rate": 1.0, "paths": [0]}]},
                "shifts": None,
                "utilization_threshold": 0.85,
                "exact_max_flows": 16,
                "mc_samples": 100,
                "congested_fraction": 0.10,
                "per_set_range": (0.6, 0.9),
                "n_snapshots": 10,
                "packets_per_path": None,
                "bogus": 1,
            },
            scenario_seed=0,
            run_seed=0,
        )
        with pytest.raises(ValueError, match="bogus"):
            run_whatif_task(instance, None, None, task)


class TestRiskShiftSweep:
    def test_sweep_points_and_rendering(self, instance, demand_payload):
        result = risk_shift_sweep(
            instance,
            demand_payload,
            scales=(1.0, 2.0),
            n_trials=1,
            seed=2,
            **WINDOW,
        )
        assert [point.scale for point in result.points] == [1.0, 2.0]
        # A doubled demand cannot predict less congestion.
        assert (
            result.points[1].mean_predicted
            >= result.points[0].mean_predicted - 1e-12
        )
        assert result.metadata["n_flows"] == 3
        rendered = render_risk_shift(result)
        assert "shift scale" in rendered
        assert "2" in rendered
