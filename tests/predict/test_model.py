"""The congestion model: exact == naive, MC agreement, cache hits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.cache import TrialCache
from repro.predict.demand import DemandMatrix
from repro.predict.model import (
    CongestionModel,
    exceedance_exact,
    exceedance_naive,
    exceedance_sample,
    expected_load,
)


def random_flow_set(rng, *, n_links=5, max_flows=6, max_candidates=3):
    """A random (rates, incidences, limits) triple with feasible naive cost."""
    n_flows = int(rng.integers(1, max_flows + 1))
    rates = rng.uniform(0.1, 2.0, size=n_flows)
    incidences = []
    for _ in range(n_flows):
        k = int(rng.integers(1, max_candidates + 1))
        incidence = (rng.random((k, n_links)) < 0.5).astype(np.float64)
        incidences.append(incidence)
    limits = rng.uniform(0.5, 3.0, size=n_links)
    return rates, incidences, limits


class TestExactVsNaive:
    def test_exact_equals_naive_on_random_flow_sets(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            rates, incidences, limits = random_flow_set(rng)
            exact = exceedance_exact(rates, incidences, limits)
            naive = exceedance_naive(rates, incidences, limits)
            assert np.allclose(exact, naive, atol=1e-12)

    def test_certain_and_irrelevant_flows(self):
        # Flow 0 always crosses link 0 (single candidate); flow 1 never
        # does.  Exact must treat them deterministically.
        incidences = [
            np.array([[1.0, 0.0]]),
            np.array([[0.0, 1.0], [0.0, 1.0]]),
        ]
        out = exceedance_exact([1.0, 1.0], incidences, [0.5, 10.0])
        assert out[0] == 1.0  # certain load 1.0 > 0.5
        assert out[1] == 0.0  # load 1.0 <= 10

    def test_load_exactly_at_limit_is_not_congested(self):
        # The shared boundary epsilon: load == limit counts as fine, for
        # all three evaluators.
        incidence = [np.array([[1.0]])]
        for evaluate in (
            lambda: exceedance_exact([0.85], incidence, [0.85]),
            lambda: exceedance_naive([0.85], incidence, [0.85]),
            lambda: exceedance_sample(
                [0.85],
                incidence,
                [0.85],
                rng=np.random.default_rng(0),
                n_samples=10,
            ),
        ):
            assert evaluate()[0] == 0.0

    def test_empty_links_and_mismatched_inputs(self):
        with pytest.raises(ValueError):
            exceedance_exact([1.0, 2.0], [np.ones((1, 3))], np.ones(3))
        with pytest.raises(ValueError):
            exceedance_exact([1.0], [np.ones((1, 4))], np.ones(3))


class TestMonteCarlo:
    def test_sampler_is_deterministic_given_the_generator(self):
        rng = np.random.default_rng(3)
        rates, incidences, limits = random_flow_set(rng, max_flows=5)
        first = exceedance_sample(
            rates, incidences, limits,
            rng=np.random.default_rng(11), n_samples=500,
        )
        second = exceedance_sample(
            rates, incidences, limits,
            rng=np.random.default_rng(11), n_samples=500,
        )
        assert np.array_equal(first, second)

    def test_sampler_agrees_with_exact(self):
        rng = np.random.default_rng(5)
        rates, incidences, limits = random_flow_set(rng, max_flows=6)
        exact = exceedance_exact(rates, incidences, limits)
        sampled = exceedance_sample(
            rates, incidences, limits,
            rng=np.random.default_rng(0), n_samples=40_000,
        )
        assert np.abs(exact - sampled).max() < 0.02

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            exceedance_sample(
                [1.0], [np.ones((1, 1))], [1.0],
                rng=np.random.default_rng(0), n_samples=0,
            )


class TestExpectedLoad:
    def test_expected_load_is_rate_weighted_membership(self):
        incidences = [
            np.array([[1.0, 0.0], [0.0, 1.0]]),  # 50/50 split
            np.array([[1.0, 1.0]]),  # always both links
        ]
        load = expected_load([2.0, 3.0], incidences)
        assert np.allclose(load, [2.0 * 0.5 + 3.0, 2.0 * 0.5 + 3.0])


class TestCongestionModel:
    def test_method_selection(self):
        model = CongestionModel(exact_max_flows=2)
        assert model.method_for(2) == "exact"
        assert model.method_for(3) == "monte-carlo"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"utilization_threshold": 0.0},
            {"exact_max_flows": -1},
            {"mc_samples": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CongestionModel(**kwargs)

    def test_rejects_wrong_rate_shape(self, instance, demand_payload):
        resolved = DemandMatrix.from_payload(demand_payload).resolve(
            instance.topology
        )
        with pytest.raises(ValueError, match="shape"):
            CongestionModel().predict(resolved, rates=[1.0])

    def test_cache_hit_skips_the_computation(
        self, instance, demand_payload, tmp_path, monkeypatch
    ):
        resolved = DemandMatrix.from_payload(demand_payload).resolve(
            instance.topology
        )
        cache = TrialCache(tmp_path)
        model = CongestionModel()
        cold = model.predict(resolved, cache=cache)
        assert cold.method == "exact" and not cold.cached

        # Any recomputation after the hit would blow up.
        import repro.predict.model as model_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit recomputed the prediction")

        monkeypatch.setattr(model_module, "exceedance_exact", boom)
        monkeypatch.setattr(model_module, "exceedance_sample", boom)
        warm = model.predict(resolved, cache=cache)
        assert warm.cached
        assert np.array_equal(warm.probability, cold.probability)
        assert np.array_equal(warm.expected_load, cold.expected_load)
        assert np.array_equal(
            warm.expected_utilization, cold.expected_utilization
        )

    def test_cache_key_moves_with_rates_threshold_and_seed(
        self, instance, demand_payload, tmp_path
    ):
        resolved = DemandMatrix.from_payload(demand_payload).resolve(
            instance.topology
        )
        cache = TrialCache(tmp_path)
        model = CongestionModel()
        model.predict(resolved, cache=cache)
        shifted = model.predict(
            resolved, rates=resolved.rates * 1.5, cache=cache
        )
        assert not shifted.cached  # rate perturbation = new key
        other_threshold = CongestionModel(utilization_threshold=0.9)
        assert not other_threshold.predict(resolved, cache=cache).cached
        # Monte Carlo keys include the seed; exact keys do not.
        mc_model = CongestionModel(exact_max_flows=0, mc_samples=200)
        first = mc_model.predict(resolved, seed=1, cache=cache)
        assert first.method == "monte-carlo" and not first.cached
        assert mc_model.predict(resolved, seed=1, cache=cache).cached
        assert not mc_model.predict(resolved, seed=2, cache=cache).cached

    def test_exact_prediction_ignores_seed(self, instance, demand_payload):
        resolved = DemandMatrix.from_payload(demand_payload).resolve(
            instance.topology
        )
        model = CongestionModel()
        one = model.predict(resolved, seed=1)
        two = model.predict(resolved, seed=2)
        assert np.array_equal(one.probability, two.probability)
