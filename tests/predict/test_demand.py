"""Demand matrices: payload round-trips, fingerprints, resolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predict.demand import DemandMatrix, DemandShift, Flow


class TestPayloadRoundTrip:
    def test_round_trip_is_stable(self, demand_payload):
        demand = DemandMatrix.from_payload(demand_payload)
        replay = DemandMatrix.from_payload(demand.to_payload())
        assert replay == demand
        assert replay.to_payload() == demand.to_payload()

    def test_equivalent_spellings_canonicalise(self, demand_payload):
        # Int rates, unsorted link capacities, int scales — all normalise
        # to the same canonical payload (and therefore cache key).
        demand_payload["flows"][0]["rate"] = 6  # int spelling
        demand_payload["shifts"][0]["scale"] = 1.6
        base = DemandMatrix.from_payload(demand_payload)
        assert base.flows[0].rate == 6.0
        assert isinstance(base.flows[0].rate, float)

    def test_shift_flow_factors(self):
        shift = DemandShift.from_payload(
            {"name": "surge", "scale": 2.0, "flows": {"f1": 3.0}}
        )
        assert shift.factor("f1") == 6.0
        assert shift.factor("other") == 2.0

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.update(extra=1),
            lambda p: p.update(flows=[]),
            lambda p: p["flows"][0].update(bogus=1),
            lambda p: p["flows"][0].update(rate=-1.0),
            lambda p: p["flows"].append(dict(p["flows"][0])),  # dup name
            lambda p: p["capacities"].update(bogus=1),
            lambda p: p["capacities"].update(default=0.0),
            lambda p: p["shifts"][0].update(scale=-2.0),
            lambda p: p["shifts"].append(dict(p["shifts"][0])),  # dup name
        ],
    )
    def test_malformed_payloads_fail_loudly(self, demand_payload, mutate):
        mutate(demand_payload)
        with pytest.raises(ValueError):
            DemandMatrix.from_payload(demand_payload)

    def test_flow_needs_paths_or_endpoints(self):
        with pytest.raises(ValueError):
            Flow.from_payload({"name": "f", "rate": 1.0})
        with pytest.raises(ValueError):
            Flow.from_payload(
                {"name": "f", "rate": 1.0, "paths": [0], "src": "a", "dst": "b"}
            )


class TestFingerprint:
    def test_round_trip_preserves_fingerprint(self, demand_payload):
        demand = DemandMatrix.from_payload(demand_payload)
        replay = DemandMatrix.from_payload(demand.to_payload())
        assert replay.fingerprint() == demand.fingerprint()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p["flows"][0].update(rate=6.0001),
            lambda p: p["flows"][1].update(paths=[1, 3]),
            lambda p: p["capacities"].update(default=10.5),
            lambda p: p["capacities"].update(links={"AS137->AS5": 3.0}),
            lambda p: p["shifts"][0].update(scale=1.7),
            lambda p: p["shifts"][0].update(flows={"f2": 2.0}),
            lambda p: p["flows"].reverse(),  # order is significant
        ],
    )
    def test_any_perturbation_moves_the_fingerprint(
        self, demand_payload, mutate
    ):
        base = DemandMatrix.from_payload(demand_payload).fingerprint()
        mutate(demand_payload)
        perturbed = DemandMatrix.from_payload(demand_payload).fingerprint()
        assert perturbed != base

    def test_capacity_link_names_not_validated_until_resolve(
        self, demand_payload
    ):
        demand_payload["capacities"]["links"] = {"no-such-link": 3.0}
        DemandMatrix.from_payload(demand_payload)  # parse ok


class TestResolve:
    def test_explicit_ids_and_names(self, instance, demand_payload):
        topology = instance.topology
        name = topology.paths[3].name
        demand_payload["flows"][0]["paths"] = [name, 0]
        resolved = DemandMatrix.from_payload(demand_payload).resolve(topology)
        assert resolved.candidates[0] == (0, 3)
        assert resolved.n_flows == 3
        assert resolved.n_links == topology.n_links

    def test_incidences_match_path_links(self, instance, demand_payload):
        topology = instance.topology
        resolved = DemandMatrix.from_payload(demand_payload).resolve(topology)
        for split, incidence in zip(resolved.candidates, resolved.incidences):
            assert incidence.shape == (len(split), topology.n_links)
            assert not incidence.flags.writeable
            for row, path_id in enumerate(split):
                expected = np.zeros(topology.n_links)
                expected[list(topology.paths[path_id].link_ids)] = 1.0
                assert np.array_equal(incidence[row], expected)

    def test_endpoint_flows_bind_all_routed_paths(self, instance):
        topology = instance.topology
        path = topology.paths[0]
        src = topology.links[path.link_ids[0]].src
        dst = topology.links[path.link_ids[-1]].dst
        demand = DemandMatrix.from_payload(
            {"flows": [{"name": "f", "rate": 1.0, "src": src, "dst": dst}]}
        )
        resolved = demand.resolve(topology)
        assert 0 in resolved.candidates[0]
        # Every bound path really has those endpoints.
        for path_id in resolved.candidates[0]:
            bound = topology.paths[path_id]
            assert str(topology.links[bound.link_ids[0]].src) == str(src)
            assert str(topology.links[bound.link_ids[-1]].dst) == str(dst)

    def test_capacities_default_and_overrides(self, instance, demand_payload):
        topology = instance.topology
        named = topology.links[5].name
        demand_payload["capacities"]["links"] = {named: 3.5}
        resolved = DemandMatrix.from_payload(demand_payload).resolve(topology)
        assert resolved.capacities[5] == 3.5
        others = np.delete(resolved.capacities, 5)
        assert np.all(others == 10.0)

    def test_rates_under_shift(self, instance, demand_payload):
        resolved = DemandMatrix.from_payload(demand_payload).resolve(
            instance.topology
        )
        shift = DemandShift(
            name="s", scale=2.0, flow_scales=(("f1", 1.5),)
        )
        assert np.array_equal(
            resolved.rates_under(shift), [12.0, 15.0, 8.0]
        )

    @pytest.mark.parametrize(
        "flow",
        [
            {"name": "f", "rate": 1.0, "paths": [10_000]},
            {"name": "f", "rate": 1.0, "src": "nowhere", "dst": "nohow"},
        ],
    )
    def test_unresolvable_flows_fail_loudly(self, instance, flow):
        demand = DemandMatrix.from_payload({"flows": [flow]})
        with pytest.raises(ValueError, match=f"flow '{flow['name']}'"):
            demand.resolve(instance.topology)

    def test_unknown_path_name_fails_loudly(self, instance):
        from repro.exceptions import TopologyError

        demand = DemandMatrix.from_payload(
            {"flows": [{"name": "f", "rate": 1.0, "paths": ["no-such-path"]}]}
        )
        with pytest.raises(TopologyError, match="no path named"):
            demand.resolve(instance.topology)

    def test_unknown_capacity_link_fails_at_resolve(
        self, instance, demand_payload
    ):
        demand_payload["capacities"]["links"] = {"no-such-link": 3.0}
        with pytest.raises(ValueError, match="unknown link"):
            DemandMatrix.from_payload(demand_payload).resolve(
                instance.topology
            )
