"""Shared fixtures for the predict-layer tests."""

from __future__ import annotations

import pytest

from repro.serve.registry import instance_from_payload

#: Same small generated instance the serve tests query.
GENERATOR = {
    "kind": "brite",
    "n_ases": 12,
    "routers_per_as": 3,
    "n_paths": 30,
    "seed": 7,
}

#: A demand whose three flows contend on overlapping path pools.
DEMAND = {
    "flows": [
        {"name": "f0", "rate": 6.0, "paths": [0, 1]},
        {"name": "f1", "rate": 5.0, "paths": [1, 2]},
        {"name": "f2", "rate": 4.0, "paths": [0, 2]},
    ],
    "capacities": {"default": 10.0},
    "shifts": [{"name": "surge", "scale": 1.6}],
}


@pytest.fixture(scope="session")
def instance():
    return instance_from_payload({"generator": GENERATOR})


@pytest.fixture()
def demand_payload():
    import copy

    return copy.deepcopy(DEMAND)
