"""Unit tests for the merge transformations (Section 3.3)."""

import pytest

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.core.identifiability import (
    check_assumption4,
    structurally_unidentifiable_nodes,
)
from repro.core.transform import (
    merge_correlated_node,
    merge_indistinguishable_links,
    transform_until_identifiable,
)
from repro.exceptions import TopologyError


class TestMergeCorrelatedNode:
    def test_fig1b_merge_matches_paper(self, instance_1b):
        """Removing v3 from Fig 1(b) yields two merged links v4->v1 and
        v4->v2 in a single correlation set (paper Section 3.3)."""
        result = merge_correlated_node(
            instance_1b.topology, instance_1b.correlation, "v3"
        )
        topology = result.topology
        assert topology.n_links == 2
        endpoints = {(l.src, l.dst) for l in topology.links}
        assert endpoints == {("v4", "v1"), ("v4", "v2")}
        # Single correlation set containing both merged links.
        assert result.correlation.n_sets == 1
        assert len(result.correlation.sets[0]) == 2

    def test_fig1b_merge_restores_assumption4(self, instance_1b):
        result = merge_correlated_node(
            instance_1b.topology, instance_1b.correlation, "v3"
        )
        assert check_assumption4(result.correlation).holds

    def test_origin_mapping(self, instance_1b):
        result = merge_correlated_node(
            instance_1b.topology, instance_1b.correlation, "v3"
        )
        old = instance_1b.topology
        origin_names = {
            frozenset(old.links[k].name for k in origins)
            for origins in result.origin.values()
        }
        assert origin_names == {
            frozenset({"e3", "e1"}),
            frozenset({"e3", "e2"}),
        }

    def test_paths_preserved(self, instance_1b):
        result = merge_correlated_node(
            instance_1b.topology, instance_1b.correlation, "v3"
        )
        assert result.topology.n_paths == instance_1b.topology.n_paths
        for path in result.topology.paths:
            assert path.length == 1

    def test_merging_path_endpoint_rejected(self, instance_1a):
        """v1 terminates P1; it cannot be merged away."""
        with pytest.raises(TopologyError):
            merge_correlated_node(
                instance_1a.topology, instance_1a.correlation, "v1"
            )

    def test_unknown_node_rejected(self, instance_1a):
        with pytest.raises(TopologyError, match="no incident links"):
            merge_correlated_node(
                instance_1a.topology, instance_1a.correlation, "ghost"
            )

    def test_merged_nodes_recorded(self, instance_1b):
        result = merge_correlated_node(
            instance_1b.topology, instance_1b.correlation, "v3"
        )
        assert result.merged_nodes == ("v3",)


class TestTransformUntilIdentifiable:
    def test_fig1b_converges_in_one_step(self, instance_1b):
        result = transform_until_identifiable(
            instance_1b.topology, instance_1b.correlation
        )
        assert result.merged_nodes == ("v3",)
        assert (
            structurally_unidentifiable_nodes(
                result.topology, result.correlation
            )
            == []
        )

    def test_fig1a_untouched(self, instance_1a):
        result = transform_until_identifiable(
            instance_1a.topology, instance_1a.correlation
        )
        assert result.merged_nodes == ()
        assert result.topology == instance_1a.topology

    def test_all_links_one_set_merges_to_paths(self, instance_1a):
        """Paper Section 3.3: assigning all Fig-1(a) links to one set and
        transforming yields one merged link per end-to-end path."""
        topology = instance_1a.topology
        one_set = CorrelationStructure(
            topology, [list(range(topology.n_links))]
        )
        result = transform_until_identifiable(topology, one_set)
        assert result.topology.n_links == 3  # one per path
        for path in result.topology.paths:
            assert path.length == 1


class TestMergeIndistinguishableLinks:
    def test_chain_collapses(self):
        builder = TopologyBuilder()
        builder.add_link("a", "u", "v")
        builder.add_link("b", "v", "w")
        builder.add_link("c", "w", "x")
        builder.add_path("P1", ["a", "b", "c"])
        topology = builder.build()
        result = merge_indistinguishable_links(topology)
        assert result.topology.n_links == 1
        merged = result.topology.links[0]
        assert (merged.src, merged.dst) == ("u", "x")
        assert result.origin[0] == frozenset({0, 1, 2})

    def test_branching_preserved(self, instance_1a):
        """Fig 1(a) has no two links with identical coverage: no merge."""
        result = merge_indistinguishable_links(instance_1a.topology)
        assert result.topology.n_links == instance_1a.topology.n_links

    def test_partial_runs(self):
        builder = TopologyBuilder()
        builder.add_link("a", "u", "v")
        builder.add_link("b", "v", "w")
        builder.add_link("c", "w", "x")
        builder.add_path("P1", ["a", "b", "c"])
        builder.add_path("P2", ["b", "c"])
        topology = builder.build()
        result = merge_indistinguishable_links(topology)
        # b and c share coverage {P1,P2} and merge; a stays alone.
        assert result.topology.n_links == 2
        names = {link.name for link in result.topology.links}
        assert names == {"a", "b+c"}

    def test_result_has_trivial_correlation(self, instance_1a):
        result = merge_indistinguishable_links(instance_1a.topology)
        assert result.correlation.is_trivial
