"""Unit tests for Assumption-4 checking."""

import pytest

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.core.identifiability import (
    check_assumption4,
    structurally_unidentifiable_nodes,
    unidentifiable_links_structural,
)


class TestExactCheck:
    def test_fig1a_holds(self, instance_1a):
        report = check_assumption4(instance_1a.correlation)
        assert report.holds
        assert report.exhaustive
        assert report.collisions == ()
        assert report.unidentifiable_links == frozenset()

    def test_fig1b_fails(self, instance_1b):
        """{e1,e2} and {e3} cover the same paths (paper Section 3.1)."""
        report = check_assumption4(instance_1b.correlation)
        assert not report.holds
        topology = instance_1b.topology
        collision_names = {
            frozenset(
                frozenset(topology.links[k].name for k in side)
                for side in pair
            )
            for pair in report.collisions
        }
        assert (
            frozenset({frozenset({"e1", "e2"}), frozenset({"e3"})})
            in collision_names
        )

    def test_fig1b_unidentifiable_links(self, instance_1b):
        report = check_assumption4(instance_1b.correlation)
        names = {
            instance_1b.topology.links[k].name
            for k in report.unidentifiable_links
        }
        assert names == {"e1", "e2", "e3"}

    def test_trivial_structure_on_fig1a_holds(self, instance_1a):
        trivial = CorrelationStructure.trivial(instance_1a.topology)
        assert check_assumption4(trivial).holds

    def test_collect_all_finds_every_pair(self):
        # Three parallel links, all in one set, with identical coverage
        # via a shared path... build: two links covering the same path.
        builder = TopologyBuilder()
        builder.add_link("a", "u", "v")
        builder.add_link("b", "v", "w")
        builder.add_path("P1", ["a", "b"])
        topology = builder.build()
        correlation = CorrelationStructure(topology, [[0], [1]])
        report = check_assumption4(correlation, collect_all=True)
        # ψ({a}) == ψ({b}) == {P1}: one collision pair.
        assert not report.holds
        assert len(report.collisions) == 1

    def test_capped_check_is_marked_non_exhaustive(self, instance_1a):
        report = check_assumption4(
            instance_1a.correlation, max_subset_size=1
        )
        assert report.holds
        assert not report.exhaustive

    def test_describe_mentions_links(self, instance_1b):
        report = check_assumption4(instance_1b.correlation)
        text = report.describe(instance_1b.topology)
        assert "violated" in text
        assert "e3" in text

    def test_describe_clean(self, instance_1a):
        report = check_assumption4(instance_1a.correlation)
        assert "holds" in report.describe(instance_1a.topology)


class TestStructuralCriterion:
    def test_fig1b_offending_node(self, instance_1b):
        """v3 has all ingress in {e3} and all egress in {e1,e2}."""
        nodes = structurally_unidentifiable_nodes(
            instance_1b.topology, instance_1b.correlation
        )
        assert nodes == ["v3"]

    def test_fig1a_no_offender(self, instance_1a):
        """v3 in Fig 1(a) touches three sets: not an offender."""
        nodes = structurally_unidentifiable_nodes(
            instance_1a.topology, instance_1a.correlation
        )
        assert nodes == []

    def test_single_set_everything(self, instance_1b):
        """All links in one set: the intermediate node offends (the
        paper's 'why not assign all links to one correlation set')."""
        topology = instance_1b.topology
        one_set = CorrelationStructure(
            topology, [list(range(topology.n_links))]
        )
        assert structurally_unidentifiable_nodes(topology, one_set) == [
            "v3"
        ]

    def test_structural_links(self, instance_1b):
        links = unidentifiable_links_structural(
            instance_1b.topology, instance_1b.correlation
        )
        names = {instance_1b.topology.links[k].name for k in links}
        assert names == {"e1", "e2", "e3"}

    def test_structural_agrees_with_exact_on_fig1b(self, instance_1b):
        exact = check_assumption4(instance_1b.correlation)
        structural = unidentifiable_links_structural(
            instance_1b.topology, instance_1b.correlation
        )
        assert structural == exact.unidentifiable_links
