"""Unit tests for TopologyBuilder."""

import pytest

from repro.core.builder import TopologyBuilder
from repro.exceptions import TopologyError


class TestLinks:
    def test_add_and_lookup(self):
        builder = TopologyBuilder()
        link = builder.add_link("e1", "a", "b")
        assert builder.link("e1") is link
        assert builder.has_link("e1")

    def test_duplicate_name_rejected(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        with pytest.raises(TopologyError, match="duplicate"):
            builder.add_link("e1", "b", "c")

    def test_ensure_link_idempotent(self):
        builder = TopologyBuilder()
        first = builder.ensure_link("e1", "a", "b")
        second = builder.ensure_link("e1", "a", "b")
        assert first is second
        assert builder.n_links == 1

    def test_ensure_link_endpoint_mismatch_rejected(self):
        builder = TopologyBuilder()
        builder.ensure_link("e1", "a", "b")
        with pytest.raises(TopologyError, match="already exists"):
            builder.ensure_link("e1", "a", "c")

    def test_missing_link_lookup(self):
        with pytest.raises(TopologyError):
            TopologyBuilder().link("nope")


class TestPaths:
    def test_add_path_by_link_names(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        builder.add_link("e2", "b", "c")
        path = builder.add_path("P1", ["e1", "e2"])
        assert path.link_ids == (0, 1)

    def test_duplicate_path_name_rejected(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        builder.add_path("P1", ["e1"])
        with pytest.raises(TopologyError, match="duplicate"):
            builder.add_path("P1", ["e1"])

    def test_add_path_via_nodes(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        builder.add_link("e2", "b", "c")
        path = builder.add_path_via_nodes("P1", ["a", "b", "c"])
        assert path.link_ids == (0, 1)

    def test_via_nodes_missing_hop_rejected(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        with pytest.raises(TopologyError, match="no link"):
            builder.add_path_via_nodes("P1", ["a", "c"])

    def test_via_nodes_ambiguous_hop_rejected(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        builder.add_link("e1bis", "a", "b")
        with pytest.raises(TopologyError, match="ambiguous"):
            builder.add_path_via_nodes("P1", ["a", "b"])

    def test_via_nodes_too_short_rejected(self):
        with pytest.raises(TopologyError, match="at least two"):
            TopologyBuilder().add_path_via_nodes("P1", ["a"])


class TestBuild:
    def test_build_produces_valid_topology(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        builder.add_path("P1", ["e1"])
        topology = builder.build()
        assert topology.n_links == 1
        assert topology.n_paths == 1

    def test_counters(self):
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        assert builder.n_links == 1
        assert builder.n_paths == 0


class TestFromPaths:
    def test_links_shared_across_walks(self):
        topology = TopologyBuilder.from_paths(
            [["a", "b", "c"], ["a", "b", "d"]]
        )
        # a->b is shared; total links: a->b, b->c, b->d.
        assert topology.n_links == 3
        assert topology.n_paths == 2

    def test_link_names_encode_endpoints(self):
        topology = TopologyBuilder.from_paths([["x", "y"]])
        assert topology.links[0].name == "x->y"

    def test_short_walk_rejected(self):
        with pytest.raises(TopologyError):
            TopologyBuilder.from_paths([["only"]])

    def test_path_prefix(self):
        topology = TopologyBuilder.from_paths([["a", "b"]], path_prefix="Q")
        assert topology.paths[0].name == "Q1"
