"""Unit tests for congestion factors and the Lemma-3 conversions."""

import math

import pytest

from repro.core.factors import CongestionFactors
from repro.exceptions import ModelError


@pytest.fixture()
def factors_1a(instance_1a, model_1a):
    """Exact congestion factors of the Fig-1(a) ground truth.

    With P(S1=∅)=0.7, P(S1={e1})=P(S1={e2})=0.05, P(S1={e1,e2})=0.2:
    α_{e1} = α_{e2} = 1/14, α_{e1,e2} = 2/7; α_{e3} = 3/7, α_{e4} = 3/17.
    """
    topology = instance_1a.topology
    e1, e2, e3, e4 = (
        topology.link(n).id for n in ("e1", "e2", "e3", "e4")
    )
    return (
        CongestionFactors(
            instance_1a.correlation,
            {
                frozenset({e1}): 0.05 / 0.7,
                frozenset({e2}): 0.05 / 0.7,
                frozenset({e1, e2}): 0.2 / 0.7,
                frozenset({e3}): 0.3 / 0.7,
                frozenset({e4}): 0.15 / 0.85,
            },
        ),
        (e1, e2, e3, e4),
    )


class TestValidation:
    def test_empty_subset_rejected(self, instance_1a):
        with pytest.raises(ModelError, match="empty"):
            CongestionFactors(instance_1a.correlation, {frozenset(): 1.0})

    def test_cross_set_subset_rejected(self, instance_1a):
        topology = instance_1a.topology
        e1, e3 = topology.link("e1").id, topology.link("e3").id
        with pytest.raises(ModelError, match="spans"):
            CongestionFactors(
                instance_1a.correlation, {frozenset({e1, e3}): 0.5}
            )

    def test_negative_factor_rejected(self, instance_1a):
        e1 = instance_1a.topology.link("e1").id
        with pytest.raises(ModelError, match="negative"):
            CongestionFactors(
                instance_1a.correlation, {frozenset({e1}): -0.1}
            )


class TestLemma3:
    def test_p_set_empty(self, factors_1a):
        factors, (e1, *_rest) = factors_1a
        set_index = factors.correlation.set_index_of(e1)
        assert math.isclose(factors.p_set_empty(set_index), 0.7)

    def test_p_set_equals(self, factors_1a):
        factors, (e1, e2, *_rest) = factors_1a
        assert math.isclose(factors.p_set_equals({e1, e2}), 0.2)
        assert math.isclose(factors.p_set_equals({e1}), 0.05)

    def test_p_set_equals_rejects_empty(self, factors_1a):
        factors, _ = factors_1a
        with pytest.raises(ModelError):
            factors.p_set_equals(frozenset())

    def test_link_marginals_match_ground_truth(self, factors_1a, truth_1a):
        factors, links = factors_1a
        marginals = factors.link_marginals()
        for link_id in links:
            assert math.isclose(
                marginals[link_id], truth_1a[link_id], abs_tol=1e-12
            )

    def test_link_marginal_single(self, factors_1a):
        factors, (e1, *_rest) = factors_1a
        assert math.isclose(factors.link_marginal(e1), 0.25)

    def test_joint_within_set(self, factors_1a):
        factors, (e1, e2, *_rest) = factors_1a
        assert math.isclose(factors.joint_within_set({e1, e2}), 0.2)

    def test_joint_within_set_rejects_cross_set(self, factors_1a):
        factors, (e1, _e2, e3, _e4) = factors_1a
        with pytest.raises(ModelError, match="single correlation set"):
            factors.joint_within_set({e1, e3})

    def test_joint_cross_set_is_product(self, factors_1a, model_1a):
        """P(e1∧e3) = P(e1)·P(e3) — paper Section 3.2, Step 4."""
        factors, (e1, _e2, e3, _e4) = factors_1a
        assert math.isclose(
            factors.joint({e1, e3}), model_1a.joint({e1, e3})
        )

    def test_joint_empty_is_one(self, factors_1a):
        factors, _ = factors_1a
        assert factors.joint(frozenset()) == 1.0

    def test_missing_factor_defaults_to_zero(self, instance_1a):
        e1 = instance_1a.topology.link("e1").id
        factors = CongestionFactors(instance_1a.correlation, {})
        assert factors.factor({e1}) == 0.0
        assert factors.link_marginal(e1) == 0.0
