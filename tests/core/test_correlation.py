"""Unit tests for CorrelationStructure (sets, subsets, eligibility)."""

import pytest

from repro.core.correlation import CorrelationStructure
from repro.exceptions import CorrelationError


class TestPartitionValidation:
    def test_fig1a_sets(self, instance_1a):
        correlation = instance_1a.correlation
        assert correlation.n_sets == 3
        sizes = sorted(len(s) for s in correlation.sets)
        assert sizes == [1, 1, 2]

    def test_missing_link_rejected(self, instance_1a):
        with pytest.raises(CorrelationError, match="cover every link"):
            CorrelationStructure(instance_1a.topology, [[0, 1], [2]])

    def test_duplicate_link_rejected(self, instance_1a):
        with pytest.raises(CorrelationError, match="more than one"):
            CorrelationStructure(
                instance_1a.topology, [[0, 1], [1, 2], [3]]
            )

    def test_unknown_link_rejected(self, instance_1a):
        with pytest.raises(CorrelationError, match="unknown"):
            CorrelationStructure(
                instance_1a.topology, [[0, 1], [2], [3], [99]]
            )

    def test_empty_set_rejected(self, instance_1a):
        with pytest.raises(CorrelationError, match="empty"):
            CorrelationStructure(
                instance_1a.topology, [[0, 1], [2], [3], []]
            )


class TestConstructors:
    def test_trivial_is_all_singletons(self, instance_1a):
        trivial = CorrelationStructure.trivial(instance_1a.topology)
        assert trivial.is_trivial
        assert trivial.n_sets == instance_1a.topology.n_links

    def test_fig1a_not_trivial(self, instance_1a):
        assert not instance_1a.correlation.is_trivial

    def test_from_link_names(self, instance_1a):
        rebuilt = CorrelationStructure.from_link_names(
            instance_1a.topology, [["e1", "e2"], ["e3"], ["e4"]]
        )
        assert rebuilt == instance_1a.correlation


class TestMembership:
    def test_set_of(self, instance_1a):
        correlation = instance_1a.correlation
        topology = instance_1a.topology
        e1, e2 = topology.link("e1").id, topology.link("e2").id
        assert correlation.set_of(e1) == correlation.set_of(e2)

    def test_same_set(self, instance_1a):
        topology = instance_1a.topology
        correlation = instance_1a.correlation
        e1, e2, e3 = (topology.link(n).id for n in ("e1", "e2", "e3"))
        assert correlation.same_set(e1, e2)
        assert not correlation.same_set(e1, e3)

    def test_unknown_link(self, instance_1a):
        with pytest.raises(CorrelationError):
            instance_1a.correlation.set_index_of(99)

    def test_largest_set_size(self, instance_1a):
        assert instance_1a.correlation.largest_set_size == 2


class TestSubsets:
    def test_fig1a_c_tilde(self, instance_1a):
        """C̃ = {{e1},{e2},{e1,e2},{e3},{e4}} (paper Section 2.1)."""
        topology = instance_1a.topology
        names = {
            frozenset(topology.links[k].name for k in subset)
            for subset in instance_1a.correlation.iter_subsets()
        }
        assert names == {
            frozenset({"e1"}),
            frozenset({"e2"}),
            frozenset({"e1", "e2"}),
            frozenset({"e3"}),
            frozenset({"e4"}),
        }

    def test_n_subsets_arithmetic(self, instance_1a):
        # |C̃| = (2^2-1) + (2^1-1) + (2^1-1) = 5
        assert instance_1a.correlation.n_subsets() == 5

    def test_subset_size_cap(self, instance_1a):
        capped = list(
            instance_1a.correlation.iter_subsets(max_subset_size=1)
        )
        assert all(len(s) == 1 for s in capped)
        assert len(capped) == 4

    def test_subsets_of_set(self, instance_1a):
        correlation = instance_1a.correlation
        big = max(
            range(correlation.n_sets),
            key=lambda i: len(correlation.sets[i]),
        )
        subsets = list(correlation.subsets_of_set(big))
        assert len(subsets) == 3  # {e1}, {e2}, {e1,e2}

    def test_huge_set_requires_cap(self, planetlab_small):
        import repro.core.correlation as module

        # Simulate a huge set by lowering the enumerable bound.
        original = module._MAX_ENUMERABLE_SET_SIZE
        module._MAX_ENUMERABLE_SET_SIZE = 1
        try:
            with pytest.raises(CorrelationError, match="too large"):
                list(planetlab_small.correlation.iter_subsets())
        finally:
            module._MAX_ENUMERABLE_SET_SIZE = original


class TestEligibility:
    def test_all_fig1a_paths_are_correlation_free(self, instance_1a):
        correlation = instance_1a.correlation
        for path in instance_1a.topology.paths:
            assert correlation.path_is_correlation_free(path.id)

    def test_pair_p2_p3_is_free(self, instance_1a):
        """The paper's Eq. 7 uses the pair (P2, P3)."""
        topology = instance_1a.topology
        correlation = instance_1a.correlation
        p2, p3 = topology.path("P2").id, topology.path("P3").id
        assert correlation.pair_is_correlation_free(p2, p3)

    def test_pair_p1_p2_is_not_free(self, instance_1a):
        """The paper's Eq. 8 discussion: (P1, P2) would introduce x12."""
        topology = instance_1a.topology
        correlation = instance_1a.correlation
        p1, p2 = topology.path("P1").id, topology.path("P2").id
        assert not correlation.pair_is_correlation_free(p1, p2)

    def test_path_with_two_same_set_links_not_free(self):
        from repro.core.builder import TopologyBuilder

        builder = TopologyBuilder()
        builder.add_link("a", "u", "v")
        builder.add_link("b", "v", "w")
        builder.add_path("P1", ["a", "b"])
        topology = builder.build()
        correlation = CorrelationStructure(topology, [[0, 1]])
        assert not correlation.path_is_correlation_free(0)
        assert not correlation.pair_is_correlation_free(0, 0)

    def test_shared_identical_link_is_allowed_in_pairs(self):
        from repro.core.builder import TopologyBuilder

        builder = TopologyBuilder()
        builder.add_link("stem", "s", "m")
        builder.add_link("left", "m", "l")
        builder.add_link("right", "m", "r")
        builder.add_path("P1", ["stem", "left"])
        builder.add_path("P2", ["stem", "right"])
        topology = builder.build()
        correlation = CorrelationStructure.trivial(topology)
        # Sharing the *same* link "stem" is fine: one random variable.
        assert correlation.pair_is_correlation_free(0, 1)

    def test_touch_map(self, instance_1a):
        correlation = instance_1a.correlation
        topology = instance_1a.topology
        touched = correlation.path_touch_map(topology.path("P1").id)
        assert len(touched) == 2  # e3's set and {e1,e2}'s set
