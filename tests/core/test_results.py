"""Unit tests for the InferenceResult container."""

import numpy as np
import pytest

from repro.core.results import InferenceResult


def make_result(probabilities):
    probabilities = np.asarray(probabilities, dtype=np.float64)
    return InferenceResult(
        algorithm="correlation",
        congestion_probabilities=probabilities,
        log_good=np.log(1.0 - probabilities),
        uncovered_links=frozenset(),
        n_single_equations=3,
        n_pair_equations=1,
        rank=4,
        solver="l1",
    )


class TestAccessors:
    def test_counts(self):
        result = make_result([0.1, 0.2])
        assert result.n_links == 2
        assert result.n_equations == 4

    def test_probability_lookup(self):
        result = make_result([0.1, 0.2])
        assert result.probability(1) == pytest.approx(0.2)

    def test_probability_by_name(self, instance_1a):
        result = make_result([0.1, 0.2, 0.3, 0.4])
        assert result.probability_by_name(
            instance_1a.topology, "e3"
        ) == pytest.approx(0.3)

    def test_as_dict(self, instance_1a):
        result = make_result([0.1, 0.2, 0.3, 0.4])
        mapping = result.as_dict(instance_1a.topology)
        assert mapping["e1"] == pytest.approx(0.1)
        assert len(mapping) == 4


class TestErrors:
    def test_absolute_errors(self):
        result = make_result([0.1, 0.6])
        errors = result.absolute_errors(np.array([0.2, 0.5]))
        assert np.allclose(errors, [0.1, 0.1])

    def test_shape_mismatch_rejected(self):
        result = make_result([0.1, 0.6])
        with pytest.raises(ValueError, match="shape"):
            result.absolute_errors(np.array([0.2]))
