"""Batch equation-builder equivalence and sparse assembly tests."""

import numpy as np
import pytest

from repro.core.correlation import CorrelationStructure
from repro.core.equations import _RankTracker, build_equations
from repro.simulate.observations import PathObservations
from repro.utils.rng import as_generator


class ScalarOnlyProvider:
    """A provider speaking only the scalar protocol, forcing the
    builder's fallback path; values delegate to the batch kernels so
    both paths must agree bit-for-bit."""

    def __init__(self, observations: PathObservations) -> None:
        self._observations = observations

    def log_good(self, path_id: int) -> float:
        return self._observations.log_good(path_id)

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        return self._observations.log_good_pair(path_a, path_b)


def simulated_observations(instance, seed, n_snapshots=400):
    from repro.eval import make_clustered_scenario
    from repro.simulate import ExperimentConfig, run_experiment

    scenario = make_clustered_scenario(
        instance, congested_fraction=0.10, seed=seed
    )
    run = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=n_snapshots, packets_per_path=300),
        seed=seed + 1,
    )
    return run.observations


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("selection", ["independent", "all"])
    def test_batch_and_scalar_providers_build_identical_systems(
        self, planetlab_small, selection
    ):
        observations = simulated_observations(planetlab_small, seed=11)
        batch = build_equations(
            planetlab_small.topology,
            planetlab_small.correlation,
            observations,
            selection=selection,
        )
        scalar = build_equations(
            planetlab_small.topology,
            planetlab_small.correlation,
            ScalarOnlyProvider(observations),
            selection=selection,
        )
        assert batch.rank == scalar.rank
        assert batch.n_single == scalar.n_single
        assert batch.n_pair == scalar.n_pair
        assert len(batch.rows) == len(scalar.rows)
        for row_a, row_b in zip(batch.rows, scalar.rows):
            assert row_a.kind == row_b.kind
            assert row_a.paths == row_b.paths
            assert row_a.link_ids == row_b.link_ids
            assert row_a.value == row_b.value  # bit-for-bit

    def test_rebuild_is_deterministic(self, planetlab_small):
        observations = simulated_observations(planetlab_small, seed=12)
        first = build_equations(
            planetlab_small.topology,
            planetlab_small.correlation,
            observations,
        )
        second = build_equations(
            planetlab_small.topology,
            planetlab_small.correlation,
            observations,
        )
        assert [r.paths for r in first.rows] == [
            r.paths for r in second.rows
        ]
        assert [r.value for r in first.rows] == [
            r.value for r in second.rows
        ]


class TestSparseAssembly:
    def test_sparse_matches_dense(self, planetlab_small):
        observations = simulated_observations(planetlab_small, seed=13)
        system = build_equations(
            planetlab_small.topology,
            planetlab_small.correlation,
            observations,
        )
        sparse_matrix, sparse_values = system.sparse_matrix()
        dense_matrix, dense_values = system.matrix()
        assert np.array_equal(sparse_matrix.toarray(), dense_matrix)
        assert np.array_equal(sparse_values, dense_values)
        assert set(np.unique(dense_matrix)) <= {0.0, 1.0}

    def test_rows_have_unit_coefficients_on_their_links(
        self, planetlab_small
    ):
        observations = simulated_observations(planetlab_small, seed=14)
        system = build_equations(
            planetlab_small.topology,
            planetlab_small.correlation,
            observations,
        )
        matrix, _ = system.sparse_matrix()
        for index, row in enumerate(system.rows):
            dense_row = matrix.getrow(index).toarray().ravel()
            assert set(np.flatnonzero(dense_row)) == set(row.link_ids)


class TestRankTracker:
    def test_clone_is_independent(self):
        tracker = _RankTracker(4)
        assert tracker.try_add(np.array([1.0, 1.0, 0.0, 0.0]))
        snapshot = tracker.clone()
        assert tracker.try_add(np.array([0.0, 1.0, 1.0, 0.0]))
        assert tracker.rank == 2
        assert snapshot.rank == 1
        # The clone can evolve independently and reach the same rank.
        assert snapshot.try_add(np.array([0.0, 1.0, 1.0, 0.0]))
        assert snapshot.rank == 2

    def test_dependent_rows_rejected(self):
        rng = as_generator(3)
        tracker = _RankTracker(6)
        basis = [
            np.array([1.0, 0, 0, 1, 0, 0]),
            np.array([0.0, 1, 0, 1, 0, 0]),
            np.array([0.0, 0, 1, 0, 1, 0]),
        ]
        for row in basis:
            assert tracker.try_add(row)
        for _ in range(10):
            weights = rng.normal(size=3)
            combo = sum(w * row for w, row in zip(weights, basis))
            assert not tracker.try_add(combo)
        assert tracker.rank == 3

    def test_batch_dependent_agrees_with_sequential(self):
        from scipy import sparse

        rng = as_generator(4)
        n_cols = 24
        tracker = _RankTracker(n_cols)
        for _ in range(10):
            row = (rng.random(n_cols) < 0.3).astype(np.float64)
            tracker.try_add(row)
        candidates = (rng.random((40, n_cols)) < 0.3).astype(np.float64)
        # Mix in provably dependent rows: random combinations of basis.
        stored = tracker._rows[: tracker.rank]
        for index in range(0, 40, 4):
            weights = rng.normal(size=tracker.rank)
            candidates[index] = weights @ stored
        mask = tracker.batch_dependent(sparse.csr_matrix(candidates))
        for row, dependent in zip(candidates, mask):
            residual = tracker.residual(row)
            assert dependent == (np.abs(residual).max() <= 1e-9)
