"""Unit tests for the Section-4 equation builder."""

import math

import numpy as np
import pytest

from repro.core.correlation import CorrelationStructure
from repro.core.equations import build_equations
from repro.exceptions import SolverError


class TestFig1aSystem:
    """The worked example of Section 4: exactly 4 equations, rank 4."""

    def test_paper_equation_counts(self, instance_1a, oracle_1a):
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        assert system.n_single == 3  # Eqs. 4, 5, 6
        assert system.n_pair == 1  # Eq. 7 (P2, P3)
        assert system.rank == 4
        assert system.is_fully_determined

    def test_pair_row_is_p2_p3(self, instance_1a, oracle_1a):
        """Only the (P2, P3) pair is eligible — (P1, P2) and (P1, P3)
        would introduce the joint unknown x12 (paper Eq. 8)."""
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        pair_rows = [row for row in system.rows if row.kind == "pair"]
        assert len(pair_rows) == 1
        topology = instance_1a.topology
        names = {topology.paths[p].name for p in pair_rows[0].paths}
        assert names == {"P2", "P3"}

    def test_pair_row_links_are_union(self, instance_1a, oracle_1a):
        """Eq. 7: y23 = x2 + x3 + x4."""
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        pair_row = next(row for row in system.rows if row.kind == "pair")
        topology = instance_1a.topology
        names = {topology.links[k].name for k in pair_row.link_ids}
        assert names == {"e2", "e3", "e4"}

    def test_values_match_oracle(self, instance_1a, oracle_1a):
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        for row in system.rows:
            if row.kind == "path":
                assert math.isclose(
                    row.value, oracle_1a.log_good(row.paths[0])
                )
            else:
                assert math.isclose(
                    row.value, oracle_1a.log_good_pair(*row.paths)
                )

    def test_matrix_shape(self, instance_1a, oracle_1a):
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        matrix, values = system.matrix()
        assert matrix.shape == (4, 4)
        assert values.shape == (4,)
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_no_uncovered_links(self, instance_1a, oracle_1a):
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        assert system.uncovered_links == frozenset()


class TestSelectionModes:
    def test_all_mode_keeps_redundant_rows(self, instance_1a, oracle_1a):
        independent = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            selection="independent",
        )
        everything = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            selection="all",
        )
        assert everything.n_single >= independent.n_single
        assert everything.rank == independent.rank

    def test_invalid_selection_rejected(self, instance_1a, oracle_1a):
        with pytest.raises(ValueError, match="selection"):
            build_equations(
                instance_1a.topology,
                instance_1a.correlation,
                oracle_1a,
                selection="bogus",
            )

    def test_pair_candidate_cap(self, instance_1a, oracle_1a):
        system = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            max_pair_candidates=0,
        )
        assert system.n_pair == 0
        assert system.rank < instance_1a.topology.n_links

    def test_deterministic_given_seed(self, instance_1a, oracle_1a):
        a = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            pair_order_seed=7,
        )
        b = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            pair_order_seed=7,
        )
        assert [r.paths for r in a.rows] == [r.paths for r in b.rows]


class TestCorrelationFiltering:
    def test_trivial_structure_admits_all_paths(
        self, instance_1a, oracle_1a
    ):
        trivial = CorrelationStructure.trivial(instance_1a.topology)
        system = build_equations(
            instance_1a.topology, trivial, oracle_1a
        )
        assert len(system.eligible_paths) == instance_1a.topology.n_paths

    def test_fully_correlated_structure_blocks_multilink_paths(
        self, instance_1a, oracle_1a
    ):
        topology = instance_1a.topology
        one_set = CorrelationStructure(
            topology, [list(range(topology.n_links))]
        )
        system = build_equations(topology, one_set, oracle_1a)
        # Every Fig-1(a) path has two links, both in the single set.
        assert system.eligible_paths == ()
        with pytest.raises(SolverError, match="no equations"):
            system.matrix()

    def test_soundness_under_factorisation(self, instance_1a, oracle_1a):
        """Every accepted row must be *exactly* consistent with the true
        log-good probabilities: x_true solves the system when links
        spanning different sets are independent."""
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        # x_true from the per-link good probabilities of the ground truth.
        import numpy as np

        from tests.conftest import make_fig1a_model

        model = make_fig1a_model(instance_1a)
        truth = model.link_marginals()
        x_true = np.log(1.0 - truth)
        matrix, values = system.matrix()
        residual = matrix @ x_true - values
        assert np.allclose(residual, 0.0, atol=1e-9)


class TestSharedLinkPairEnumeration:
    def test_disjoint_pairs_never_examined(self, instance_1a, oracle_1a):
        """Pairs without shared links are provably redundant given the
        single-path rows; the builder must not emit them."""
        system = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            selection="all",
        )
        topology = instance_1a.topology
        for row in system.rows:
            if row.kind == "pair":
                a, b = row.paths
                shared = set(topology.paths[a].link_ids) & set(
                    topology.paths[b].link_ids
                )
                assert shared
