"""Unit tests for the independence baseline [12]."""

import numpy as np

from repro.core.independence_algorithm import infer_congestion_independent
from repro.core.nguyen_thiran import infer_congestion_single_path


class TestBaselineOnIndependentTruth:
    def test_correct_when_links_actually_independent(self, instance_1a):
        """Sanity: the baseline is right when its assumption holds."""
        from repro.core.correlation import CorrelationStructure
        from repro.model import NetworkCongestionModel
        from repro.simulate import ExactPathStateDistribution

        topology = instance_1a.topology
        trivial = CorrelationStructure.trivial(topology)
        model = NetworkCongestionModel.independent(
            trivial, {k: 0.05 + 0.1 * k for k in range(topology.n_links)}
        )
        oracle = ExactPathStateDistribution.from_model(topology, model)
        result = infer_congestion_independent(topology, oracle)
        # Fig 1(a)'s 3 paths over 4 links are rank-3: the baseline cannot
        # fully determine every link, but residuals must be small for the
        # determined directions.
        matrix = topology.routing_matrix()
        residual = matrix @ result.log_good - np.array(
            [oracle.log_good(p.id) for p in topology.paths]
        )
        assert np.allclose(residual, 0.0, atol=1e-6)


class TestBaselineUnderCorrelation:
    def test_biased_when_links_correlated(self):
        """On Fig 1(a) every path crosses one link per set, so the
        baseline's single-path system is exact there; genuine bias needs
        a path crossing two correlated links — built explicitly below."""
        from repro.core.builder import TopologyBuilder
        from repro.core.correlation import CorrelationStructure
        from repro.model import (
            CommonCauseModel,
            IndependentModel,
            NetworkCongestionModel,
        )
        from repro.simulate import ExactPathStateDistribution

        # Chain a -> b -> c with both links in one correlated set, plus a
        # disambiguating side path over each link.
        builder = TopologyBuilder()
        builder.add_link("e1", "a", "b")
        builder.add_link("e2", "b", "c")
        builder.add_path("P1", ["e1", "e2"])
        builder.add_path("P2", ["e1"])
        builder.add_path("P3", ["e2"])
        topology = builder.build()
        correlation = CorrelationStructure(topology, [[0, 1]])
        truth_model = NetworkCongestionModel(
            correlation,
            [
                CommonCauseModel(
                    frozenset({0, 1}),
                    cause_probability=0.3,
                    background=0.05,
                )
            ],
        )
        oracle = ExactPathStateDistribution.from_model(
            topology, truth_model
        )
        truth = truth_model.link_marginals()
        result = infer_congestion_independent(topology, oracle)
        errors = np.abs(result.congestion_probabilities - truth)
        # P1's equation is biased by the correlation; LS spreads it.
        assert errors.max() > 0.02

    def test_result_metadata(self, instance_1a, oracle_1a):
        result = infer_congestion_independent(
            instance_1a.topology, oracle_1a
        )
        assert result.algorithm == "independence"
        assert result.n_single_equations == instance_1a.topology.n_paths
        assert result.n_pair_equations == 0


class TestSinglePathVariant:
    def test_solver_selection(self, instance_1a, oracle_1a):
        for solver in ("l1", "min_norm", "least_squares"):
            result = infer_congestion_single_path(
                instance_1a.topology, oracle_1a, solver=solver
            )
            assert result.solver == solver
            assert result.algorithm == "nguyen_thiran"

    def test_rank_reported(self, instance_1a, oracle_1a):
        result = infer_congestion_single_path(
            instance_1a.topology, oracle_1a
        )
        assert result.rank == 3  # 3 paths over 4 links
