"""Unit tests for per-snapshot congested-link localization."""

import numpy as np
import pytest

from repro.core.localization import (
    congested_mask_from_states,
    feasible_candidate_links,
    localize_map,
    localize_smallest_set,
)
from repro.exceptions import MeasurementError
from repro.utils.bitset import mask_of


class TestFeasibility:
    def test_candidates_cover_only_congested_paths(self, instance_1a):
        topology = instance_1a.topology
        # P1 congested only: e1 is feasible (covers {P1}); e3 covers
        # {P1,P2} and P2 is good, so e3 is infeasible.
        mask = mask_of([topology.path("P1").id])
        candidates = feasible_candidate_links(topology, mask)
        names = {topology.links[k].name for k in candidates}
        assert names == {"e1"}

    def test_impossible_observation_rejected(self, instance_1a):
        topology = instance_1a.topology
        probabilities = np.full(topology.n_links, 0.2)
        # P2 congested alone is impossible: both e2 (covers P2,P3) and e3
        # (covers P1,P2) would congest another path.
        mask = mask_of([topology.path("P2").id])
        with pytest.raises(MeasurementError, match="no feasible"):
            localize_map(topology, mask, probabilities)


class TestMapLocalization:
    def test_empty_observation(self, instance_1a):
        result = localize_map(
            instance_1a.topology,
            0,
            np.full(instance_1a.topology.n_links, 0.3),
        )
        assert result.congested_links == frozenset()
        assert result.exact

    def test_single_link_explanation(self, instance_1a):
        topology = instance_1a.topology
        probabilities = np.full(topology.n_links, 0.2)
        mask = mask_of([topology.path("P1").id])
        result = localize_map(topology, mask, probabilities)
        assert result.congested_links == frozenset(
            {topology.link("e1").id}
        )
        assert result.exact

    def test_probabilities_break_ambiguity(self, instance_1a):
        """{P1, P2} congested: explanations include {e3} and {e1, e2}...
        here probabilities decide."""
        topology = instance_1a.topology
        mask = mask_of(
            [topology.path("P1").id, topology.path("P2").id]
        )
        # e3 very likely congested: MAP picks {e3}.
        probabilities = np.array([0.1, 0.1, 0.9, 0.1])
        result = localize_map(topology, mask, probabilities)
        assert result.congested_links == frozenset(
            {topology.link("e3").id}
        )
        # e3 very unlikely; e1 likely; but {e1} alone does not cover P2 —
        # feasibility analysis: e2 covers P2&P3, P3 good -> e2 infeasible;
        # so {e3} remains the only cover and MAP must still return it.
        probabilities = np.array([0.9, 0.9, 0.01, 0.9])
        result = localize_map(topology, mask, probabilities)
        assert topology.link("e3").id in result.congested_links

    def test_map_beats_smallest_set_when_likelihood_differs(
        self, instance_1a
    ):
        """All paths congested: {e2, e3} vs {e2, e1} vs {e1, e2, e3...}.
        With e3 nearly sure and e1 unlikely, MAP includes e3."""
        topology = instance_1a.topology
        mask = topology.all_paths_mask
        probabilities = np.array([0.05, 0.6, 0.95, 0.05])
        result = localize_map(topology, mask, probabilities)
        assert topology.link("e3").id in result.congested_links
        assert topology.link("e2").id in result.congested_links

    def test_log_likelihood_reported(self, instance_1a):
        topology = instance_1a.topology
        mask = mask_of([topology.path("P1").id])
        result = localize_map(
            topology, mask, np.full(topology.n_links, 0.2)
        )
        assert np.isfinite(result.log_likelihood)


class TestSmallestSet:
    def test_greedy_minimal_cover(self, instance_1a):
        topology = instance_1a.topology
        mask = topology.all_paths_mask
        result = localize_smallest_set(topology, mask)
        # Two links suffice: e3 (P1,P2) + e2 (P2,P3) or {e2, e3}.
        assert len(result.congested_links) == 2

    def test_empty_observation(self, instance_1a):
        result = localize_smallest_set(instance_1a.topology, 0)
        assert result.congested_links == frozenset()

    def test_tie_break_uses_scores(self, instance_1a):
        topology = instance_1a.topology
        mask = mask_of(
            [topology.path("P1").id, topology.path("P2").id]
        )
        result = localize_smallest_set(
            topology, mask, tie_break={topology.link("e3").id: 5.0}
        )
        assert topology.link("e3").id in result.congested_links


class TestPrecisionRecall:
    def test_perfect_detection(self, instance_1a):
        topology = instance_1a.topology
        e1 = topology.link("e1").id
        result = localize_map(
            topology,
            mask_of([topology.path("P1").id]),
            np.full(topology.n_links, 0.2),
        )
        precision, recall = result.precision_recall(frozenset({e1}))
        assert precision == 1.0
        assert recall == 1.0

    def test_empty_results(self, instance_1a):
        result = localize_smallest_set(instance_1a.topology, 0)
        precision, recall = result.precision_recall(frozenset())
        assert precision == 1.0
        assert recall == 1.0
        precision, recall = result.precision_recall(frozenset({0}))
        assert precision == 0.0
        assert recall == 0.0


class TestMaskHelpers:
    def test_congested_mask_from_states(self):
        states = np.array([True, False, True])
        assert congested_mask_from_states(states) == 0b101
