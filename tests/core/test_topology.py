"""Unit tests for the Topology container and the coverage function ψ."""

import numpy as np
import pytest

from repro.core.link import Link, Path
from repro.core.topology import Topology
from repro.exceptions import TopologyError


def chain_topology():
    """a --e0--> b --e1--> c with one end-to-end path."""
    links = [Link(0, "e0", "a", "b"), Link(1, "e1", "b", "c")]
    paths = [Path(0, "P1", (0, 1))]
    return Topology(links, paths)


class TestValidation:
    def test_valid_topology(self):
        topology = chain_topology()
        assert topology.n_links == 2
        assert topology.n_paths == 1

    def test_no_links_rejected(self):
        with pytest.raises(TopologyError):
            Topology([], [Path(0, "P1", (0,))])

    def test_no_paths_rejected(self):
        with pytest.raises(TopologyError):
            Topology([Link(0, "e0", "a", "b")], [])

    def test_sparse_link_ids_rejected(self):
        links = [Link(1, "e1", "a", "b")]
        with pytest.raises(TopologyError, match="dense"):
            Topology(links, [Path(0, "P1", (1,))])

    def test_duplicate_link_names_rejected(self):
        links = [Link(0, "e", "a", "b"), Link(1, "e", "b", "c")]
        with pytest.raises(TopologyError, match="unique"):
            Topology(links, [Path(0, "P1", (0, 1))])

    def test_duplicate_path_names_rejected(self):
        links = [Link(0, "e0", "a", "b"), Link(1, "e1", "b", "c")]
        paths = [Path(0, "P", (0,)), Path(1, "P", (1,))]
        with pytest.raises(TopologyError, match="unique"):
            Topology(links, paths)

    def test_unknown_link_reference_rejected(self):
        links = [Link(0, "e0", "a", "b")]
        with pytest.raises(TopologyError, match="unknown link"):
            Topology(links, [Path(0, "P1", (0, 5))])

    def test_unused_link_rejected(self):
        # The paper's model: all links participate in at least one path.
        links = [Link(0, "e0", "a", "b"), Link(1, "e1", "b", "c")]
        with pytest.raises(TopologyError, match="unused"):
            Topology(links, [Path(0, "P1", (0,))])

    def test_unused_link_allowed_when_relaxed(self):
        links = [Link(0, "e0", "a", "b"), Link(1, "e1", "b", "c")]
        topology = Topology(
            links, [Path(0, "P1", (0,))], require_all_links_used=False
        )
        assert topology.n_links == 2

    def test_non_contiguous_path_rejected(self):
        links = [Link(0, "e0", "a", "b"), Link(1, "e1", "c", "d")]
        with pytest.raises(TopologyError, match="not contiguous"):
            Topology(links, [Path(0, "P1", (0, 1))])


class TestCoverage:
    def test_fig1a_coverage_table(self, instance_1a):
        """The ψ(A) table of paper Section 3.1 for Figure 1(a)."""
        topology = instance_1a.topology
        expected = {
            "e1": {"P1"},
            "e2": {"P2", "P3"},
            "e3": {"P1", "P2"},
            "e4": {"P3"},
        }
        for name, paths in expected.items():
            covered = {
                p.name for p in topology.paths_through(topology.link(name).id)
            }
            assert covered == paths

    def test_coverage_of_union(self, instance_1a):
        """ψ({e1, e2}) = {P1, P2, P3} (paper Section 3.1)."""
        topology = instance_1a.topology
        ids = topology.link_ids(["e1", "e2"])
        assert topology.coverage_of(ids) == topology.all_paths_mask

    def test_coverage_empty_set(self):
        assert chain_topology().coverage_of([]) == 0

    def test_covered_paths_objects(self, instance_1a):
        topology = instance_1a.topology
        paths = topology.covered_paths(topology.link_ids(["e3"]))
        assert [p.name for p in paths] == ["P1", "P2"]

    def test_all_paths_mask(self):
        assert chain_topology().all_paths_mask == 0b1


class TestAccessors:
    def test_link_lookup(self):
        topology = chain_topology()
        assert topology.link("e0").id == 0
        with pytest.raises(TopologyError):
            topology.link("missing")

    def test_path_lookup(self):
        topology = chain_topology()
        assert topology.path("P1").id == 0
        with pytest.raises(TopologyError):
            topology.path("missing")

    def test_nodes_first_appearance_order(self):
        assert chain_topology().nodes == ["a", "b", "c"]

    def test_equality_and_hash(self):
        assert chain_topology() == chain_topology()
        assert hash(chain_topology()) == hash(chain_topology())

    def test_repr(self):
        assert "n_links=2" in repr(chain_topology())


class TestRoutingMatrix:
    def test_fig1a_matrix(self, instance_1a):
        topology = instance_1a.topology
        matrix = topology.routing_matrix()
        assert matrix.shape == (3, 4)
        for path in topology.paths:
            row = np.zeros(4)
            row[list(path.link_ids)] = 1.0
            assert np.array_equal(matrix[path.id], row)

    def test_matrix_is_float(self, instance_1a):
        assert instance_1a.topology.routing_matrix().dtype == np.float64
