"""Unit tests for the practical correlation algorithm (Section 4)."""

import numpy as np
import pytest

from repro.core.correlation import CorrelationStructure
from repro.core.correlation_algorithm import (
    AlgorithmOptions,
    CorrelationTomography,
    infer_congestion,
)


class TestNoiseFreeInference:
    def test_exact_on_fig1a_oracle(self, instance_1a, oracle_1a, truth_1a):
        result = infer_congestion(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        assert np.allclose(
            result.congestion_probabilities, truth_1a, atol=1e-6
        )

    def test_equation_bookkeeping(self, instance_1a, oracle_1a):
        result = infer_congestion(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        assert result.n_single_equations == 3
        assert result.n_pair_equations == 1
        assert result.n_equations == instance_1a.topology.n_links
        assert result.rank == 4
        assert result.diagnostics["fully_determined"]

    def test_probabilities_in_unit_interval(self, instance_1a, oracle_1a):
        result = infer_congestion(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        probabilities = result.congestion_probabilities
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_log_good_nonpositive(self, instance_1a, oracle_1a):
        result = infer_congestion(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        assert np.all(result.log_good <= 0.0)

    def test_label_override(self, instance_1a, oracle_1a):
        result = infer_congestion(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            algorithm_label="custom",
        )
        assert result.algorithm == "custom"


class TestOptions:
    def test_least_squares_option(self, instance_1a, oracle_1a, truth_1a):
        result = infer_congestion(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            options=AlgorithmOptions(solver="least_squares"),
        )
        assert result.solver == "least_squares"
        assert np.allclose(
            result.congestion_probabilities, truth_1a, atol=1e-4
        )

    def test_all_selection(self, instance_1a, oracle_1a, truth_1a):
        result = infer_congestion(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            options=AlgorithmOptions(selection="all"),
        )
        assert np.allclose(
            result.congestion_probabilities, truth_1a, atol=1e-6
        )


class TestNoisyInference:
    def test_simulated_measurements_close(
        self, instance_1a, model_1a, truth_1a
    ):
        from repro.simulate import ExperimentConfig, run_experiment

        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=5000),
            seed=77,
        )
        result = infer_congestion(
            instance_1a.topology,
            instance_1a.correlation,
            run.observations,
        )
        assert np.all(
            np.abs(result.congestion_probabilities - truth_1a) < 0.08
        )


class TestFrontEnd:
    def test_tomography_object(self, instance_1a, oracle_1a, truth_1a):
        tomography = CorrelationTomography(
            instance_1a.topology, instance_1a.correlation
        )
        result = tomography.infer(oracle_1a)
        assert np.allclose(
            result.congestion_probabilities, truth_1a, atol=1e-6
        )
        assert tomography.topology is instance_1a.topology
        assert tomography.correlation is instance_1a.correlation


class TestDegenerateStructures:
    def test_trivial_structure_on_independent_truth(self, instance_1a):
        """With truly independent links, the trivial structure recovers
        exact marginals too (no correlation to model)."""
        from repro.model import NetworkCongestionModel
        from repro.simulate import ExactPathStateDistribution

        topology = instance_1a.topology
        trivial = CorrelationStructure.trivial(topology)
        model = NetworkCongestionModel.independent(
            trivial, {k: 0.1 + 0.05 * k for k in range(topology.n_links)}
        )
        oracle = ExactPathStateDistribution.from_model(topology, model)
        result = infer_congestion(topology, trivial, oracle)
        assert np.allclose(
            result.congestion_probabilities,
            model.link_marginals(),
            atol=1e-6,
        )
