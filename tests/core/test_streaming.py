"""Streaming engine: cached equation structure, verdict diffs."""

import numpy as np
import pytest

from repro.core.correlation_algorithm import (
    AlgorithmOptions,
    CorrelationTomography,
    infer_congestion,
)
from repro.core.prepared import PreparedRegistry
from repro.core.streaming import EquationTemplate, StreamingTomography
from repro.model.loss import LossModel
from repro.simulate.observations import PathObservations
from repro.simulate.probes import PathProber, ProbeConfig
from repro.simulate.stream import LinkStateTimeline, SnapshotStream
from repro.utils.rng import as_generator


@pytest.fixture(scope="module")
def windows_1a(instance_1a, model_1a):
    stream = SnapshotStream(
        model_1a,
        LossModel(),
        PathProber(instance_1a.topology, ProbeConfig()),
        window_size=30,
        rng=as_generator(17),
    )
    return [window.path_states for window in stream.windows(5)]


def batch_result(instance, windows, registry, **options):
    return infer_congestion(
        instance.topology,
        instance.correlation,
        PathObservations(np.concatenate(windows, axis=0)),
        options=AlgorithmOptions(**options),
        registry=registry,
    )


class TestEquationTemplate:
    @pytest.mark.parametrize("selection", ["independent", "all"])
    def test_infer_is_bit_identical_to_batch(
        self, instance_1a, windows_1a, selection
    ):
        registry = PreparedRegistry()
        template = EquationTemplate.build(
            instance_1a.topology,
            instance_1a.correlation,
            options=AlgorithmOptions(selection=selection),
        )
        observations = PathObservations(
            np.concatenate(windows_1a, axis=0)
        )
        streamed = template.infer(observations)
        batch = batch_result(
            instance_1a, windows_1a, registry, selection=selection
        )
        assert (
            streamed.congestion_probabilities.tobytes()
            == batch.congestion_probabilities.tobytes()
        )
        assert streamed.log_good.tobytes() == batch.log_good.tobytes()

    def test_structure_is_reused_across_windows(
        self, instance_1a, windows_1a
    ):
        template = EquationTemplate.build(
            instance_1a.topology, instance_1a.correlation
        )
        rows = template.n_rows
        history = [windows_1a[0]]
        observations = PathObservations(windows_1a[0])
        for window in windows_1a[1:]:
            observations.append_window(window)
            history.append(window)
            streamed = template.infer(observations)
            batch = batch_result(
                instance_1a, history, PreparedRegistry()
            )
            assert template.n_rows == rows
            assert (
                streamed.congestion_probabilities.tobytes()
                == batch.congestion_probabilities.tobytes()
            )


class TestCorrelationTomographyUpdate:
    def test_update_matches_infer(self, instance_1a, windows_1a):
        engine = CorrelationTomography(
            instance_1a.topology, instance_1a.correlation
        )
        observations = PathObservations(windows_1a[0])
        for window in windows_1a[1:]:
            observations.append_window(window)
            incremental = engine.update(observations)
            batch = engine.infer(observations)
            assert (
                incremental.congestion_probabilities.tobytes()
                == batch.congestion_probabilities.tobytes()
            )
            assert (
                incremental.log_good.tobytes()
                == batch.log_good.tobytes()
            )


class TestStreamingTomography:
    def test_rejects_bad_threshold(self, instance_1a):
        with pytest.raises(ValueError, match="threshold"):
            StreamingTomography(
                instance_1a.topology,
                instance_1a.correlation,
                threshold=1.5,
            )

    def test_verdict_bookkeeping(self, instance_1a, windows_1a):
        engine = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            registry=PreparedRegistry(),
        )
        observations = None
        cursor = 0
        for index, window in enumerate(windows_1a):
            if observations is None:
                observations = PathObservations(window)
            else:
                observations.append_window(window)
            cursor += window.shape[0]
            verdict = engine.update(observations)
            assert verdict.window_index == index
            assert verdict.timestamp == cursor
            assert verdict.n_snapshots == cursor
            assert engine.window_index == index + 1
            assert not verdict.congested.flags.writeable
            assert np.array_equal(
                verdict.congested,
                verdict.probabilities > engine.threshold,
            )

    def test_first_window_diffs_against_all_good(self, instance_1a):
        """The baseline before any window is 'nothing congested', so an
        initially-congested link is reported as an onset."""
        engine = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            registry=PreparedRegistry(),
        )
        congested_everywhere = np.ones((40, 3), dtype=bool)
        verdict = engine.update(
            PathObservations(congested_everywhere)
        )
        assert verdict.onsets
        assert not verdict.clears
        assert verdict.changed
        assert set(verdict.onsets) == set(
            int(k) for k in np.flatnonzero(verdict.congested)
        )

    def test_onsets_then_clears_round_trip(self, instance_1a):
        engine = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            registry=PreparedRegistry(),
        )
        good = np.zeros((60, 3), dtype=bool)
        bad = np.ones((60, 3), dtype=bool)

        first = engine.update(PathObservations(good))
        assert not first.changed
        assert first.onsets == () and first.clears == ()

        onset = engine.update(PathObservations(bad))
        assert onset.changed and onset.onsets and not onset.clears

        # Same verdict again: no diff.
        steady = engine.update(PathObservations(bad))
        assert not steady.changed

        clear = engine.update(PathObservations(good))
        assert clear.changed and clear.clears and not clear.onsets
        assert set(clear.clears) == set(onset.onsets)

    def test_timestamp_counts_evicted_history(self, instance_1a):
        engine = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            registry=PreparedRegistry(),
        )
        observations = PathObservations(
            np.zeros((50, 3), dtype=bool), max_window=30
        )
        observations.append_window(np.zeros((25, 3), dtype=bool))
        verdict = engine.update(observations)
        assert observations.n_snapshots == 30
        assert verdict.n_snapshots == 30
        assert verdict.timestamp == 75

    def test_localize_last(self, instance_1a, windows_1a):
        engine = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            localize_last=True,
            registry=PreparedRegistry(),
        )
        observations = PathObservations(windows_1a[0])
        verdict = engine.update(observations)
        assert verdict.localization is not None
        assert verdict.localization.method == "map"
        assert isinstance(verdict.localization.congested_links, frozenset)
        # Without localize_last the field stays empty.
        plain = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            registry=PreparedRegistry(),
        )
        assert plain.update(observations).localization is None

    def test_streaming_final_equals_batch(
        self, instance_1a, windows_1a
    ):
        """The correctness anchor: after any number of windows, the
        engine's answer equals the batch answer over the full history."""
        engine = StreamingTomography(
            instance_1a.topology,
            instance_1a.correlation,
            registry=PreparedRegistry(),
        )
        observations = PathObservations(windows_1a[0])
        verdict = engine.update(observations)
        for window in windows_1a[1:]:
            observations.append_window(window)
            verdict = engine.update(observations)
        batch = batch_result(
            instance_1a, windows_1a, PreparedRegistry()
        )
        assert (
            verdict.result.congestion_probabilities.tobytes()
            == batch.congestion_probabilities.tobytes()
        )
        assert (
            verdict.result.log_good.tobytes()
            == batch.log_good.tobytes()
        )
