"""Unit tests for the linear-system solvers."""

import numpy as np
import pytest

from repro.core.solvers import (
    solve,
    solve_bounded_least_squares,
    solve_l1,
    solve_min_norm_least_squares,
)
from repro.exceptions import SolverError


class TestSolveL1:
    def test_exact_square_system(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0]])
        target = np.array([-0.5, -0.8])
        solution = solve_l1(matrix, target)
        assert np.allclose(matrix @ solution, target, atol=1e-8)

    def test_respects_upper_bound(self):
        # Unconstrained solution would be positive; bound forces x <= 0.
        matrix = np.array([[1.0]])
        target = np.array([0.7])
        solution = solve_l1(matrix, target)
        assert solution[0] <= 1e-12

    def test_l1_is_robust_to_one_outlier(self):
        """Three consistent rows + one outlier: L1 fits the majority."""
        matrix = np.array([[1.0], [1.0], [1.0], [1.0]])
        target = np.array([-0.5, -0.5, -0.5, -3.0])
        solution = solve_l1(matrix, target)
        assert np.isclose(solution[0], -0.5, atol=1e-9)

    def test_uncovered_columns_pinned_to_zero(self):
        matrix = np.array([[1.0, 0.0]])
        target = np.array([-1.0])
        solution = solve_l1(matrix, target)
        assert solution[1] == 0.0

    def test_underdetermined_minimises_residual(self):
        matrix = np.array([[1.0, 1.0]])
        target = np.array([-1.0])
        solution = solve_l1(matrix, target)
        assert np.isclose(matrix @ solution, target, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            solve_l1(np.zeros(3), np.zeros(3))
        with pytest.raises(SolverError):
            solve_l1(np.zeros((2, 2)), np.zeros(3))


class TestMinNormLeastSquares:
    def test_consistent_system(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        target = np.array([-0.3, -0.6])
        solution = solve_min_norm_least_squares(matrix, target)
        assert np.allclose(solution, target)

    def test_clipping_to_bound(self):
        matrix = np.array([[1.0]])
        target = np.array([0.5])
        solution = solve_min_norm_least_squares(matrix, target)
        assert solution[0] == 0.0

    def test_min_norm_on_underdetermined(self):
        """x = R+ y splits the value evenly across identical columns."""
        matrix = np.array([[1.0, 1.0]])
        target = np.array([-1.0])
        solution = solve_min_norm_least_squares(matrix, target)
        assert np.allclose(solution, [-0.5, -0.5])

    def test_unconstrained_direction_stays_zero(self):
        matrix = np.array([[1.0, 0.0]])
        target = np.array([-1.0])
        solution = solve_min_norm_least_squares(matrix, target)
        assert solution[1] == 0.0


class TestBoundedLeastSquares:
    def test_exact_system(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0]])
        target = np.array([-0.5, -0.8])
        solution = solve_bounded_least_squares(matrix, target)
        assert np.allclose(matrix @ solution, target, atol=1e-6)

    def test_bound_active(self):
        matrix = np.array([[1.0]])
        target = np.array([0.4])
        solution = solve_bounded_least_squares(matrix, target)
        assert solution[0] <= 1e-9

    def test_uncovered_columns_zeroed(self):
        matrix = np.array([[1.0, 0.0], [1.0, 0.0]])
        target = np.array([-0.5, -0.6])
        solution = solve_bounded_least_squares(matrix, target)
        assert solution[1] == 0.0


class TestDispatch:
    def test_named_solvers(self):
        matrix = np.array([[1.0]])
        target = np.array([-1.0])
        for method in ("l1", "least_squares", "min_norm"):
            solution, used = solve(matrix, target, method=method)
            assert used == method
            assert np.isclose(solution[0], -1.0, atol=1e-6)

    def test_auto_prefers_l1(self):
        _, used = solve(
            np.array([[1.0]]), np.array([-1.0]), method="auto"
        )
        assert used == "l1"

    def test_unknown_method_rejected(self):
        with pytest.raises(SolverError, match="unknown solver"):
            solve(np.array([[1.0]]), np.array([-1.0]), method="magic")
