"""Unit tests for the exact theorem algorithm (Appendix A)."""

import math

import pytest

from repro.core.correlation import CorrelationStructure
from repro.core.theorem import TheoremAlgorithm
from repro.exceptions import (
    IdentifiabilityError,
    MeasurementError,
)
from repro.model import (
    ExplicitJointModel,
    IndependentModel,
    NetworkCongestionModel,
)
from repro.simulate import ExactPathStateDistribution


class TestConstruction:
    def test_ordering_follows_coverage_counts(self, instance_1a):
        """The paper's Section 3.2 ordering: singletons covering one path
        first, {e1,e2} (covering all three paths) last."""
        algorithm = TheoremAlgorithm(
            instance_1a.topology, instance_1a.correlation
        )
        ordered = algorithm.ordered_subsets
        topology = instance_1a.topology
        names = [
            frozenset(topology.links[k].name for k in subset)
            for subset in ordered
        ]
        counts = [
            len(topology.covered_paths(subset)) for subset in ordered
        ]
        assert counts == sorted(counts)
        assert names[-1] == frozenset({"e1", "e2"})
        assert set(names[:2]) == {frozenset({"e1"}), frozenset({"e4"})}

    def test_assumption4_violation_rejected(self, instance_1b):
        with pytest.raises(IdentifiabilityError):
            TheoremAlgorithm(
                instance_1b.topology, instance_1b.correlation
            )

    def test_subset_budget_enforced(self, instance_1a):
        with pytest.raises(MeasurementError, match="exceeds"):
            TheoremAlgorithm(
                instance_1a.topology,
                instance_1a.correlation,
                max_subsets=2,
            )


class TestExactIdentification:
    def test_marginals_recovered_exactly(
        self, instance_1a, oracle_1a, truth_1a
    ):
        """Theorem 1: with exact measurements the link congestion
        probabilities are identified exactly."""
        result = TheoremAlgorithm(
            instance_1a.topology, instance_1a.correlation
        ).identify(oracle_1a)
        for link_id, value in result.link_marginals.items():
            assert math.isclose(value, truth_1a[link_id], abs_tol=1e-9)
        assert result.clamped_subsets == ()

    def test_joint_recovered_exactly(
        self, instance_1a, model_1a, oracle_1a
    ):
        """Theorem 1's full claim: *any* set of links."""
        result = TheoremAlgorithm(
            instance_1a.topology, instance_1a.correlation
        ).identify(oracle_1a)
        topology = instance_1a.topology
        e1, e2, e3, e4 = (
            topology.link(n).id for n in ("e1", "e2", "e3", "e4")
        )
        for subset in (
            {e1, e2},
            {e1, e3},
            {e2, e4},
            {e1, e2, e3},
            {e1, e2, e3, e4},
        ):
            assert math.isclose(
                result.joint(subset),
                model_1a.joint(subset),
                abs_tol=1e-9,
            ), subset

    def test_congestion_factors_match_paper_quantities(
        self, instance_1a, oracle_1a
    ):
        """α_{e1} = P(S1={e1}) / P(S1=∅) = 0.05/0.7 etc."""
        result = TheoremAlgorithm(
            instance_1a.topology, instance_1a.correlation
        ).identify(oracle_1a)
        topology = instance_1a.topology
        e1, e2 = topology.link("e1").id, topology.link("e2").id
        e3, e4 = topology.link("e3").id, topology.link("e4").id
        assert math.isclose(
            result.factors.factor({e1}), 0.05 / 0.7, abs_tol=1e-9
        )
        assert math.isclose(
            result.factors.factor({e1, e2}), 0.2 / 0.7, abs_tol=1e-9
        )
        assert math.isclose(
            result.factors.factor({e3}), 0.3 / 0.7, abs_tol=1e-9
        )
        assert math.isclose(
            result.factors.factor({e4}), 0.15 / 0.85, abs_tol=1e-9
        )

    def test_independent_ground_truth_also_recovered(self, instance_1a):
        """Degenerate case: when links are actually independent the
        theorem algorithm reduces to classical identification."""
        topology = instance_1a.topology
        model = NetworkCongestionModel.independent(
            instance_1a.correlation,
            {k: 0.05 + 0.1 * k for k in range(topology.n_links)},
        )
        oracle = ExactPathStateDistribution.from_model(topology, model)
        result = TheoremAlgorithm(
            topology, instance_1a.correlation
        ).identify(oracle)
        truth = model.link_marginals()
        for link_id, value in result.link_marginals.items():
            assert math.isclose(value, truth[link_id], abs_tol=1e-9)

    def test_always_good_network(self, instance_1a):
        """Degenerate: nothing ever congests -> all marginals 0."""
        topology = instance_1a.topology
        model = NetworkCongestionModel.independent(
            instance_1a.correlation, {k: 0.0 for k in range(4)}
        )
        oracle = ExactPathStateDistribution.from_model(topology, model)
        result = TheoremAlgorithm(
            topology, instance_1a.correlation
        ).identify(oracle)
        assert all(v == 0.0 for v in result.link_marginals.values())

    def test_never_good_network_rejected(self, instance_1a):
        """P(ψ(S)=∅)=0 makes the factors undefined."""
        topology = instance_1a.topology
        e3 = topology.link("e3").id
        model = NetworkCongestionModel.independent(
            instance_1a.correlation,
            {k: (1.0 if k == e3 else 0.0) for k in range(4)},
        )
        oracle = ExactPathStateDistribution.from_model(topology, model)
        with pytest.raises(MeasurementError, match="never observed"):
            TheoremAlgorithm(
                topology, instance_1a.correlation
            ).identify(oracle)


class TestNoisyMeasurements:
    def test_empirical_measurements_converge(
        self, instance_1a, model_1a, truth_1a
    ):
        """With many snapshots the empirical path-state frequencies feed
        the theorem algorithm to approximately correct marginals."""
        from repro.simulate import ExperimentConfig, run_experiment

        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(
                n_snapshots=20_000, packets_per_path=None
            ),
            seed=123,
        )
        result = TheoremAlgorithm(
            instance_1a.topology, instance_1a.correlation
        ).identify(run.observations)
        for link_id, value in result.link_marginals.items():
            assert abs(value - truth_1a[link_id]) < 0.05
