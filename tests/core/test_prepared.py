"""The prepared-state layer: content-keyed registry + thread safety.

The historical ``_BUILDER_PREP`` module global keyed on the correlation
object's *identity*, held exactly one slot, and mutated a shared
``dependent_mask`` cell without a lock.  These tests pin down the three
fixes: content keying (equal-content pairs share one prep), bounded LRU
behaviour (alternating topologies no longer thrash), and the regression
test the bug deserved — N threads interleaving two topologies must
produce equation systems bit-identical to serial execution.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.equations import build_equations
from repro.core.prepared import (
    DEFAULT_REGISTRY,
    PreparedRegistry,
    PreparedTopology,
    active_registry,
    get_prepared,
    use_registry,
)
from repro.topogen import fig_1a, fig_1b


class _FakeMeasurements:
    """Deterministic PathGoodProvider — cheap and topology-agnostic."""

    def log_good(self, path_id: int) -> float:
        return -0.01 * (path_id + 1)

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        return self.log_good(path_a) + self.log_good(path_b) - 0.001


def _system_bits(system) -> tuple:
    """Everything observable about an assembled system, hashable-ish."""
    return (
        system.n_links,
        system.n_single,
        system.n_pair,
        system.rank,
        tuple(system.eligible_paths),
        tuple(
            (
                row.kind,
                tuple(row.paths),
                tuple(sorted(row.link_ids)),
                row.value,
            )
            for row in system.rows
        ),
    )


class TestPreparedTopology:
    def test_build_matches_full_builder(self, instance_1a, oracle_1a):
        prep = PreparedTopology.build(
            instance_1a.topology, instance_1a.correlation
        )
        system = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            prepared=prep,
        )
        # Section-4 worked example: 3 single rows (rank 3 before pairs),
        # then one pair row completes rank 4.
        assert prep.rank == 3
        assert [path_id for path_id, _, _ in prep.singles] == list(
            prep.eligible
        )
        assert system.n_single == 3
        assert system.n_pair == 1
        assert system.rank == 4

    def test_clone_tracker_is_independent(self, instance_1a):
        prep = PreparedTopology.build(
            instance_1a.topology, instance_1a.correlation
        )
        tracker = prep.clone_tracker()
        row = np.zeros(instance_1a.topology.n_links)
        row[-1] = 1.0
        tracker.try_add(row)
        assert prep.rank == 3
        assert prep.clone_tracker().rank == 3

    def test_dependent_mask_cached(self, instance_1a):
        prep = PreparedTopology.build(
            instance_1a.topology, instance_1a.correlation
        )
        mask = prep.dependent_mask()
        assert mask.shape == (len(prep.candidates),)
        assert prep.dependent_mask() is mask

    def test_fingerprint_is_content_based(self):
        one = PreparedTopology.build(
            *(lambda i: (i.topology, i.correlation))(fig_1a())
        )
        two = PreparedTopology.build(
            *(lambda i: (i.topology, i.correlation))(fig_1a())
        )
        other = PreparedTopology.build(
            *(lambda i: (i.topology, i.correlation))(fig_1b())
        )
        assert one.fingerprint == two.fingerprint
        assert one.fingerprint != other.fingerprint
        assert len(one.fingerprint) == 64  # sha256 hex

    def test_get_prepared_rejects_mismatched_prep(
        self, instance_1a, instance_1b
    ):
        prep = PreparedTopology.build(
            instance_1a.topology, instance_1a.correlation
        )
        with pytest.raises(ValueError, match="different"):
            get_prepared(
                instance_1b.topology, instance_1b.correlation, prepared=prep
            )


class TestPreparedRegistry:
    def test_content_keyed_hit(self):
        registry = PreparedRegistry(capacity=4)
        first = registry.get_or_build(
            *(lambda i: (i.topology, i.correlation))(fig_1a())
        )
        # A *different* object with equal content must hit the entry —
        # the old cache keyed on id(correlation) and missed here.
        second = registry.get_or_build(
            *(lambda i: (i.topology, i.correlation))(fig_1a())
        )
        assert second is first
        stats = registry.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_alternating_topologies_do_not_thrash(
        self, instance_1a, instance_1b
    ):
        registry = PreparedRegistry(capacity=2)
        for _ in range(5):
            registry.get_or_build(
                instance_1a.topology, instance_1a.correlation
            )
            registry.get_or_build(
                instance_1b.topology, instance_1b.correlation
            )
        stats = registry.stats()
        assert stats["misses"] == 2  # one build each, ever
        assert stats["hits"] == 8
        assert stats["evictions"] == 0

    def test_lru_eviction_order(self, instance_1a, instance_1b):
        registry = PreparedRegistry(capacity=1)
        a = registry.get_or_build(
            instance_1a.topology, instance_1a.correlation
        )
        registry.get_or_build(instance_1b.topology, instance_1b.correlation)
        assert registry.stats()["evictions"] == 1
        assert len(registry) == 1
        # 1a was evicted: fetching it again rebuilds.
        again = registry.get_or_build(
            instance_1a.topology, instance_1a.correlation
        )
        assert again is not a

    def test_put_evict_clear_resize(self, instance_1a, instance_1b):
        registry = PreparedRegistry(capacity=4)
        prep = PreparedTopology.build(
            instance_1a.topology, instance_1a.correlation
        )
        registry.put(prep)
        assert (
            registry.get_or_build(
                instance_1a.topology, instance_1a.correlation
            )
            is prep
        )
        assert registry.evict(
            instance_1a.topology, instance_1a.correlation
        )
        assert not registry.evict(
            instance_1a.topology, instance_1a.correlation
        )
        registry.get_or_build(instance_1a.topology, instance_1a.correlation)
        registry.get_or_build(instance_1b.topology, instance_1b.correlation)
        registry.resize(1)
        assert len(registry) == 1
        registry.clear()
        assert len(registry) == 0
        with pytest.raises(ValueError):
            PreparedRegistry(capacity=0)
        with pytest.raises(ValueError):
            registry.resize(0)

    def test_use_registry_scopes_the_ambient_registry(self):
        registry = PreparedRegistry(capacity=2)
        assert active_registry() is DEFAULT_REGISTRY
        with use_registry(registry):
            assert active_registry() is registry
            with use_registry(None):  # pass-through
                assert active_registry() is registry
        assert active_registry() is DEFAULT_REGISTRY

    def test_ambient_registry_is_used_by_builds(self, instance_1a):
        registry = PreparedRegistry(capacity=2)
        measurements = _FakeMeasurements()
        with use_registry(registry):
            build_equations(
                instance_1a.topology, instance_1a.correlation, measurements
            )
        assert registry.stats()["misses"] == 1
        assert len(registry) == 1


class TestThreadSafetyRegression:
    """N threads alternating two topologies == serial, bit for bit.

    Under the old single-slot identity-keyed prep this pattern thrashed
    (rebuild per call) and raced on the shared dependent-mask slot;
    equation systems could silently differ across runs.
    """

    N_THREADS = 8
    ROUNDS = 6

    def _build(self, instance, registry):
        return _system_bits(
            build_equations(
                instance.topology,
                instance.correlation,
                _FakeMeasurements(),
                registry=registry,
            )
        )

    @pytest.mark.timeout(120)
    def test_threaded_builds_bit_identical_to_serial(
        self, instance_1a, instance_1b, brite_small
    ):
        instances = [instance_1a, instance_1b, brite_small.instance]
        serial = [
            self._build(instance, PreparedRegistry(capacity=2))
            for instance in instances
        ]

        registry = PreparedRegistry(capacity=2)  # smaller than working set
        results: dict[tuple[int, int, int], tuple] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(worker_id: int) -> None:
            try:
                barrier.wait(timeout=60)
                for round_index in range(self.ROUNDS):
                    index = (worker_id + round_index) % len(instances)
                    results[(worker_id, round_index, index)] = self._build(
                        instances[index], registry
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(worker_id,))
            for worker_id in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == self.N_THREADS * self.ROUNDS
        for (_, _, index), bits in results.items():
            assert bits == serial[index]
