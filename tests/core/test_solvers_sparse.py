"""Sparse-input behaviour of the solver layer."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.solvers import (
    min_norm_least_squares_with_rank,
    solve,
    solve_bounded_least_squares,
    solve_l1,
    solve_min_norm_least_squares,
)
from repro.exceptions import SolverError


def random_system(seed, n_rows=30, n_cols=20):
    rng = np.random.default_rng(seed)
    matrix = (rng.random((n_rows, n_cols)) < 0.2).astype(np.float64)
    matrix[0, 0] = 1.0  # ensure at least one covered column
    values = -rng.random(n_rows)
    return matrix, values


class TestSparseL1:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sparse_and_dense_inputs_agree_exactly(self, seed):
        matrix, values = random_system(seed)
        dense = solve_l1(matrix, values)
        csr = solve_l1(sparse.csr_matrix(matrix), values)
        coo = solve_l1(sparse.coo_matrix(matrix), values)
        assert np.array_equal(dense, csr)
        assert np.array_equal(dense, coo)

    def test_uncovered_columns_pinned_on_sparse_input(self):
        matrix = sparse.csr_matrix(np.array([[1.0, 0.0]]))
        solution = solve_l1(matrix, np.array([-1.0]))
        assert solution[1] == 0.0
        assert np.isclose(solution[0], -1.0, atol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            solve_l1(sparse.csr_matrix(np.eye(2)), np.zeros(3))


class TestSparseLeastSquares:
    @pytest.mark.parametrize("n_cols", [20, 500])
    def test_sparse_and_dense_agree(self, n_cols):
        """Covers both the BVLS (dense) and TRF (sparse-native) paths."""
        matrix, values = random_system(5, n_rows=40, n_cols=n_cols)
        dense = solve_bounded_least_squares(matrix, values)
        via_sparse = solve_bounded_least_squares(
            sparse.csr_matrix(matrix), values
        )
        assert np.allclose(dense, via_sparse, atol=1e-8)

    def test_min_norm_accepts_sparse(self):
        matrix, values = random_system(6)
        dense = solve_min_norm_least_squares(matrix, values)
        via_sparse = solve_min_norm_least_squares(
            sparse.csr_matrix(matrix), values
        )
        assert np.array_equal(dense, via_sparse)


class TestMinNormRank:
    def test_rank_matches_matrix_rank(self):
        matrix, values = random_system(7)
        _, rank = min_norm_least_squares_with_rank(matrix, values)
        assert rank == np.linalg.matrix_rank(matrix)

    def test_rank_deficient_system(self):
        matrix = np.array([[1.0, 1.0], [2.0, 2.0]])
        solution, rank = min_norm_least_squares_with_rank(
            matrix, np.array([-1.0, -2.0])
        )
        assert rank == 1
        assert np.allclose(solution, [-0.5, -0.5])


class TestDispatch:
    def test_solve_dispatches_sparse(self):
        matrix, values = random_system(8)
        for method in ("l1", "least_squares", "min_norm", "auto"):
            dense_solution, dense_used = solve(
                matrix, values, method=method
            )
            sparse_solution, sparse_used = solve(
                sparse.csr_matrix(matrix), values, method=method
            )
            assert dense_used == sparse_used
            assert np.allclose(dense_solution, sparse_solution, atol=1e-8)
