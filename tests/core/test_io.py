"""Unit tests for instance serialization."""

import json

import pytest

from repro.exceptions import TopologyError
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)


class TestRoundTrip:
    def test_fig1a_round_trips(self, instance_1a):
        rebuilt = instance_from_dict(instance_to_dict(instance_1a))
        assert rebuilt.topology == instance_1a.topology
        assert rebuilt.correlation == instance_1a.correlation

    def test_generated_instance_round_trips(self, planetlab_small):
        rebuilt = instance_from_dict(
            instance_to_dict(planetlab_small)
        )
        assert rebuilt.topology == planetlab_small.topology
        assert rebuilt.correlation == planetlab_small.correlation

    def test_file_round_trip(self, instance_1a, tmp_path):
        target = tmp_path / "instance.json"
        save_instance(instance_1a, target)
        rebuilt = load_instance(target)
        assert rebuilt.topology == instance_1a.topology
        assert rebuilt.correlation == instance_1a.correlation

    def test_file_is_plain_json(self, instance_1a, tmp_path):
        target = tmp_path / "instance.json"
        save_instance(instance_1a, target)
        payload = json.loads(target.read_text())
        assert payload["format"] == "repro-instance"
        assert len(payload["links"]) == 4
        assert payload["correlation_sets"] == [
            ["e1", "e2"],
            ["e3"],
            ["e4"],
        ]

    def test_metadata_preserved(self, instance_1a):
        payload = instance_to_dict(instance_1a)
        rebuilt = instance_from_dict(payload)
        assert rebuilt.metadata["figure"] == "1a"

    def test_unjsonable_metadata_stringified(self, instance_1a):
        from dataclasses import replace

        patched = replace(
            instance_1a, metadata={"odd": {1, 2}}
        )
        payload = instance_to_dict(patched)
        assert isinstance(payload["metadata"]["odd"], str)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(TopologyError, match="not a"):
            instance_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, instance_1a):
        payload = instance_to_dict(instance_1a)
        payload["version"] = 99
        with pytest.raises(TopologyError, match="version"):
            instance_from_dict(payload)

    def test_corrupted_correlation_rejected(self, instance_1a):
        from repro.exceptions import CorrelationError

        payload = instance_to_dict(instance_1a)
        payload["correlation_sets"] = [["e1"]]  # not a partition
        with pytest.raises(CorrelationError):
            instance_from_dict(payload)

    def test_corrupted_paths_rejected(self, instance_1a):
        payload = instance_to_dict(instance_1a)
        payload["paths"][0]["links"] = ["e1", "e4"]  # not contiguous
        with pytest.raises(TopologyError):
            instance_from_dict(payload)


class TestInferenceOnReloadedInstance:
    def test_pipeline_runs_after_reload(
        self, instance_1a, model_1a, tmp_path
    ):
        from repro import ExperimentConfig, infer_congestion, run_experiment

        target = tmp_path / "fig1a.json"
        save_instance(instance_1a, target)
        reloaded = load_instance(target)
        run = run_experiment(
            reloaded.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=500),
            seed=7,
        )
        result = infer_congestion(
            reloaded.topology, reloaded.correlation, run.observations
        )
        assert result.n_links == 4
