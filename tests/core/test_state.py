"""Unit tests for network-state enumeration (exact covers)."""

from repro.core.state import iter_exact_covers
from repro.utils.bitset import mask_of


def payloads(covers):
    return [tuple(choice for choice in state) for state in covers]


class TestIterExactCovers:
    def test_single_set_exact_match(self):
        candidates = [[("empty", 0), ("A", 0b01), ("B", 0b11)]]
        states = payloads(iter_exact_covers(0b01, candidates))
        assert states == [("A",)]

    def test_empty_target_selects_all_empty(self):
        candidates = [
            [("empty", 0), ("A", 0b1)],
            [("empty", 0), ("B", 0b10)],
        ]
        states = payloads(iter_exact_covers(0, candidates))
        assert states == [("empty", "empty")]

    def test_candidates_covering_outside_target_are_skipped(self):
        candidates = [[("empty", 0), ("too-big", 0b110)]]
        states = payloads(iter_exact_covers(0b010, candidates))
        assert states == []

    def test_multi_set_combinations(self):
        """Fig 1(a) Step 2: ψ(S) = ψ({e3}) = {P1,P2} admits exactly the
        states {e3} and {e1, e3} (paper Section 3.2)."""
        # Set 1 = {e1,e2}: coverages e1->P1, e2->{P2,P3}, both->all.
        set1 = [
            (frozenset(), 0),
            (frozenset({"e1"}), mask_of([0])),
            (frozenset({"e2"}), mask_of([1, 2])),
            (frozenset({"e1", "e2"}), mask_of([0, 1, 2])),
        ]
        set2 = [(frozenset(), 0), (frozenset({"e3"}), mask_of([0, 1]))]
        set3 = [(frozenset(), 0), (frozenset({"e4"}), mask_of([2]))]
        target = mask_of([0, 1])  # {P1, P2}
        states = payloads(iter_exact_covers(target, [set1, set2, set3]))
        as_sets = {
            frozenset().union(*state) for state in states
        }
        assert as_sets == {frozenset({"e3"}), frozenset({"e1", "e3"})}

    def test_all_paths_congested_state_count(self):
        """Fig 1(a) appendix illustration: ψ(S) = all paths admits
        exactly 8 states."""
        set1 = [
            (frozenset(), 0),
            (frozenset({"e1"}), mask_of([0])),
            (frozenset({"e2"}), mask_of([1, 2])),
            (frozenset({"e1", "e2"}), mask_of([0, 1, 2])),
        ]
        set2 = [(frozenset(), 0), (frozenset({"e3"}), mask_of([0, 1]))]
        set3 = [(frozenset(), 0), (frozenset({"e4"}), mask_of([2]))]
        states = payloads(
            iter_exact_covers(mask_of([0, 1, 2]), [set1, set2, set3])
        )
        assert len(states) == 8

    def test_unreachable_target_yields_nothing(self):
        candidates = [[("empty", 0), ("A", 0b1)]]
        assert payloads(iter_exact_covers(0b100, candidates)) == []

    def test_set_without_admissible_choice_yields_nothing(self):
        # Second set has no admissible candidate at all (not even empty).
        candidates = [
            [("empty", 0), ("A", 0b1)],
            [("B", 0b1000)],
        ]
        assert payloads(iter_exact_covers(0b1, candidates)) == []

    def test_no_sets_empty_target(self):
        assert payloads(iter_exact_covers(0, [])) == [()]

    def test_no_sets_nonempty_target(self):
        assert payloads(iter_exact_covers(0b1, [])) == []
