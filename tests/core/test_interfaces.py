"""Protocol-conformance tests: both measurement sources implement both
measurement protocols, so any algorithm runs on either."""

import numpy as np

from repro.core.interfaces import PathGoodProvider, PathStateProvider
from repro.simulate.observations import PathObservations


class TestProtocolConformance:
    def test_observations_implement_both(self):
        observations = PathObservations(np.zeros((5, 3), dtype=bool))
        assert isinstance(observations, PathGoodProvider)
        assert isinstance(observations, PathStateProvider)

    def test_oracle_implements_both(self, oracle_1a):
        assert isinstance(oracle_1a, PathGoodProvider)
        assert isinstance(oracle_1a, PathStateProvider)

    def test_algorithms_accept_either_source(
        self, instance_1a, model_1a, oracle_1a
    ):
        """The same calls run on the oracle and on empirical data."""
        from repro.core import TheoremAlgorithm, infer_congestion
        from repro.simulate import ExperimentConfig, run_experiment

        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=300),
            seed=81,
        )
        for source in (oracle_1a, run.observations):
            practical = infer_congestion(
                instance_1a.topology, instance_1a.correlation, source
            )
            assert practical.n_links == 4
            theorem = TheoremAlgorithm(
                instance_1a.topology, instance_1a.correlation
            ).identify(source)
            assert len(theorem.link_marginals) == 4


class TestExceptionHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import exceptions

        for name in (
            "TopologyError",
            "CorrelationError",
            "IdentifiabilityError",
            "MeasurementError",
            "SolverError",
            "ModelError",
            "GenerationError",
        ):
            error_type = getattr(exceptions, name)
            assert issubclass(error_type, exceptions.ReproError)

    def test_identifiability_error_carries_collisions(self):
        from repro.exceptions import IdentifiabilityError

        error = IdentifiabilityError(
            "bad", colliding_subsets=[(frozenset({1}), frozenset({2}))]
        )
        assert error.colliding_subsets == [
            (frozenset({1}), frozenset({2}))
        ]

    def test_one_catch_covers_everything(self, instance_1b):
        from repro.core import TheoremAlgorithm
        from repro.exceptions import ReproError

        try:
            TheoremAlgorithm(
                instance_1b.topology, instance_1b.correlation
            )
        except ReproError:
            pass  # IdentifiabilityError is a ReproError
        else:
            raise AssertionError("expected a ReproError")
