"""Unit tests for Link and Path value objects."""

import pytest

from repro.core.link import Link, Path


class TestLink:
    def test_construction(self):
        link = Link(id=0, name="e1", src="a", dst="b")
        assert link.name == "e1"
        assert str(link) == "e1(a->b)"

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Link(id=-1, name="e1", src="a", dst="b")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Link(id=0, name="", src="a", dst="b")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link(id=0, name="e1", src="a", dst="a")

    def test_immutability(self):
        link = Link(id=0, name="e1", src="a", dst="b")
        with pytest.raises(AttributeError):
            link.name = "e2"

    def test_equality_is_structural(self):
        assert Link(0, "e1", "a", "b") == Link(0, "e1", "a", "b")
        assert Link(0, "e1", "a", "b") != Link(1, "e1", "a", "b")


class TestPath:
    def test_construction(self):
        path = Path(id=0, name="P1", link_ids=(0, 1))
        assert path.length == 2
        assert path.traverses(0)
        assert not path.traverses(2)

    def test_no_links_rejected(self):
        with pytest.raises(ValueError, match="no links"):
            Path(id=0, name="P1", link_ids=())

    def test_loop_rejected(self):
        # A path never crosses a link more than once (paper Section 2.1).
        with pytest.raises(ValueError, match="more than once"):
            Path(id=0, name="P1", link_ids=(0, 1, 0))

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Path(id=-2, name="P1", link_ids=(0,))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Path(id=0, name="", link_ids=(0,))

    def test_str_lists_links(self):
        assert str(Path(id=0, name="P1", link_ids=(2, 5))) == "P1[2,5]"

    def test_length_counts_links(self):
        assert Path(id=0, name="P", link_ids=(7,)).length == 1
