"""The ``predict`` subcommand: parsing, output formats, bit-identity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import canonical_json
from repro.predict.demand import DemandMatrix
from repro.serve.queries import encode_vectors, run_query
from repro.serve.registry import instance_from_payload

GENERATOR = {
    "kind": "brite",
    "n_ases": 12,
    "routers_per_as": 3,
    "n_paths": 30,
    "seed": 7,
}
DEMAND = {
    "flows": [
        {"name": "f0", "rate": 6.0, "paths": [0, 1]},
        {"name": "f1", "rate": 5.0, "paths": [1, 2]},
        {"name": "f2", "rate": 4.0, "paths": [0, 2]},
    ],
    "capacities": {"default": 10.0},
    "shifts": [{"name": "surge", "scale": 1.6}],
}
WINDOW = ["--n-snapshots", "30", "--packets-per-path", "200"]


@pytest.fixture()
def demand_file(tmp_path):
    path = tmp_path / "demand.json"
    path.write_text(json.dumps(DEMAND), encoding="utf-8")
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out.splitlines()


def predict_argv(demand_file, *extra):
    return [
        "predict",
        "--generator",
        json.dumps(GENERATOR),
        "--demand",
        demand_file,
        "--seed",
        "3",
        *WINDOW,
        *extra,
    ]


class TestParser:
    def test_demand_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict"])

    def test_defaults(self):
        args = build_parser().parse_args(["predict", "--demand", "d.json"])
        assert args.format == "table"
        assert args.utilization_threshold == 0.85
        assert args.exact_max_flows == 16
        assert args.mc_samples == 20_000
        assert args.top == 10

    @pytest.mark.parametrize(
        "flags",
        [
            ["--utilization-threshold", "0"],
            ["--exact-max-flows", "-1"],
            ["--mc-samples", "0"],
            ["--top", "0"],
        ],
    )
    def test_bad_numeric_flags(self, flags):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--demand", "d.json", *flags]
            )


class TestJsonOutput:
    def batch_answer(self, *, shifts):
        demand = DemandMatrix.from_payload(DEMAND)
        demand_payload = demand.to_payload()
        demand_payload.pop("shifts", None)
        query = {
            "kind": "whatif",
            "seed": 3,
            "demand": demand_payload,
            "shifts": shifts,
            "utilization_threshold": 0.85,
            "exact_max_flows": 16,
            "mc_samples": 20_000,
            "congested_fraction": 0.10,
            "per_set_range": "high",
            "n_snapshots": 30,
            "packets_per_path": 200,
        }
        instance = instance_from_payload({"generator": GENERATOR})
        return canonical_json(
            {"result": encode_vectors(run_query(instance, query))}
        )

    def test_json_is_byte_identical_to_the_batch_engine(
        self, capsys, demand_file
    ):
        code, lines = run_cli(
            capsys, *predict_argv(demand_file, "--format", "json")
        )
        assert code == 0
        expected = self.batch_answer(
            shifts=[{"name": "surge", "scale": 1.6}]
        )
        assert lines == [expected]

    def test_shift_override_changes_the_answer(self, capsys, demand_file):
        code, base_lines = run_cli(
            capsys, *predict_argv(demand_file, "--format", "json")
        )
        assert code == 0
        code, lines = run_cli(
            capsys,
            *predict_argv(
                demand_file, "--format", "json", "--shift", "surge:2.0"
            ),
        )
        assert code == 0
        assert lines != base_lines
        assert lines == [
            self.batch_answer(shifts=[{"name": "surge", "scale": 2.0}])
        ]
        result = json.loads(lines[0])["result"]
        assert result["shift0_scale"] == [2.0]

    def test_new_shift_is_appended(self, capsys, demand_file):
        code, lines = run_cli(
            capsys,
            *predict_argv(
                demand_file, "--format", "json", "--shift", "extra:1.2"
            ),
        )
        assert code == 0
        result = json.loads(lines[0])["result"]
        assert result["n_shifts"] == [2.0]
        assert result["shift1_scale"] == [1.2]


class TestTableOutput:
    def test_table_smoke(self, capsys, demand_file):
        code, lines = run_cli(
            capsys, *predict_argv(demand_file, "--top", "5")
        )
        assert code == 0
        text = "\n".join(lines)
        assert "What-if 'surge'" in text
        assert "rank" in text and "combined" in text
        # 5 ranked rows: 1..5 in the rank column.
        ranked = [line for line in lines if line.strip().startswith("5")]
        assert ranked


class TestFailures:
    def test_missing_demand_file(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="--demand"):
            main(predict_argv(str(tmp_path / "absent.json")))

    def test_invalid_demand_json(self, tmp_path):
        path = tmp_path / "demand.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit, match="invalid JSON"):
            main(predict_argv(str(path)))

    def test_malformed_demand_payload(self, tmp_path):
        path = tmp_path / "demand.json"
        path.write_text(json.dumps({"flows": []}), encoding="utf-8")
        with pytest.raises(SystemExit, match="--demand"):
            main(predict_argv(str(path)))

    def test_unresolvable_demand(self, tmp_path):
        path = tmp_path / "demand.json"
        payload = {"flows": [{"name": "f", "rate": 1.0, "paths": [9_999]}]}
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(SystemExit, match="flow 'f'"):
            main(predict_argv(str(path)))

    @pytest.mark.parametrize(
        "spec", ["no-colon", "surge:abc", "surge:-1", ":2.0"]
    )
    def test_bad_shift_specs(self, demand_file, spec):
        with pytest.raises(SystemExit, match="--shift"):
            main(predict_argv(demand_file, "--shift", spec))
