"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.snapshots == 4000

    def test_figure_arguments(self):
        args = build_parser().parse_args(
            [
                "--seed",
                "7",
                "figure4",
                "--topology",
                "planetlab",
                "--fraction",
                "0.5",
                "--scale",
                "small",
            ]
        )
        assert args.seed == 7
        assert args.topology == "planetlab"
        assert args.fraction == 0.5

    def test_invalid_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figure4", "--topology", "mesh"]
            )


class TestExecution:
    def test_demo_runs(self, capsys):
        exit_code = main(["demo", "--snapshots", "500"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "correlation" in output
        assert "e1" in output

    @pytest.fixture()
    def tiny_scales(self, monkeypatch):
        """Shrink the small preset so CLI tests stay fast."""
        from repro.eval import figures

        tiny = dict(figures.SCALES)
        tiny["small"] = {
            "brite": dict(n_ases=25, routers_per_as=4, n_paths=60),
            "planetlab": dict(
                n_routers=80, n_vantages=14, n_paths=60
            ),
            "n_snapshots": 200,
            "packets_per_path": 200,
        }
        monkeypatch.setattr(figures, "SCALES", tiny)

    def test_figure3_cdf_runs_small(self, capsys, tiny_scales):
        exit_code = main(["figure3-cdf", "--level", "high"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cdf[correlation]" in output

    def test_tomographer_runs_small(self, capsys, tiny_scales):
        exit_code = main(["tomographer", "--topology", "planetlab"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "indirect validation prefers" in output

    def test_figure3_sweep_runs_small(self, capsys, tiny_scales):
        exit_code = main(["figure3"])
        assert exit_code == 0
        assert "mean[corr]" in capsys.readouterr().out

    def test_figure4_runs_small(self, capsys, tiny_scales):
        exit_code = main(
            ["figure4", "--topology", "brite", "--fraction", "0.25"]
        )
        assert exit_code == 0
        assert "cdf[correlation]" in capsys.readouterr().out

    def test_figure5_runs_small(self, capsys, tiny_scales):
        exit_code = main(
            ["figure5", "--topology", "planetlab", "--fraction", "0.5"]
        )
        assert exit_code == 0
        assert "cdf[independence]" in capsys.readouterr().out
