"""Integration tests for the command-line interface."""

import pytest

from repro.cli import _make_executor, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.snapshots == 4000

    def test_figure_arguments(self):
        args = build_parser().parse_args(
            [
                "--seed",
                "7",
                "figure4",
                "--topology",
                "planetlab",
                "--fraction",
                "0.5",
                "--scale",
                "small",
            ]
        )
        assert args.seed == 7
        assert args.topology == "planetlab"
        assert args.fraction == 0.5

    def test_invalid_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figure4", "--topology", "mesh"]
            )


class TestDistributedFlags:
    """Backend/hosts/launch precedence and the documented error paths."""

    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTS", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)

    @staticmethod
    def _executor(argv):
        return _make_executor(build_parser().parse_args(argv))

    def test_hosts_flag_beats_repro_hosts_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "env-host:7100")
        executor = self._executor(
            ["figure3", "--hosts", "flag-host:7200"]
        )
        assert [spec.endpoint for spec in executor.endpoints] == [
            ("flag-host", 7200)
        ]

    def test_repro_hosts_env_implies_remote_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "env-host:7100,other:7101")
        executor = self._executor(["figure3"])
        assert [spec.endpoint for spec in executor.endpoints] == [
            ("env-host", 7100),
            ("other", 7101),
        ]

    def test_remote_backend_without_hosts_exits_with_message(self):
        with pytest.raises(SystemExit) as excinfo:
            self._executor(["figure3", "--backend", "remote"])
        assert "--hosts or REPRO_HOSTS" in str(excinfo.value)

    def test_malformed_hosts_exit_as_cli_error(self):
        with pytest.raises(SystemExit, match="duplicate"):
            self._executor(
                ["figure3", "--hosts", "a:7100,a:7100"]
            )

    def test_launch_local_builds_launcher_executor(self):
        executor = self._executor(
            [
                "figure3",
                "--launch",
                "local",
                "--launch-workers",
                "2",
                "--launch-capacity",
                "1,2",
            ]
        )
        assert executor.launcher is not None
        assert executor.launcher.capacities == [1, 2]
        assert executor.endpoints is None

    def test_launch_requires_remote_backend(self):
        with pytest.raises(SystemExit, match="--backend remote"):
            self._executor(
                ["figure3", "--backend", "serial", "--launch", "local"]
            )

    def test_launch_local_rejects_hosts(self):
        with pytest.raises(SystemExit, match="drop --hosts"):
            self._executor(
                [
                    "figure3",
                    "--launch",
                    "local",
                    "--hosts",
                    "a:7100",
                ]
            )

    def test_launch_local_rejects_env_hosts_too(self, monkeypatch):
        """REPRO_HOSTS must conflict the same way the flag does, not
        be silently dropped in favour of localhost subprocesses."""
        monkeypatch.setenv("REPRO_HOSTS", "a:7100")
        with pytest.raises(SystemExit, match="drop REPRO_HOSTS"):
            self._executor(["figure3", "--launch", "local"])

    def test_launch_ssh_needs_hosts(self):
        with pytest.raises(SystemExit, match="--launch ssh needs"):
            self._executor(["figure3", "--launch", "ssh"])

    def test_launch_ssh_rejects_launch_workers(self):
        """The ssh fleet size comes from --hosts; a conflicting
        --launch-workers must error, not silently launch 1 worker."""
        with pytest.raises(
            SystemExit, match="--launch-workers only applies"
        ):
            self._executor(
                [
                    "figure3",
                    "--launch",
                    "ssh",
                    "--hosts",
                    "a:7100",
                    "--launch-workers",
                    "4",
                ]
            )

    def test_launch_ssh_builds_launcher_from_hosts(self):
        executor = self._executor(
            [
                "figure3",
                "--launch",
                "ssh",
                "--hosts",
                "alice@a:7100,b:7200",
                "--launch-capacity",
                "4",
            ]
        )
        assert executor.launcher is not None
        targets = [spec.ssh_target for spec in executor.launcher.specs]
        assert targets == ["alice@a", "b"]
        assert executor.launcher.capacities == [4, 4]

    def test_launch_ssh_forwards_cache_dir_to_workers(self):
        """The figure's store doubles as the workers' shared store, so
        a killed sweep keeps every trial any worker finished."""
        executor = self._executor(
            [
                "figure3",
                "--launch",
                "ssh",
                "--hosts",
                "a:7100",
                "--cache-dir",
                "/shared/store",
            ]
        )
        assert str(executor.launcher.cache_dir) == "/shared/store"

    def test_launch_local_forwards_cache_dir_to_workers(self):
        executor = self._executor(
            [
                "figure3",
                "--launch",
                "local",
                "--cache-dir",
                "/tmp/store",
            ]
        )
        assert str(executor.launcher.cache_dir) == "/tmp/store"

    def test_launch_flags_without_launch_are_rejected(self):
        """Fleet-shape flags must not be silently ignored just because
        --launch was forgotten."""
        with pytest.raises(SystemExit, match="require\\s+--launch"):
            self._executor(
                [
                    "figure3",
                    "--hosts",
                    "a:7100",
                    "--launch-capacity",
                    "8",
                ]
            )
        with pytest.raises(SystemExit, match="require\\s+--launch"):
            self._executor(
                ["figure3", "--backend", "serial", "--launch-workers", "4"]
            )

    @pytest.mark.parametrize("value", ["0", "1,-2", "nope", "1,2,3"])
    def test_bad_launch_capacity_rejected(self, value):
        with pytest.raises(SystemExit, match="--launch-capacity"):
            self._executor(
                [
                    "figure3",
                    "--launch",
                    "local",
                    "--launch-workers",
                    "2",
                    "--launch-capacity",
                    value,
                ]
            )


class TestSecurityFlags:
    """--secret-file/--tls-* resolution, guards, and executor wiring."""

    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        for name in (
            "REPRO_HOSTS",
            "REPRO_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_DIST_SECRET",
            "REPRO_DIST_TLS_CERT",
            "REPRO_DIST_TLS_KEY",
            "REPRO_DIST_TLS_CA",
        ):
            monkeypatch.delenv(name, raising=False)

    @staticmethod
    def _executor(argv):
        return _make_executor(build_parser().parse_args(argv))

    @pytest.fixture()
    def secret_file(self, tmp_path):
        path = tmp_path / "secret"
        path.write_text("cli-test-token\n")
        return str(path)

    def test_secret_file_reaches_executor(self, secret_file):
        executor = self._executor(
            [
                "figure3",
                "--hosts",
                "a:7100",
                "--secret-file",
                secret_file,
            ]
        )
        assert executor.secret == b"cli-test-token"
        assert executor.ssl_context is None

    def test_env_secret_reaches_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_SECRET", "env-token")
        executor = self._executor(["figure3", "--hosts", "a:7100"])
        assert executor.secret == b"env-token"

    def test_security_flags_rejected_off_remote(self, secret_file):
        with pytest.raises(SystemExit, match="only\\s+apply"):
            self._executor(
                [
                    "figure3",
                    "--backend",
                    "serial",
                    "--secret-file",
                    secret_file,
                ]
            )
        with pytest.raises(SystemExit, match="only\\s+apply"):
            self._executor(
                ["figure3", "--tls-ca", "/ca.pem"]
            )  # no backend at all resolves to serial/local

    def test_tls_cert_without_key_rejected(self):
        with pytest.raises(SystemExit, match="together"):
            self._executor(
                [
                    "figure3",
                    "--hosts",
                    "a:7100",
                    "--tls-cert",
                    "/cert.pem",
                ]
            )

    def test_missing_secret_file_is_clean_error(self):
        with pytest.raises(SystemExit, match="error"):
            self._executor(
                [
                    "figure3",
                    "--hosts",
                    "a:7100",
                    "--secret-file",
                    "/nonexistent/secret",
                ]
            )

    def test_launch_with_ca_only_rejected(self, tmp_path):
        from repro.eval.dist.certs import generate_self_signed

        paths = generate_self_signed(tmp_path / "tls")
        with pytest.raises(SystemExit, match="--tls-cert"):
            self._executor(
                [
                    "figure3",
                    "--launch",
                    "local",
                    "--tls-ca",
                    str(paths.cert),
                ]
            )

    def test_launch_local_threads_secret_and_tls(
        self, secret_file, tmp_path
    ):
        from repro.eval.dist.certs import generate_self_signed

        paths = generate_self_signed(tmp_path / "tls")
        executor = self._executor(
            [
                "figure3",
                "--launch",
                "local",
                "--secret-file",
                secret_file,
                "--tls-cert",
                str(paths.cert),
                "--tls-key",
                str(paths.key),
                "--tls-ca",
                str(paths.cert),
            ]
        )
        assert executor.secret == b"cli-test-token"
        assert executor.ssl_context is not None
        assert executor.launcher.secret == "cli-test-token"
        assert executor.launcher.tls_cert == str(paths.cert)
        assert executor.launcher.tls_key == str(paths.key)

    def test_worker_tls_ca_without_cert_rejected(self):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit, match="--tls-cert"):
            cli_main(["worker", "--tls-ca", "/ca.pem"])

    def test_worker_parses_security_flags(self):
        args = build_parser().parse_args(
            [
                "worker",
                "--secret-file",
                "/secret",
                "--tls-cert",
                "/cert.pem",
                "--tls-key",
                "/key.pem",
                "--secret-stdin",
            ]
        )
        assert args.secret_file == "/secret"
        assert args.secret_stdin is True
        assert args.tls_cert == "/cert.pem"


class TestWorkerSubcommand:
    def test_defaults(self):
        args = build_parser().parse_args(["worker"])
        assert args.port == 0
        assert args.capacity == 0  # auto: one slot per CPU core
        assert not args.exit_on_stdin_close

    @pytest.mark.parametrize("port", ["-1", "65536", "notaport"])
    def test_bad_ports_rejected(self, port):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "--port", port])

    @pytest.mark.parametrize("capacity", ["-2", "nope"])
    def test_bad_capacities_rejected(self, capacity):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["worker", "--capacity", capacity]
            )

    @pytest.mark.parametrize("throttle", ["-1", "nope"])
    def test_bad_throttle_rejected(self, throttle):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["worker", "--throttle", throttle]
            )


class TestExecution:
    def test_demo_runs(self, capsys):
        exit_code = main(["demo", "--snapshots", "500"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "correlation" in output
        assert "e1" in output

    @pytest.fixture()
    def tiny_scales(self, monkeypatch):
        """Shrink the small preset so CLI tests stay fast."""
        from repro.eval import figures

        tiny = dict(figures.SCALES)
        tiny["small"] = {
            "brite": dict(n_ases=25, routers_per_as=4, n_paths=60),
            "planetlab": dict(
                n_routers=80, n_vantages=14, n_paths=60
            ),
            "n_snapshots": 200,
            "packets_per_path": 200,
        }
        monkeypatch.setattr(figures, "SCALES", tiny)

    def test_figure3_cdf_runs_small(self, capsys, tiny_scales):
        exit_code = main(["figure3-cdf", "--level", "high"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cdf[correlation]" in output

    def test_tomographer_runs_small(self, capsys, tiny_scales):
        exit_code = main(["tomographer", "--topology", "planetlab"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "indirect validation prefers" in output

    def test_figure3_sweep_runs_small(self, capsys, tiny_scales):
        exit_code = main(["figure3"])
        assert exit_code == 0
        assert "mean[corr]" in capsys.readouterr().out

    def test_figure4_runs_small(self, capsys, tiny_scales):
        exit_code = main(
            ["figure4", "--topology", "brite", "--fraction", "0.25"]
        )
        assert exit_code == 0
        assert "cdf[correlation]" in capsys.readouterr().out

    def test_figure5_runs_small(self, capsys, tiny_scales):
        exit_code = main(
            ["figure5", "--topology", "planetlab", "--fraction", "0.5"]
        )
        assert exit_code == 0
        assert "cdf[independence]" in capsys.readouterr().out
