"""The ``stream`` subcommand: parsing, sources, and the bit-identity
anchor (incremental final line == batch final line)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import _version_string, build_parser, main
from repro.utils.rng import as_generator

SMALL_GENERATOR = json.dumps(
    {
        "kind": "brite",
        "n_ases": 12,
        "routers_per_as": 3,
        "n_paths": 30,
        "seed": 7,
    }
)


def write_windows(path, n_windows=6, rows=15, n_paths=30, seed=0):
    rng = as_generator(seed)
    with open(path, "w", encoding="utf-8") as handle:
        for _ in range(n_windows):
            window = (rng.random((rows, n_paths)) < 0.3).astype(int)
            handle.write(json.dumps(window.tolist()) + "\n")
    return path


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out.splitlines()


class TestParser:
    def test_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream"])

    def test_sources_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "--windows", "w.jsonl", "--simulate"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["stream", "--simulate"])
        assert args.mode == "incremental"
        assert args.threshold == 0.5
        assert args.max_window is None
        assert args.n_windows == 10
        assert args.window_size == 50

    @pytest.mark.parametrize(
        "flags",
        [
            ["--threshold", "1.5"],
            ["--max-window", "0"],
            ["--n-windows", "0"],
            ["--window-size", "-1"],
        ],
    )
    def test_rejects_out_of_range_flags(self, flags):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--simulate"] + flags)

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == _version_string()
        assert "repro-tomography" in out
        assert "wire protocol v" in out
        assert "journal format v" in out


class TestStreamRun:
    def test_batch_rejects_max_window(self, capsys, tmp_path):
        windows = write_windows(tmp_path / "w.jsonl")
        with pytest.raises(SystemExit, match="max-window"):
            main(
                [
                    "stream",
                    "--windows",
                    str(windows),
                    "--mode",
                    "batch",
                    "--max-window",
                    "5",
                    "--generator",
                    SMALL_GENERATOR,
                ]
            )

    def test_rejects_invalid_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good_row = json.dumps([[0] * 30])
        path.write_text(f"{good_row}\nnot json\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="line 2"):
            main(
                [
                    "stream",
                    "--windows",
                    str(path),
                    "--generator",
                    SMALL_GENERATOR,
                ]
            )

    def test_rejects_window_with_wrong_path_count(self, tmp_path):
        path = tmp_path / "ragged.jsonl"
        path.write_text("[[0, 1, 1]]\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="window 1"):
            main(
                [
                    "stream",
                    "--windows",
                    str(path),
                    "--generator",
                    SMALL_GENERATOR,
                ]
            )

    def test_rejects_empty_source(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        for mode in ("incremental", "batch"):
            with pytest.raises(SystemExit, match="empty"):
                main(
                    [
                        "stream",
                        "--windows",
                        str(path),
                        "--mode",
                        mode,
                        "--generator",
                        SMALL_GENERATOR,
                    ]
                )

    def test_incremental_final_is_bit_identical_to_batch(
        self, capsys, tmp_path
    ):
        """The PR's correctness anchor, exercised end to end through
        the CLI: the last incremental line equals the batch line,
        byte for byte."""
        windows = write_windows(tmp_path / "w.jsonl", seed=5)
        code, lines = run_cli(
            capsys,
            "stream",
            "--windows",
            str(windows),
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        assert len(lines) == 7  # 6 deltas + final
        code, batch_lines = run_cli(
            capsys,
            "stream",
            "--windows",
            str(windows),
            "--mode",
            "batch",
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        assert len(batch_lines) == 1
        assert lines[-1] == batch_lines[0]
        final = json.loads(lines[-1])
        assert final["n_snapshots"] == 90
        assert final["n_evicted"] == 0
        assert len(final["result"]["probabilities"]) > 0

    def test_delta_lines_are_valid_verdicts(self, capsys, tmp_path):
        windows = write_windows(tmp_path / "w.jsonl", n_windows=3)
        code, lines = run_cli(
            capsys,
            "stream",
            "--windows",
            str(windows),
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        for index, line in enumerate(lines[:-1]):
            delta = json.loads(line)
            assert delta["window"] == index
            assert delta["timestamp"] == 15 * (index + 1)
            assert delta["changed"] == bool(
                delta["onsets"] or delta["clears"]
            )

    def test_quiet_prints_only_the_final_line(self, capsys, tmp_path):
        windows = write_windows(tmp_path / "w.jsonl", n_windows=3)
        code, lines = run_cli(
            capsys,
            "stream",
            "--windows",
            str(windows),
            "--quiet",
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        assert len(lines) == 1
        assert "n_snapshots" in lines[0]

    def test_max_window_reports_evictions(self, capsys, tmp_path):
        windows = write_windows(tmp_path / "w.jsonl", n_windows=4)
        code, lines = run_cli(
            capsys,
            "stream",
            "--windows",
            str(windows),
            "--max-window",
            "20",
            "--quiet",
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        final = json.loads(lines[-1])
        assert final["n_snapshots"] == 20
        assert final["n_evicted"] == 40

    def test_simulate_save_then_replay_round_trips(
        self, capsys, tmp_path
    ):
        """--simulate with --save-windows writes a replayable JSONL;
        replaying it reproduces the simulated run's final line."""
        saved = tmp_path / "saved.jsonl"
        code, simulated = run_cli(
            capsys,
            "stream",
            "--simulate",
            "--n-windows",
            "4",
            "--window-size",
            "12",
            "--save-windows",
            str(saved),
            "--quiet",
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        payloads = [
            json.loads(line)
            for line in saved.read_text().splitlines()
        ]
        assert len(payloads) == 4
        assert all(len(window) == 12 for window in payloads)
        code, replayed = run_cli(
            capsys,
            "stream",
            "--windows",
            str(saved),
            "--quiet",
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        assert replayed[-1] == simulated[-1]

    def test_simulate_is_deterministic_per_seed(self, capsys):
        argv = (
            "--seed",
            "9",
            "stream",
            "--simulate",
            "--n-windows",
            "3",
            "--window-size",
            "10",
            "--quiet",
            "--generator",
            SMALL_GENERATOR,
        )
        _, first = run_cli(capsys, *argv)
        _, second = run_cli(capsys, *argv)
        assert first == second

    def test_events_timeline_rejected_when_malformed(self):
        for events in ("not json", '{"kind": "onset"}'):
            with pytest.raises(SystemExit, match="--events"):
                main(
                    [
                        "stream",
                        "--simulate",
                        "--events",
                        events,
                        "--generator",
                        SMALL_GENERATOR,
                    ]
                )

    def test_events_timeline_drives_onsets(self, capsys):
        """A scripted onset on quiet links shows up in the per-window
        verdict deltas after the onset snapshot."""
        events = json.dumps(
            [{"kind": "onset", "at": 40, "links": [0, 1]}]
        )
        code, lines = run_cli(
            capsys,
            "stream",
            "--simulate",
            "--n-windows",
            "5",
            "--window-size",
            "20",
            "--congested-fraction",
            "0.0",
            "--events",
            events,
            "--generator",
            SMALL_GENERATOR,
        )
        assert code == 0
        deltas = [json.loads(line) for line in lines[:-1]]
        onsets = {k for delta in deltas for k in delta["onsets"]}
        # At least one scripted link becomes detectable (whether both
        # do depends on path coverage of this instance).
        assert onsets & {0, 1}
        # Nothing fires before the onset snapshot (windows 0-1 cover
        # snapshots 0..39).
        assert not deltas[0]["onsets"] and not deltas[1]["onsets"]
