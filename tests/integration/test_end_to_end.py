"""End-to-end pipeline tests on generated instances."""

import numpy as np
import pytest

from repro.core import (
    infer_congestion,
    infer_congestion_independent,
    localize_map,
    localize_smallest_set,
)
from repro.eval import (
    make_clustered_scenario,
    potentially_congested_links,
    run_comparison,
)
from repro.simulate import ExperimentConfig, run_experiment


class TestPlanetLabPipeline:
    @pytest.fixture(scope="class")
    def comparison(self, request):
        planetlab = request.getfixturevalue("planetlab_small")
        scenario = make_clustered_scenario(
            planetlab, congested_fraction=0.10, seed=41
        )
        return scenario, run_comparison(
            planetlab.topology,
            scenario,
            config=ExperimentConfig(
                n_snapshots=1000, packets_per_path=600
            ),
            seed=42,
        )

    def test_correlation_algorithm_is_accurate(self, comparison):
        _, result = comparison
        stats = result.stats("correlation")
        assert stats.mean < 0.06

    def test_correlation_not_worse_than_independence(self, comparison):
        _, result = comparison
        corr = result.stats("correlation")
        indep = result.stats("independence")
        assert corr.mean <= indep.mean + 0.01

    def test_zero_probability_links_mostly_correct(self, comparison):
        scenario, result = comparison
        truth = result.truth
        zero_links = [
            int(k)
            for k in result.scored_links
            if truth[int(k)] == 0.0
        ]
        probabilities = result.results[
            "correlation"
        ].congestion_probabilities
        wrong = sum(
            1 for k in zero_links if probabilities[k] > 0.2
        )
        assert wrong / max(len(zero_links), 1) < 0.1


class TestBritePipeline:
    def test_full_run(self, brite_small):
        scenario = make_clustered_scenario(
            brite_small.instance, congested_fraction=0.10, seed=51
        )
        comparison = run_comparison(
            brite_small.instance.topology,
            scenario,
            config=ExperimentConfig(
                n_snapshots=800, packets_per_path=500
            ),
            seed=52,
        )
        assert comparison.stats("correlation").mean < 0.08

    def test_organic_ground_truth_pipeline(self, brite_small):
        """The paper's actual Brite recipe: congestion assigned to
        router-level links, AS-level behaviour derived."""
        instance = brite_small.instance
        model = brite_small.make_organic_model(
            congested_resource_fraction=0.08, seed=53
        )
        run = run_experiment(
            instance.topology,
            model,
            config=ExperimentConfig(
                n_snapshots=1000, packets_per_path=600
            ),
            seed=54,
        )
        result = infer_congestion(
            instance.topology, instance.correlation, run.observations
        )
        truth = model.link_marginals()
        scored = potentially_congested_links(
            instance.topology, run.observations
        )
        errors = np.abs(
            result.congestion_probabilities - truth
        )[scored]
        baseline = infer_congestion_independent(
            instance.topology, run.observations
        )
        baseline_errors = np.abs(
            baseline.congestion_probabilities - truth
        )[scored]
        assert errors.mean() < 0.10
        assert errors.mean() <= baseline_errors.mean() + 0.02


class TestLocalizationPipeline:
    def test_map_localization_on_simulated_snapshots(self, instance_1a, model_1a):
        """Future-work extension: per-snapshot congested-set inference
        using the true probabilities should mostly match ground truth."""
        topology = instance_1a.topology
        run = run_experiment(
            topology,
            model_1a,
            config=ExperimentConfig(
                n_snapshots=300, packets_per_path=None
            ),
            seed=61,
        )
        truth_probabilities = model_1a.link_marginals()
        precision_total = 0.0
        recall_total = 0.0
        counted = 0
        for snapshot in range(run.observations.n_snapshots):
            mask = run.observations.congested_mask_of_snapshot(snapshot)
            true_links = frozenset(
                np.flatnonzero(run.link_states[snapshot])
            )
            try:
                result = localize_map(
                    topology, mask, truth_probabilities
                )
            except Exception:
                continue
            precision, recall = result.precision_recall(true_links)
            precision_total += precision
            recall_total += recall
            counted += 1
        assert counted > 250
        assert precision_total / counted > 0.8
        assert recall_total / counted > 0.55

    def test_map_vs_smallest_set(self, instance_1a, model_1a):
        """MAP with informative probabilities should not lose to the
        smallest-set heuristic on average likelihood."""
        topology = instance_1a.topology
        run = run_experiment(
            topology,
            model_1a,
            config=ExperimentConfig(
                n_snapshots=150, packets_per_path=None
            ),
            seed=62,
        )
        probabilities = model_1a.link_marginals()
        better_or_equal = 0
        total = 0
        for snapshot in range(run.observations.n_snapshots):
            mask = run.observations.congested_mask_of_snapshot(snapshot)
            if mask == 0:
                continue
            try:
                map_result = localize_map(topology, mask, probabilities)
                greedy = localize_smallest_set(topology, mask)
            except Exception:
                continue
            total += 1
            import math

            def loglik(links):
                value = 0.0
                clipped = np.clip(probabilities, 1e-9, 1 - 1e-9)
                for k in range(topology.n_links):
                    p = clipped[k]
                    value += math.log(p if k in links else 1.0 - p)
                return value

            if loglik(map_result.congested_links) >= loglik(
                greedy.congested_links
            ) - 1e-9:
                better_or_equal += 1
        assert total > 0
        assert better_or_equal == total
