"""End-to-end test of the Section-3.3 merge workflow.

When Assumption 4 fails and the topology cannot be altered, the paper's
remaining option is the merge transformation: collapse the offending
links into merged links, infer at the reduced granularity, and read each
merged link's probability as "at least one of its originals congested".

Pipeline under test on Figure 1(b):

1. the original instance is unidentifiable (checked);
2. the ground truth lives on the *original* links (correlated {e1,e2});
3. measurements are taken on the original topology;
4. inference runs on the *transformed* topology — the measurement paths
   are the same end-to-end observations, just re-expressed over merged
   links — and must recover each merged link's true union-probability;
5. ``project_probabilities`` maps the estimates back to original-link
   groups.
"""

import math

import numpy as np

from repro.core import infer_congestion, transform_until_identifiable
from repro.core.identifiability import check_assumption4
from repro.model import (
    ExplicitJointModel,
    IndependentModel,
    NetworkCongestionModel,
)
from repro.simulate import (
    ExactPathStateDistribution,
    ExperimentConfig,
    run_experiment,
)


def make_fig1b_truth(instance):
    topology = instance.topology
    e1, e2, e3 = (topology.link(n).id for n in ("e1", "e2", "e3"))
    return (
        NetworkCongestionModel(
            instance.correlation,
            [
                ExplicitJointModel(
                    frozenset({e1, e2}),
                    {
                        frozenset({e1}): 0.06,
                        frozenset({e2}): 0.10,
                        frozenset({e1, e2}): 0.14,
                    },
                ),
                IndependentModel({e3: 0.2}),
            ],
        ),
        (e1, e2, e3),
    )


def true_union_probability(model, links) -> float:
    """P(at least one of ``links`` congested) by inclusion–exclusion
    over the (enumerable) network states."""
    total = 0.0
    for state, probability in model.iter_states():
        if state & set(links):
            total += probability
    return total


class TestMergeWorkflow:
    def test_full_pipeline_with_oracle(self, instance_1b):
        truth_model, (e1, e2, e3) = make_fig1b_truth(instance_1b)
        assert not check_assumption4(instance_1b.correlation).holds

        transformed = transform_until_identifiable(
            instance_1b.topology, instance_1b.correlation
        )
        assert check_assumption4(transformed.correlation).holds

        # The observable process is identical: path P_i is congested iff
        # any original link on it is congested.  Build the transformed
        # oracle directly from the original model's path-state law.
        oracle = ExactPathStateDistribution.from_model(
            instance_1b.topology, truth_model
        )
        result = infer_congestion(
            transformed.topology, transformed.correlation, oracle
        )

        projected = transformed.project_probabilities(
            result.congestion_probabilities
        )
        assert set(projected) == {
            frozenset({e3, e1}),
            frozenset({e3, e2}),
        }
        for originals, estimate in projected.items():
            expected = true_union_probability(truth_model, originals)
            assert math.isclose(estimate, expected, abs_tol=1e-9), (
                originals,
                estimate,
                expected,
            )

    def test_full_pipeline_with_simulation(self, instance_1b):
        truth_model, _ = make_fig1b_truth(instance_1b)
        transformed = transform_until_identifiable(
            instance_1b.topology, instance_1b.correlation
        )
        run = run_experiment(
            instance_1b.topology,
            truth_model,
            config=ExperimentConfig(n_snapshots=6000),
            seed=1331,
        )
        # Same path observations, re-read against the merged topology.
        result = infer_congestion(
            transformed.topology,
            transformed.correlation,
            run.observations,
        )
        projected = transformed.project_probabilities(
            result.congestion_probabilities
        )
        for originals, estimate in projected.items():
            expected = true_union_probability(truth_model, originals)
            assert abs(estimate - expected) < 0.05

    def test_merged_estimates_bound_original_marginals(
        self, instance_1b
    ):
        """P(any of the group) upper-bounds each member's marginal —
        the reduced-granularity reading the paper describes."""
        truth_model, (e1, e2, e3) = make_fig1b_truth(instance_1b)
        transformed = transform_until_identifiable(
            instance_1b.topology, instance_1b.correlation
        )
        oracle = ExactPathStateDistribution.from_model(
            instance_1b.topology, truth_model
        )
        result = infer_congestion(
            transformed.topology, transformed.correlation, oracle
        )
        projected = transformed.project_probabilities(
            result.congestion_probabilities
        )
        truth = truth_model.link_marginals()
        for originals, estimate in projected.items():
            for link_id in originals:
                assert estimate >= truth[link_id] - 1e-9
