"""The docs stay honest: CLI.md covers every subcommand and env var.

The same invariants run in CI's ``docs-check`` step, so a new
subcommand (or a renamed one) fails fast until its documentation
lands.
"""

from __future__ import annotations

import argparse
import pathlib
import re

import pytest

from repro.cli import build_parser

REPO = pathlib.Path(__file__).resolve().parents[2]

#: Environment variables the runtime reads; each must be documented.
ENV_VARS = [
    "REPRO_WORKERS",
    "REPRO_CACHE_DIR",
    "REPRO_HOSTS",
    "REPRO_DIST_SECRET",
    "REPRO_CHAOS",
    "REPRO_STREAM_VERIFY",
]


def subcommands() -> list[str]:
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("no subparsers found on the CLI parser")


@pytest.fixture(scope="module")
def cli_md() -> str:
    return (REPO / "docs" / "CLI.md").read_text(encoding="utf-8")


class TestCliDoc:
    def test_every_subcommand_has_a_section(self, cli_md):
        headings = set(re.findall(r"^## `([a-z0-9-]+)`", cli_md, re.M))
        missing = [name for name in subcommands() if name not in headings]
        assert not missing, (
            f"subcommand(s) {missing} have no '## `name`' section in "
            "docs/CLI.md"
        )

    def test_no_section_documents_a_ghost_subcommand(self, cli_md):
        headings = re.findall(r"^## `([a-z0-9-]+)`", cli_md, re.M)
        ghosts = [name for name in headings if name not in subcommands()]
        assert not ghosts, (
            f"docs/CLI.md documents nonexistent subcommand(s) {ghosts}"
        )

    def test_env_vars_are_documented(self, cli_md):
        missing = [var for var in ENV_VARS if var not in cli_md]
        assert not missing, f"env var(s) {missing} missing from docs/CLI.md"

    def test_exit_codes_are_documented(self, cli_md):
        assert "Exit codes" in cli_md


class TestDocSurface:
    def test_readme_links_the_doc_set(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for target in ("docs/CLI.md", "docs/OPERATIONS.md",
                       "docs/ARCHITECTURE.md"):
            assert target in readme, f"README.md does not link {target}"

    def test_operations_doc_covers_fleet_and_service(self):
        operations = (REPO / "docs" / "OPERATIONS.md").read_text(
            encoding="utf-8"
        )
        for anchor in ("worker", "serve", "--journal", "REPRO_CHAOS"):
            assert anchor in operations

    def test_architecture_doc_covers_the_predict_layer(self):
        architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        for anchor in ("Predict layer", "DemandMatrix", "/whatif"):
            assert anchor in architecture
