"""Integration tests reproducing the paper's worked material verbatim.

Covers: the Section-3.1 coverage tables for Figures 1(a) and 1(b), the
Section-3.2 proof illustration (Steps 1–4) with its measured ratios and
factor ordering, the Appendix-A.2 eight-state table, and the Section-4
equation walkthrough (Eqs. 4–8).
"""

import math

import numpy as np
import pytest

from repro.core.equations import build_equations
from repro.core.state import iter_exact_covers
from repro.core.theorem import TheoremAlgorithm


class TestSection32ProofIllustration:
    """The paper's Step 1 .. Step 4 on Figure 1(a)."""

    def test_step1_alpha_e1(self, instance_1a, oracle_1a):
        """P(ψ(S)=ψ({e1})) / P(ψ(S)=∅) = α_{e1}."""
        topology = instance_1a.topology
        mask = 1 << topology.path("P1").id
        ratio = oracle_1a.p_congested_mask(mask) / oracle_1a.p_congested_mask(0)
        # Ground truth α_{e1} = P(S1={e1}) / P(S1=∅) = 0.05/0.7.
        assert math.isclose(ratio, 0.05 / 0.7, abs_tol=1e-12)

    def test_step2_alpha_e3(self, instance_1a, oracle_1a):
        """P(ψ(S)=ψ({e3})) / P(ψ(S)=∅) = (1 + α_{e1}) · α_{e3}."""
        topology = instance_1a.topology
        mask = (1 << topology.path("P1").id) | (
            1 << topology.path("P2").id
        )
        ratio = oracle_1a.p_congested_mask(mask) / oracle_1a.p_congested_mask(0)
        alpha_e1 = 0.05 / 0.7
        alpha_e3 = 0.3 / 0.7
        assert math.isclose(
            ratio, (1 + alpha_e1) * alpha_e3, abs_tol=1e-12
        )

    def test_step3_ordering(self, instance_1a):
        """The ordering ⟨{e1},{e4},{e3},{e2},{e1,e2}⟩ — by coverage
        count, with the {e1}/{e4} and {e3}/{e2} ties in either order."""
        topology = instance_1a.topology
        algorithm = TheoremAlgorithm(topology, instance_1a.correlation)
        names = [
            frozenset(topology.links[k].name for k in subset)
            for subset in algorithm.ordered_subsets
        ]
        assert set(names[:2]) == {frozenset({"e1"}), frozenset({"e4"})}
        assert set(names[2:4]) == {frozenset({"e3"}), frozenset({"e2"})}
        assert names[4] == frozenset({"e1", "e2"})

    def test_step4_joint_via_independence(
        self, instance_1a, oracle_1a, model_1a
    ):
        """P(X_e1=1, X_e3=1) = P(X_e1=1) · P(X_e3=1)."""
        result = TheoremAlgorithm(
            instance_1a.topology, instance_1a.correlation
        ).identify(oracle_1a)
        topology = instance_1a.topology
        e1, e3 = topology.link("e1").id, topology.link("e3").id
        assert math.isclose(
            result.joint({e1, e3}),
            result.link_marginals[e1] * result.link_marginals[e3],
            abs_tol=1e-12,
        )

    def test_appendix_eight_states_for_all_paths_congested(
        self, instance_1a
    ):
        """Appendix A.2: ψ(S) = ψ({e1,e2}) = all paths admits exactly
        the 8 listed network states."""
        topology = instance_1a.topology
        correlation = instance_1a.correlation
        per_set = []
        for set_index in range(correlation.n_sets):
            candidates = [(frozenset(), 0)]
            for subset in correlation.subsets_of_set(set_index):
                candidates.append(
                    (subset, topology.coverage_of(subset))
                )
            per_set.append(candidates)
        states = [
            frozenset().union(*state)
            for state in iter_exact_covers(
                topology.all_paths_mask, per_set
            )
        ]
        assert len(states) == 8
        name = lambda k: topology.links[k].name  # noqa: E731
        as_names = {
            frozenset(name(k) for k in state) for state in states
        }
        expected = {
            frozenset({"e1", "e2"}),
            frozenset({"e1", "e2", "e3"}),
            frozenset({"e1", "e2", "e4"}),
            frozenset({"e1", "e2", "e3", "e4"}),
            frozenset({"e3", "e4"}),
            frozenset({"e1", "e3", "e4"}),
            frozenset({"e2", "e3", "e4"}),
            frozenset({"e2", "e3"}),
        }
        assert as_names == expected


class TestSection4Equations:
    """Eqs. 4–8 of the algorithm section."""

    def test_equations_4_to_7(self, instance_1a, oracle_1a):
        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        topology = instance_1a.topology
        by_kind = {}
        for row in system.rows:
            names = frozenset(
                topology.links[k].name for k in row.link_ids
            )
            by_kind[names] = row
        # Eq. 4: y1 = x1 + x3; Eq. 5: y2 = x2 + x3; Eq. 6: y3 = x2 + x4.
        assert frozenset({"e1", "e3"}) in by_kind
        assert frozenset({"e2", "e3"}) in by_kind
        assert frozenset({"e2", "e4"}) in by_kind
        # Eq. 7: y23 = x2 + x3 + x4.
        assert frozenset({"e2", "e3", "e4"}) in by_kind

    def test_equation_8_is_rejected(self, instance_1a, oracle_1a):
        """The pair (P1, P2) would introduce x12 — never emitted."""
        system = build_equations(
            instance_1a.topology,
            instance_1a.correlation,
            oracle_1a,
            selection="all",
        )
        topology = instance_1a.topology
        p1, p2 = topology.path("P1").id, topology.path("P2").id
        for row in system.rows:
            assert set(row.paths) != {p1, p2}

    def test_solution_recovers_x(self, instance_1a, oracle_1a, truth_1a):
        """Solving the 4-equation system yields x_k = log P(X_ek=0)."""
        from repro.core.solvers import solve_l1

        system = build_equations(
            instance_1a.topology, instance_1a.correlation, oracle_1a
        )
        matrix, values = system.matrix()
        solution = solve_l1(matrix, values)
        assert np.allclose(
            solution, np.log(1.0 - truth_1a), atol=1e-6
        )


class TestWhyNotOneBigSet:
    """Section 3.3: assigning all links to one correlation set leaves
    nothing inferable beyond end-to-end measurements."""

    def test_no_equations_under_one_set(self, instance_1a, oracle_1a):
        from repro.core.correlation import CorrelationStructure

        topology = instance_1a.topology
        one_set = CorrelationStructure(
            topology, [list(range(topology.n_links))]
        )
        system = build_equations(topology, one_set, oracle_1a)
        assert not system.rows

    def test_transformed_graph_has_one_link_per_path(self, instance_1a):
        from repro.core.correlation import CorrelationStructure
        from repro.core.transform import transform_until_identifiable

        topology = instance_1a.topology
        one_set = CorrelationStructure(
            topology, [list(range(topology.n_links))]
        )
        result = transform_until_identifiable(topology, one_set)
        assert result.topology.n_links == topology.n_paths
        for path in result.topology.paths:
            assert path.length == 1
