"""Run the doctests embedded in utility modules."""

import doctest

import repro.utils.bitset
import repro.utils.tables


def test_bitset_doctests():
    results = doctest.testmod(repro.utils.bitset)
    assert results.failed == 0
    assert results.attempted > 0


def test_tables_doctests():
    results = doctest.testmod(repro.utils.tables)
    assert results.failed == 0
    assert results.attempted > 0
