"""Unit tests for validation helpers."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="p must be"):
            check_probability(value, "p")

    def test_returns_float(self):
        assert isinstance(check_probability(1, "p"), float)


class TestCheckFraction:
    def test_accepts_boundary(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(-0.5, "f")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3, "n") == 3

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="n must be"):
            check_positive(value, "n")
