"""Unit tests for bitmask helpers."""

import pytest

from repro.utils.bitset import bit_count, bits_of, iter_bits, mask_of, subset_of


class TestMaskOf:
    def test_empty(self):
        assert mask_of([]) == 0

    def test_single_bit(self):
        assert mask_of([0]) == 1
        assert mask_of([3]) == 8

    def test_multiple_bits(self):
        assert mask_of([0, 2]) == 0b101

    def test_duplicates_collapse(self):
        assert mask_of([1, 1, 1]) == 2

    def test_large_index(self):
        assert mask_of([1500]) == 1 << 1500

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of([-1])


class TestBitsOf:
    def test_roundtrip(self):
        indices = [0, 3, 17, 900]
        assert bits_of(mask_of(indices)) == indices

    def test_zero(self):
        assert bits_of(0) == []

    def test_order_is_ascending(self):
        assert bits_of(0b1011) == [0, 1, 3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_of(-5)


class TestIterBits:
    def test_is_lazy(self):
        iterator = iter_bits(0b110)
        assert next(iterator) == 1
        assert next(iterator) == 2

    def test_matches_bits_of(self):
        mask = 0b1010101
        assert list(iter_bits(mask)) == bits_of(mask)


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_full_byte(self):
        assert bit_count(0xFF) == 8

    def test_sparse(self):
        assert bit_count(mask_of([5, 500])) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_count(-1)


class TestSubsetOf:
    def test_empty_is_subset_of_everything(self):
        assert subset_of(0, 0)
        assert subset_of(0, 0b111)

    def test_proper_subset(self):
        assert subset_of(0b0101, 0b1101)

    def test_equal_sets(self):
        assert subset_of(0b11, 0b11)

    def test_not_subset(self):
        assert not subset_of(0b0011, 0b0101)

    def test_superset_is_not_subset(self):
        assert not subset_of(0b111, 0b011)
