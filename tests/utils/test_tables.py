"""Unit tests for ASCII table rendering."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["x", "y"], [[1, 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert "2.0000" in lines[2]

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text
        assert len(text.splitlines()) == 2

    def test_column_widths_accommodate_longest_cell(self):
        text = format_table(["h"], [["a-very-long-cell"]])
        header, divider, row = text.splitlines()
        assert len(divider) == len("a-very-long-cell")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_strings_pass_through(self):
        text = format_table(["name"], [["e1"]])
        assert "e1" in text
