"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_children


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        rng = np.random.default_rng(0)
        same = as_generator(rng)
        assert same is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnChildren:
    def test_count(self):
        children = spawn_children(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        a, b = spawn_children(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_from_seed(self):
        first = [g.random(3).tolist() for g in spawn_children(9, 2)]
        second = [g.random(3).tolist() for g in spawn_children(9, 2)]
        assert first == second

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(5)
        children = spawn_children(rng, 2)
        assert len(children) == 2

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)
