"""Incremental PathObservations: append, evict, sliding window."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.simulate.observations import PathObservations
from repro.utils.rng import as_generator


def random_windows(seed, n_windows, n_paths, rows=(1, 7)):
    rng = as_generator(seed)
    return [
        rng.random((int(rng.integers(*rows, endpoint=True)), n_paths))
        < 0.4
        for _ in range(n_windows)
    ]


def assert_same_state(incremental, scratch):
    """Every observable statistic matches a from-scratch build."""
    assert incremental.n_snapshots == scratch.n_snapshots
    assert np.array_equal(incremental.path_states, scratch.path_states)
    assert np.array_equal(
        incremental.log_good_all(), scratch.log_good_all()
    )
    assert np.array_equal(
        incremental.joint_good_gram(), scratch.joint_good_gram()
    )
    assert incremental.observed_masks() == scratch.observed_masks()
    for snapshot in range(scratch.n_snapshots):
        assert incremental.congested_mask_of_snapshot(
            snapshot
        ) == scratch.congested_mask_of_snapshot(snapshot)


class TestAppendWindow:
    def test_append_equals_from_scratch(self):
        windows = random_windows(0, 5, n_paths=6)
        observations = PathObservations(windows[0])
        # Materialise every cache first so appends must maintain them
        # incrementally rather than rebuild lazily.
        observations.joint_good_gram()
        observations.observed_masks()
        observations.log_good_all()
        for window in windows[1:]:
            observations.append_window(window)
        assert_same_state(
            observations,
            PathObservations(np.concatenate(windows, axis=0)),
        )

    def test_append_on_cold_caches(self):
        windows = random_windows(1, 4, n_paths=5)
        observations = PathObservations(windows[0])
        for window in windows[1:]:
            observations.append_window(window)
        assert_same_state(
            observations,
            PathObservations(np.concatenate(windows, axis=0)),
        )

    def test_empty_window_is_a_no_op(self):
        observations = PathObservations(np.zeros((3, 4), dtype=bool))
        observations.append_window(np.zeros((0, 4), dtype=bool))
        assert observations.n_snapshots == 3

    def test_rejects_path_count_mismatch(self):
        observations = PathObservations(np.zeros((3, 4), dtype=bool))
        with pytest.raises(MeasurementError, match="paths"):
            observations.append_window(np.zeros((2, 5), dtype=bool))

    def test_input_is_frozen(self):
        """Satellite: adopted arrays are made read-only so callers
        can't silently corrupt the accumulated caches."""
        states = np.zeros((3, 4), dtype=bool)
        window = np.ones((2, 4), dtype=bool)
        observations = PathObservations(states)
        observations.append_window(window)
        assert not states.flags.writeable
        assert not window.flags.writeable
        assert not observations.path_states.flags.writeable
        with pytest.raises(ValueError):
            states[0, 0] = True


class TestEviction:
    def test_evict_oldest_matches_tail_rebuild(self):
        windows = random_windows(2, 4, n_paths=6)
        observations = PathObservations(windows[0])
        observations.joint_good_gram()
        observations.observed_masks()
        for window in windows[1:]:
            observations.append_window(window)
        observations.evict_oldest(3)
        full = np.concatenate(windows, axis=0)
        assert_same_state(observations, PathObservations(full[3:]))
        assert observations.n_evicted == 3

    def test_cannot_evict_everything(self):
        observations = PathObservations(np.zeros((2, 3), dtype=bool))
        with pytest.raises(MeasurementError, match="at least one"):
            observations.evict_oldest(2)
        observations.evict_oldest(0)  # no-op
        assert observations.n_snapshots == 2

    def test_max_window_bounds_history(self):
        windows = random_windows(3, 6, n_paths=4, rows=(3, 3))
        observations = PathObservations(windows[0], max_window=7)
        observations.joint_good_gram()
        observations.observed_masks()
        for window in windows[1:]:
            observations.append_window(window)
            assert observations.n_snapshots <= 7
        full = np.concatenate(windows, axis=0)
        assert observations.n_evicted == full.shape[0] - 7
        assert_same_state(observations, PathObservations(full[-7:]))

    def test_max_window_applies_at_construction(self):
        states = (as_generator(4).random((10, 3)) < 0.5)
        observations = PathObservations(states, max_window=4)
        assert observations.n_snapshots == 4
        assert observations.n_evicted == 6
        assert np.array_equal(observations.path_states, states[-4:])

    def test_rejects_nonpositive_max_window(self):
        with pytest.raises(MeasurementError, match="max_window"):
            PathObservations(np.zeros((2, 3), dtype=bool), max_window=0)

    def test_mask_of_snapshot_reindexes_after_eviction(self):
        states = np.array(
            [[1, 0], [0, 1], [1, 1], [0, 0]], dtype=bool
        )
        observations = PathObservations(states)
        observations.observed_masks()
        observations.evict_oldest(2)
        assert observations.congested_mask_of_snapshot(0) == 0b11
        assert observations.congested_mask_of_snapshot(1) == 0b00
        with pytest.raises(MeasurementError, match="out of range"):
            observations.congested_mask_of_snapshot(2)
