"""Unit tests for the empirical estimators."""

import math

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.simulate.observations import PathObservations


@pytest.fixture()
def observations():
    # 4 snapshots × 3 paths.
    states = np.array(
        [
            [True, False, False],
            [False, False, False],
            [True, True, False],
            [False, False, False],
        ]
    )
    return PathObservations(states)


class TestValidation:
    def test_wrong_shape_rejected(self):
        with pytest.raises(MeasurementError):
            PathObservations(np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            PathObservations(np.zeros((0, 3)))

    def test_dimensions(self, observations):
        assert observations.n_snapshots == 4
        assert observations.n_paths == 3


class TestGoodEstimators:
    def test_p_good(self, observations):
        assert observations.p_good(0) == 0.5
        assert observations.p_good(1) == 0.75

    def test_never_congested_is_smoothed(self, observations):
        """Path 2 was always good: clamp at 1 − 1/(2N)."""
        assert observations.p_good(2) == 1.0 - 0.5 / 4

    def test_always_congested_is_smoothed(self):
        states = np.ones((10, 1), dtype=bool)
        observations = PathObservations(states)
        assert observations.p_good(0) == 0.5 / 10

    def test_log_good(self, observations):
        assert math.isclose(
            observations.log_good(0), math.log(0.5)
        )

    def test_pair_estimator(self, observations):
        # Both 0 and 1 good in snapshots 1 and 3 -> 2/4.
        assert observations.p_good_pair(0, 1) == 0.5
        assert math.isclose(
            observations.log_good_pair(0, 1), math.log(0.5)
        )

    def test_congestion_frequency(self, observations):
        assert observations.congestion_frequency(0) == 0.5

    def test_out_of_range_path(self, observations):
        with pytest.raises(MeasurementError):
            observations.p_good(5)


class TestMaskEstimators:
    def test_mask_counts(self, observations):
        masks = observations.observed_masks()
        assert masks[0] == 2  # two all-good snapshots
        assert masks[0b001] == 1  # path 0 alone
        assert masks[0b011] == 1  # paths 0 and 1

    def test_p_congested_mask(self, observations):
        assert observations.p_congested_mask(0) == 0.5
        assert observations.p_congested_mask(0b011) == 0.25
        assert observations.p_congested_mask(0b111) == 0.0

    def test_mask_of_snapshot(self, observations):
        assert observations.congested_mask_of_snapshot(0) == 0b001
        assert observations.congested_mask_of_snapshot(1) == 0
        with pytest.raises(MeasurementError):
            observations.congested_mask_of_snapshot(99)

    def test_mask_probabilities_sum_to_one(self, observations):
        total = sum(
            count for count in observations.observed_masks().values()
        )
        assert total == observations.n_snapshots


class TestViews:
    def test_path_states_read_only(self, observations):
        view = observations.path_states
        with pytest.raises(ValueError):
            view[0, 0] = False

    def test_repr(self, observations):
        assert "n_snapshots=4" in repr(observations)
