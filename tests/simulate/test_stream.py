"""Unit tests for the windowed snapshot stream and its timeline."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.model.loss import LossModel
from repro.simulate.probes import PathProber, ProbeConfig
from repro.simulate.snapshot import simulate_snapshot
from repro.simulate.stream import (
    LinkStateTimeline,
    SnapshotStream,
    StreamEvent,
)
from repro.utils.rng import as_generator


def make_stream(instance, model, **kwargs):
    kwargs.setdefault("rng", as_generator(0))
    return SnapshotStream(
        model,
        LossModel(),
        PathProber(instance.topology, ProbeConfig()),
        **kwargs,
    )


class TestStreamEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError, match="kind"):
            StreamEvent(kind="meltdown", at=0, links=(1,))

    def test_rejects_empty_links(self):
        with pytest.raises(SimulationError, match="at least one link"):
            StreamEvent(kind="onset", at=0, links=())

    def test_rejects_bad_probability(self):
        with pytest.raises(SimulationError, match="probability"):
            StreamEvent(
                kind="onset", at=0, links=(1,), probability=1.5
            )

    def test_rejects_until_before_at(self):
        with pytest.raises(SimulationError, match="until"):
            StreamEvent(kind="onset", at=5, links=(1,), until=5)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SimulationError, match="unknown"):
            StreamEvent.from_dict(
                {"kind": "onset", "at": 0, "links": [1], "bogus": 1}
            )

    def test_active_window(self):
        event = StreamEvent(kind="onset", at=3, links=(0,), until=6)
        assert [event.active(i) for i in range(8)] == [
            False, False, False, True, True, True, False, False,
        ]

    def test_flap_alternates_by_period(self):
        event = StreamEvent(kind="flap", at=2, links=(0,), period=2)
        congested = [event.congesting(i) for i in range(2, 10)]
        assert congested == [
            True, True, False, False, True, True, False, False,
        ]


class TestLinkStateTimeline:
    def test_check_links_rejects_out_of_range(self):
        timeline = LinkStateTimeline(
            [StreamEvent(kind="onset", at=0, links=(9,))]
        )
        with pytest.raises(SimulationError, match="link"):
            timeline.check_links(4)

    def test_onset_and_clear_override_sampled_state(self):
        timeline = LinkStateTimeline.from_specs(
            [
                {"kind": "onset", "at": 2, "links": [0]},
                {"kind": "clear", "at": 0, "links": [1]},
            ]
        )
        rng = as_generator(0)
        for index in range(4):
            states = np.array([False, True, False, True])
            timeline.apply(states, index, rng)
            assert states[0] == (index >= 2)
            assert not states[1]
            assert states[3]  # untouched links keep the sampled state

    def test_later_event_wins(self):
        timeline = LinkStateTimeline.from_specs(
            [
                {"kind": "onset", "at": 0, "links": [0]},
                {"kind": "clear", "at": 5, "links": [0]},
            ]
        )
        rng = as_generator(0)
        states = np.array([False])
        timeline.apply(states, 4, rng)
        assert states[0]
        timeline.apply(states, 5, rng)
        assert not states[0]

    def test_probabilistic_onset_uses_rng(self):
        timeline = LinkStateTimeline.from_specs(
            [{"kind": "onset", "at": 0, "links": [0], "probability": 0.5}]
        )
        rng = as_generator(3)
        outcomes = set()
        for index in range(40):
            states = np.array([False])
            timeline.apply(states, index, rng)
            outcomes.add(bool(states[0]))
        assert outcomes == {True, False}


class TestSnapshotStream:
    def test_rejects_bad_window_size(self, instance_1a, model_1a):
        with pytest.raises(SimulationError, match="window_size"):
            make_stream(instance_1a, model_1a, window_size=0)

    def test_rejects_timeline_beyond_topology(
        self, instance_1a, model_1a
    ):
        timeline = LinkStateTimeline.from_specs(
            [{"kind": "onset", "at": 0, "links": [99]}]
        )
        with pytest.raises(SimulationError, match="link"):
            make_stream(
                instance_1a, model_1a, window_size=2, timeline=timeline
            )

    def test_window_shapes_and_cursor(self, instance_1a, model_1a):
        stream = make_stream(instance_1a, model_1a, window_size=5)
        first = stream.next_window()
        second = stream.next_window(3)
        assert first.index == 0 and first.start == 0
        assert first.n_snapshots == 5 and first.stop == 5
        assert second.index == 1 and second.start == 5
        assert second.n_snapshots == 3
        assert stream.cursor == 8
        n_links = instance_1a.topology.n_links
        n_paths = instance_1a.topology.n_paths
        assert first.link_states.shape == (5, n_links)
        assert first.loss_rates.shape == (5, n_links)
        assert first.path_loss.shape == (5, n_paths)
        assert first.path_states.shape == (5, n_paths)

    def test_window_size_one_is_exactly_simulate_snapshot(
        self, instance_1a, model_1a
    ):
        """The batch simulator is the single-window special case."""
        prober = PathProber(instance_1a.topology, ProbeConfig())
        stream = SnapshotStream(
            model_1a,
            LossModel(),
            prober,
            window_size=1,
            rng=as_generator(42),
        )
        rng = as_generator(42)
        for _ in range(6):
            window = stream.next_window()
            reference = simulate_snapshot(
                model_1a, LossModel(), prober, rng
            )
            assert np.array_equal(
                window.link_states[0], reference.link_states
            )
            assert np.array_equal(
                window.loss_rates[0], reference.loss_rates
            )
            assert np.array_equal(
                window.path_loss[0], reference.path_loss
            )
            assert np.array_equal(
                window.path_states[0], reference.path_states
            )

    def test_window_partitioning_is_invisible(
        self, instance_1a, model_1a
    ):
        """Consuming the stream in any window sizes yields the same
        snapshot sequence — windows are a view, not a unit of
        randomness."""
        chunks_a = [
            window.path_states
            for window in make_stream(
                instance_1a, model_1a, window_size=4, rng=as_generator(9)
            ).windows(6)
        ]
        stream_b = make_stream(
            instance_1a, model_1a, window_size=1, rng=as_generator(9)
        )
        chunks_b = [
            stream_b.next_window(size).path_states
            for size in (8, 3, 13)
        ]
        assert np.array_equal(
            np.concatenate(chunks_a, axis=0),
            np.concatenate(chunks_b, axis=0),
        )

    def test_timeline_forces_congestion_in_emitted_truth(
        self, instance_1a, model_1a
    ):
        timeline = LinkStateTimeline.from_specs(
            [{"kind": "onset", "at": 6, "links": [2]}]
        )
        stream = make_stream(
            instance_1a, model_1a, window_size=4, timeline=timeline
        )
        first, second, third = stream.windows(3)
        assert first.index == 0  # indexes 0..3: onset not yet active
        assert second.link_states[2:, 2].all()  # indexes 6,7 forced
        assert third.link_states[:, 2].all()

    def test_iteration_protocol(self, instance_1a, model_1a):
        stream = make_stream(instance_1a, model_1a, window_size=2)
        iterator = iter(stream)
        window = next(iterator)
        assert window.index == 0
        assert next(iterator).index == 1
