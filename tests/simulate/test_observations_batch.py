"""Equivalence of the batch estimator kernels with the scalar protocol.

The batch APIs (``log_good_all``, ``log_good_pairs``, packed-row mask
counting) must reproduce the scalar reference semantics bit-for-bit on
arbitrary observation matrices — they are the same estimators, computed
in one shot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import MeasurementError
from repro.simulate.observations import PathObservations

matrices = arrays(
    dtype=bool,
    shape=st.tuples(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=12),
    ),
)


def scalar_smooth(count: int, n: int) -> float:
    if count <= 0:
        return 0.5 / n
    if count >= n:
        return 1.0 - 0.5 / n
    return count / n


def reference_log(probability: float) -> float:
    """log() through the same ufunc the kernels use (``math.log`` can
    differ from ``numpy.log`` in the last ulp)."""
    return float(np.log(np.array([probability], dtype=np.float64))[0])


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_log_good_all_matches_scalar(states):
    observations = PathObservations(states)
    batch = observations.log_good_all()
    n = states.shape[0]
    for path_id in range(states.shape[1]):
        count = int((~states[:, path_id]).sum())
        expected = reference_log(scalar_smooth(count, n))
        assert batch[path_id] == expected


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_pair_batch_matches_scalar_reference(states):
    observations = PathObservations(states)
    n_snapshots, n_paths = states.shape
    pairs = np.array(
        [(a, b) for a in range(n_paths) for b in range(n_paths)],
        dtype=np.int64,
    )
    counts = observations.joint_good_counts(pairs)
    log_values = observations.log_good_pairs(pairs)
    good = ~states
    for (a, b), count, log_value in zip(pairs, counts, log_values):
        expected_count = int(np.sum(good[:, a] & good[:, b]))
        assert count == expected_count
        assert log_value == reference_log(
            scalar_smooth(expected_count, n_snapshots)
        )
        # The scalar protocol is a thin wrapper over the same kernel.
        assert observations.log_good_pair(int(a), int(b)) == log_value


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_gram_and_gather_paths_agree(states):
    """Small queries gather columns; large ones hit the cached Gram —
    both must return identical counts."""
    gathered = PathObservations(states)
    grammed = PathObservations(states)
    grammed.joint_good_gram()  # force the Gram path
    n_paths = states.shape[1]
    pairs = [(a, b) for a in range(n_paths) for b in range(n_paths)][:8]
    pairs = np.asarray(pairs, dtype=np.int64)
    assert np.array_equal(
        gathered.joint_good_counts(pairs), grammed.joint_good_counts(pairs)
    )


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_mask_counts_match_python_reference(states):
    observations = PathObservations(states)
    reference: dict[int, int] = {}
    for row in range(states.shape[0]):
        mask = 0
        for path_id in np.flatnonzero(states[row]):
            mask |= 1 << int(path_id)
        reference[mask] = reference.get(mask, 0) + 1
    assert observations.observed_masks() == reference


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_snapshot_masks_match_python_reference(states):
    observations = PathObservations(states)
    for row in range(states.shape[0]):
        mask = 0
        for path_id in np.flatnonzero(states[row]):
            mask |= 1 << int(path_id)
        assert observations.congested_mask_of_snapshot(row) == mask


def test_wide_matrices_pack_beyond_64_paths():
    """Masks stay exact past machine-word width (packed bytes → int)."""
    rng = np.random.default_rng(7)
    states = rng.random((50, 131)) < 0.3
    observations = PathObservations(states)
    for row in (0, 17, 49):
        expected = 0
        for path_id in np.flatnonzero(states[row]):
            expected |= 1 << int(path_id)
        assert observations.congested_mask_of_snapshot(row) == expected
    assert sum(observations.observed_masks().values()) == 50


class TestPairValidation:
    def test_bad_shape_rejected(self):
        observations = PathObservations(np.zeros((3, 2), dtype=bool))
        with pytest.raises(MeasurementError):
            observations.joint_good_counts(np.zeros(3, dtype=np.int64))

    def test_out_of_range_rejected(self):
        observations = PathObservations(np.zeros((3, 2), dtype=bool))
        with pytest.raises(MeasurementError):
            observations.joint_good_counts([[0, 5]])

    def test_empty_pairs_allowed(self):
        observations = PathObservations(np.zeros((3, 2), dtype=bool))
        counts = observations.joint_good_counts(
            np.empty((0, 2), dtype=np.int64)
        )
        assert counts.shape == (0,)
