"""Unit tests for the bulk experiment driver."""

import numpy as np
import pytest

from repro.simulate.experiment import ExperimentConfig, run_experiment


class TestConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.n_snapshots == 2000
        assert config.link_threshold == 0.01

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_snapshots=0)
        with pytest.raises(ValueError):
            ExperimentConfig(batch_size=0)


class TestRunExperiment:
    def test_shapes(self, instance_1a, model_1a):
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=100),
            seed=0,
        )
        assert run.link_states.shape == (100, 4)
        assert run.observations.path_states.shape == (100, 3)

    def test_deterministic_given_seed(self, instance_1a, model_1a):
        config = ExperimentConfig(n_snapshots=50)
        a = run_experiment(
            instance_1a.topology, model_1a, config=config, seed=9
        )
        b = run_experiment(
            instance_1a.topology, model_1a, config=config, seed=9
        )
        assert np.array_equal(a.link_states, b.link_states)
        assert np.array_equal(
            a.observations.path_states, b.observations.path_states
        )

    def test_batching_does_not_change_results(
        self, instance_1a, model_1a
    ):
        base = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=100, batch_size=512),
            seed=4,
        )
        chunked = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=100, batch_size=7),
            seed=4,
        )
        # Different batching consumes the RNG differently, so equality is
        # statistical, not exact: congestion frequencies must agree.
        assert np.allclose(
            base.link_states.mean(axis=0),
            chunked.link_states.mean(axis=0),
            atol=0.15,
        )

    def test_link_state_frequencies_match_model(
        self, instance_1a, model_1a, truth_1a
    ):
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=20_000),
            seed=5,
        )
        assert np.allclose(
            run.link_states.mean(axis=0), truth_1a, atol=0.02
        )

    def test_exact_probing_separability(self, instance_1a, model_1a):
        """With infinite probes, a path is flagged congested exactly when
        one of its links is congested (Assumption 2 operationalised) —
        up to the loss-rate draw, a congested link may sit barely above
        t_l while the rest sit low, keeping path loss under t_p; that
        direction is rare but possible, so we assert one-way: no false
        positives."""
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(
                n_snapshots=500, packets_per_path=None
            ),
            seed=6,
        )
        topology = instance_1a.topology
        for snapshot in range(500):
            for path in topology.paths:
                any_congested = run.link_states[
                    snapshot, list(path.link_ids)
                ].any()
                flagged = run.observations.path_states[
                    snapshot, path.id
                ]
                if flagged:
                    assert any_congested

    def test_path_congestion_mostly_tracks_links(
        self, instance_1a, model_1a
    ):
        """Two-sided check in aggregate: the fraction of snapshots where
        the verdict disagrees with link states must be small."""
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=2000),
            seed=7,
        )
        topology = instance_1a.topology
        disagreements = 0
        total = 0
        for path in topology.paths:
            any_congested = run.link_states[:, list(path.link_ids)].any(
                axis=1
            )
            flagged = run.observations.path_states[:, path.id]
            disagreements += int((any_congested != flagged).sum())
            total += 2000
        assert disagreements / total < 0.05

    def test_potentially_congested_links(self, instance_1a, model_1a):
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(n_snapshots=1000),
            seed=8,
        )
        assert run.potentially_congested_links == frozenset(range(4))
