"""Unit tests for the exact path-state oracle."""

import math

import pytest

from repro.exceptions import MeasurementError
from repro.simulate.oracle import ExactPathStateDistribution


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(MeasurementError, match="sum to 1"):
            ExactPathStateDistribution({0: 0.4})

    def test_direct_construction(self):
        oracle = ExactPathStateDistribution({0: 0.6, 0b1: 0.4})
        assert oracle.p_congested_mask(0) == 0.6
        assert oracle.p_congested_mask(0b10) == 0.0


class TestFromModel:
    def test_total_probability(self, oracle_1a):
        assert math.isclose(
            sum(oracle_1a.masks.values()), 1.0, abs_tol=1e-9
        )

    def test_all_good_probability(self, oracle_1a):
        """P(ψ(S)=∅) = P(S1=∅)·P(S2=∅)·P(S3=∅) (paper Eq. 3)."""
        assert math.isclose(
            oracle_1a.p_congested_mask(0), 0.7 * 0.7 * 0.85
        )

    def test_single_path_event(self, instance_1a, oracle_1a):
        """P(ψ(S)={P1}) = P(S1={e1}) P(S2=∅) P(S3=∅) (Step 1)."""
        mask = 1 << instance_1a.topology.path("P1").id
        assert math.isclose(
            oracle_1a.p_congested_mask(mask), 0.05 * 0.7 * 0.85
        )

    def test_step2_event(self, instance_1a, oracle_1a):
        """P(ψ(S)={P1,P2}) sums the states {e3} and {e1,e3} (Step 2)."""
        topology = instance_1a.topology
        mask = (1 << topology.path("P1").id) | (
            1 << topology.path("P2").id
        )
        expected = 0.7 * 0.3 * 0.85 + 0.05 * 0.3 * 0.85
        assert math.isclose(oracle_1a.p_congested_mask(mask), expected)


class TestGoodProbabilities:
    def test_p_good_matches_marginal_events(
        self, instance_1a, oracle_1a, model_1a
    ):
        """P(Y=0) = P(all links of the path good)."""
        topology = instance_1a.topology
        path = topology.path("P1")
        # P1 = e3,e1: good iff e1 good and e3 good.
        e1, e3 = topology.link("e1").id, topology.link("e3").id
        p_e1_good = 1.0 - model_1a.link_marginals()[e1]
        # e1 good: states ∅ or {e2} -> 0.7 + 0.05 = 0.75.
        assert math.isclose(p_e1_good, 0.75)
        expected = 0.75 * 0.7
        assert math.isclose(oracle_1a.p_good(path.id), expected)

    def test_pair_good(self, instance_1a, oracle_1a):
        """P(Y2=0, Y3=0) = P(e2 good) P(e3 good) P(e4 good) (Eq. 7)."""
        topology = instance_1a.topology
        p2, p3 = topology.path("P2").id, topology.path("P3").id
        expected = 0.75 * 0.7 * 0.85
        assert math.isclose(oracle_1a.p_good_pair(p2, p3), expected)

    def test_log_values_finite(self, instance_1a, oracle_1a):
        for path in instance_1a.topology.paths:
            assert math.isfinite(oracle_1a.log_good(path.id))

    def test_log_floor_guards_impossible_events(self):
        oracle = ExactPathStateDistribution({0b1: 1.0})
        assert oracle.p_good(0) == 0.0
        assert math.isfinite(oracle.log_good(0))
        assert oracle.log_good(0) < -600
