"""Unit tests for the single-round simulator."""

import numpy as np

from repro.model.loss import LossModel
from repro.simulate.probes import PathProber, ProbeConfig
from repro.simulate.snapshot import simulate_snapshot
from repro.utils.rng import as_generator


class TestSimulateSnapshot:
    def test_result_shapes(self, instance_1a, model_1a):
        prober = PathProber(instance_1a.topology, ProbeConfig())
        result = simulate_snapshot(
            model_1a, LossModel(), prober, as_generator(0)
        )
        assert result.link_states.shape == (4,)
        assert result.loss_rates.shape == (4,)
        assert result.path_loss.shape == (3,)
        assert result.path_states.shape == (3,)

    def test_loss_rates_respect_states(self, instance_1a, model_1a):
        prober = PathProber(instance_1a.topology, ProbeConfig())
        model = LossModel()
        rng = as_generator(1)
        for _ in range(20):
            result = simulate_snapshot(model_1a, model, prober, rng)
            congested = result.loss_rates > model.link_threshold
            assert np.array_equal(congested, result.link_states)

    def test_deterministic_given_rng_state(self, instance_1a, model_1a):
        prober = PathProber(instance_1a.topology, ProbeConfig())
        a = simulate_snapshot(
            model_1a, LossModel(), prober, as_generator(7)
        )
        b = simulate_snapshot(
            model_1a, LossModel(), prober, as_generator(7)
        )
        assert np.array_equal(a.link_states, b.link_states)
        assert np.array_equal(a.path_states, b.path_states)

    def test_good_network_has_good_paths_in_exact_mode(
        self, instance_1a
    ):
        from repro.model import NetworkCongestionModel

        model = NetworkCongestionModel.independent(
            instance_1a.correlation, {k: 0.0 for k in range(4)}
        )
        prober = PathProber(
            instance_1a.topology, ProbeConfig(packets_per_path=None)
        )
        result = simulate_snapshot(
            model, LossModel(), prober, as_generator(3)
        )
        assert not result.link_states.any()
        assert not result.path_states.any()
