"""Unit tests for the probing model."""

import math

import numpy as np
import pytest

from repro.model.loss import path_threshold
from repro.simulate.probes import PathProber, ProbeConfig
from repro.utils.rng import as_generator


class TestProbeConfig:
    def test_defaults(self):
        config = ProbeConfig()
        assert config.packets_per_path == 1000
        assert config.link_threshold == 0.01

    def test_invalid_packets_rejected(self):
        with pytest.raises(ValueError):
            ProbeConfig(packets_per_path=0)

    def test_none_packets_allowed(self):
        assert ProbeConfig(packets_per_path=None).packets_per_path is None


class TestPathProber:
    def test_thresholds_match_path_lengths(self, instance_1a):
        prober = PathProber(instance_1a.topology, ProbeConfig())
        for path in instance_1a.topology.paths:
            assert math.isclose(
                prober.path_thresholds[path.id],
                path_threshold(path.length),
            )

    def test_true_path_loss_composition(self, instance_1a):
        """Path loss = 1 − Π (1 − link loss) over the path's links."""
        topology = instance_1a.topology
        prober = PathProber(topology, ProbeConfig())
        loss = np.array([0.1, 0.2, 0.3, 0.4])
        path_loss = prober.true_path_loss(loss)
        for path in topology.paths:
            expected = 1.0 - math.prod(
                1.0 - loss[k] for k in path.link_ids
            )
            assert math.isclose(
                path_loss[path.id], expected, abs_tol=1e-9
            )

    def test_exact_mode_has_no_noise(self, instance_1a):
        prober = PathProber(
            instance_1a.topology, ProbeConfig(packets_per_path=None)
        )
        loss = np.array([0.5, 0.0, 0.0, 0.0])
        measured_a, congested_a = prober.measure(loss, as_generator(0))
        measured_b, congested_b = prober.measure(loss, as_generator(1))
        assert np.array_equal(measured_a, measured_b)
        assert np.array_equal(congested_a, congested_b)

    def test_congestion_verdict_uses_tp(self, instance_1a):
        topology = instance_1a.topology
        prober = PathProber(topology, ProbeConfig(packets_per_path=None))
        # e3 congested at 50% loss: P1 and P2 (via e3) congested; P3 good.
        loss = np.zeros(topology.n_links)
        loss[topology.link("e3").id] = 0.5
        _, congested = prober.measure(loss, as_generator(0))
        assert congested[topology.path("P1").id]
        assert congested[topology.path("P2").id]
        assert not congested[topology.path("P3").id]

    def test_all_good_links_never_flag_paths_in_exact_mode(
        self, instance_1a
    ):
        """With loss ≤ t_l on every link, path loss ≤ t_p exactly."""
        topology = instance_1a.topology
        prober = PathProber(topology, ProbeConfig(packets_per_path=None))
        loss = np.full(topology.n_links, 0.01)
        _, congested = prober.measure(loss, as_generator(0))
        assert not congested.any()

    def test_binomial_mode_statistics(self, instance_1a):
        topology = instance_1a.topology
        prober = PathProber(
            topology, ProbeConfig(packets_per_path=200)
        )
        loss = np.full(topology.n_links, 0.3)
        rng = as_generator(5)
        measured = np.array(
            [prober.measure(loss, rng)[0] for _ in range(300)]
        )
        true_loss = prober.true_path_loss(loss)
        assert np.allclose(measured.mean(axis=0), true_loss, atol=0.02)
