"""Unit tests for the BRITE-style two-level hierarchy."""

import networkx as nx
import pytest

from repro.exceptions import GenerationError
from repro.topogen.hierarchical import generate_hierarchical


@pytest.fixture(scope="module")
def hierarchy():
    return generate_hierarchical(20, 5, seed=42)


class TestStructure:
    def test_counts(self, hierarchy):
        assert hierarchy.n_ases == 20
        assert hierarchy.n_routers == 100

    def test_router_nodes_tagged_with_as(self, hierarchy):
        for node, data in hierarchy.router_graph.nodes(data=True):
            assert data["as_id"] == node[0]

    def test_router_graph_connected(self, hierarchy):
        assert nx.is_connected(hierarchy.router_graph)

    def test_every_directed_as_link_has_route(self, hierarchy):
        for as_u, as_v in hierarchy.as_graph.edges:
            assert (as_u, as_v) in hierarchy.as_link_routes
            assert (as_v, as_u) in hierarchy.as_link_routes

    def test_routes_are_reversed_pairs(self, hierarchy):
        for as_u, as_v in hierarchy.as_graph.edges:
            forward = hierarchy.as_link_routes[(as_u, as_v)]
            backward = hierarchy.as_link_routes[(as_v, as_u)]
            assert forward == tuple(reversed(backward))

    def test_routes_use_existing_router_edges(self, hierarchy):
        for route in hierarchy.as_link_routes.values():
            for u, v in route:
                assert hierarchy.router_graph.has_edge(u, v)

    def test_intra_as_legs_stay_inside_their_as(self, hierarchy):
        """A route for (u, v) may only touch routers of u and v."""
        for (as_u, as_v), route in hierarchy.as_link_routes.items():
            for edge in route:
                for router in edge:
                    assert router[0] in (as_u, as_v)

    def test_both_directions_of_an_adjacency_share(self, hierarchy):
        """(u→v) and (v→u) traverse the same physical route reversed, so
        they always share every resource."""
        for as_u, as_v in hierarchy.as_graph.edges:
            assert hierarchy.shared_resources(
                (as_u, as_v), (as_v, as_u)
            )

    def test_adjacent_as_links_often_share_resources(self, hierarchy):
        """Hub routing concentrates intra-AS legs: sibling links out of
        one AS share resources a substantial fraction of the time — the
        correlation mechanism of the Brite evaluation."""
        sharing = 0
        total = 0
        for as_u in hierarchy.as_graph.nodes:
            neighbours = list(hierarchy.as_graph.neighbors(as_u))
            for i in range(len(neighbours)):
                for j in range(i + 1, len(neighbours)):
                    total += 1
                    if hierarchy.shared_resources(
                        (as_u, neighbours[i]), (as_u, neighbours[j])
                    ):
                        sharing += 1
        assert total > 0
        assert sharing / total > 0.1

    def test_single_router_per_as(self):
        hierarchy = generate_hierarchical(6, 1, seed=1)
        assert hierarchy.n_routers == 6
        # Each AS link route is just the border edge.
        for route in hierarchy.as_link_routes.values():
            assert len(route) == 1


class TestParameters:
    def test_waxman_as_model(self):
        hierarchy = generate_hierarchical(
            12, 3, as_model="waxman", seed=3
        )
        assert hierarchy.n_ases == 12

    def test_anchor_routing_mode(self):
        hierarchy = generate_hierarchical(
            15, 5, routing="anchor", seed=4
        )
        # Anchor routing keeps the structural contracts: routes exist
        # for both directions and stay inside their endpoint ASes.
        for (as_u, as_v), route in hierarchy.as_link_routes.items():
            assert route
            for edge in route:
                for router in edge:
                    assert router[0] in (as_u, as_v)

    def test_invalid_routing_rejected(self):
        with pytest.raises(GenerationError):
            generate_hierarchical(10, 3, routing="teleport")

    def test_invalid_model_rejected(self):
        with pytest.raises(GenerationError):
            generate_hierarchical(10, 3, as_model="nonsense")

    def test_invalid_router_count_rejected(self):
        with pytest.raises(GenerationError):
            generate_hierarchical(10, 0)

    def test_deterministic_given_seed(self):
        a = generate_hierarchical(15, 4, seed=9)
        b = generate_hierarchical(15, 4, seed=9)
        assert set(a.as_graph.edges) == set(b.as_graph.edges)
        assert a.as_link_routes == b.as_link_routes
