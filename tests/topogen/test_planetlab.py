"""Unit tests for the PlanetLab-style generator."""

import pytest

from repro.exceptions import GenerationError
from repro.topogen.planetlab import (
    contiguous_link_clusters,
    generate_planetlab,
)


class TestInstance:
    def test_dimensions(self, planetlab_small):
        assert planetlab_small.n_paths <= 120
        assert planetlab_small.n_paths > 40
        assert planetlab_small.metadata["generator"] == "planetlab"

    def test_paths_have_multiple_hops(self, planetlab_small):
        for path in planetlab_small.topology.paths:
            assert path.length >= 2

    def test_deterministic_given_seed(self):
        a = generate_planetlab(
            n_routers=80, n_vantages=12, n_paths=40, seed=5
        )
        b = generate_planetlab(
            n_routers=80, n_vantages=12, n_paths=40, seed=5
        )
        assert a.topology == b.topology
        assert a.correlation == b.correlation

    def test_ba_graph_model(self):
        instance = generate_planetlab(
            n_routers=80,
            n_vantages=12,
            n_paths=40,
            graph_model="ba",
            seed=6,
        )
        assert instance.n_paths > 0

    def test_invalid_model_rejected(self):
        with pytest.raises(GenerationError):
            generate_planetlab(graph_model="wrong")

    def test_too_many_vantages_rejected(self):
        with pytest.raises(GenerationError):
            generate_planetlab(n_routers=5, n_vantages=10)

    def test_too_few_vantages_rejected(self):
        with pytest.raises(GenerationError):
            generate_planetlab(n_vantages=1)


class TestClusters:
    def test_clusters_are_contiguous(self, planetlab_small):
        """Every multi-link correlation set must be connected in the
        link-adjacency sense (links sharing an endpoint)."""
        topology = planetlab_small.topology
        for group in planetlab_small.correlation.sets:
            if len(group) == 1:
                continue
            members = sorted(group)
            nodes_of = {
                k: {topology.links[k].src, topology.links[k].dst}
                for k in members
            }
            # BFS over the group's internal adjacency.
            reached = {members[0]}
            frontier = [members[0]]
            while frontier:
                current = frontier.pop()
                for other in members:
                    if other not in reached and (
                        nodes_of[current] & nodes_of[other]
                    ):
                        reached.add(other)
                        frontier.append(other)
            assert reached == set(members)

    def test_cluster_sizes_bounded(self, planetlab_small):
        low, high = planetlab_small.metadata["cluster_size_range"]
        for group in planetlab_small.correlation.sets:
            assert len(group) <= high

    def test_cluster_fraction_leaves_singletons(self):
        instance = generate_planetlab(
            n_routers=80,
            n_vantages=12,
            n_paths=40,
            cluster_fraction=0.3,
            seed=7,
        )
        singletons = sum(
            1 for s in instance.correlation.sets if len(s) == 1
        )
        assert singletons > 0

    def test_invalid_range_rejected(self, planetlab_small):
        with pytest.raises(GenerationError):
            contiguous_link_clusters(
                planetlab_small.topology, cluster_size_range=(3, 2)
            )

    def test_full_clustering(self, planetlab_small):
        correlation = contiguous_link_clusters(
            planetlab_small.topology,
            cluster_size_range=(2, 5),
            cluster_fraction=1.0,
            seed=8,
        )
        assert correlation.topology is planetlab_small.topology
