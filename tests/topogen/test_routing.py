"""Unit tests for routing helpers."""

import networkx as nx
import pytest

from repro.exceptions import GenerationError
from repro.topogen.routing import (
    dedupe_routes,
    sample_ordered_pairs,
    shortest_path_routes,
)


class TestSampleOrderedPairs:
    def test_no_self_pairs(self):
        pairs = sample_ordered_pairs(range(10), 50, seed=0)
        assert all(src != dst for src, dst in pairs)

    def test_no_duplicates(self):
        pairs = sample_ordered_pairs(range(10), 90, seed=1)
        assert len(set(pairs)) == 90

    def test_capacity_enforced(self):
        with pytest.raises(GenerationError):
            sample_ordered_pairs(range(3), 7, seed=0)

    def test_full_capacity(self):
        pairs = sample_ordered_pairs(range(3), 6, seed=2)
        assert set(pairs) == {
            (a, b) for a in range(3) for b in range(3) if a != b
        }

    def test_deterministic(self):
        assert sample_ordered_pairs(
            range(8), 10, seed=5
        ) == sample_ordered_pairs(range(8), 10, seed=5)


class TestShortestPathRoutes:
    @pytest.fixture()
    def graph(self):
        graph = nx.path_graph(5)  # 0-1-2-3-4
        graph.add_node(99)  # isolated
        return graph

    def test_routes_follow_graph(self, graph):
        routes = shortest_path_routes(graph, [(0, 3)])
        assert routes == [[0, 1, 2, 3]]

    def test_unreachable_skipped(self, graph):
        routes = shortest_path_routes(graph, [(0, 99), (0, 2)])
        assert routes == [[0, 1, 2]]

    def test_unreachable_raises_when_strict(self, graph):
        with pytest.raises(GenerationError):
            shortest_path_routes(
                graph, [(0, 99)], skip_unreachable=False
            )

    def test_min_hops_filter(self, graph):
        routes = shortest_path_routes(graph, [(0, 1), (0, 3)], min_hops=2)
        assert routes == [[0, 1, 2, 3]]


class TestDedupeRoutes:
    def test_duplicates_removed(self):
        routes = dedupe_routes([[0, 1], [0, 1], [1, 0]])
        assert routes == [[0, 1], [1, 0]]

    def test_order_preserved(self):
        routes = dedupe_routes([[2, 3], [0, 1], [2, 3]])
        assert routes == [[2, 3], [0, 1]]
