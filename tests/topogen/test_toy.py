"""Unit tests for the paper's toy topologies (Figures 1 and 2)."""

import math

import numpy as np

from repro.core.identifiability import check_assumption4
from repro.topogen.toy import (
    fig_1a,
    fig_1b,
    fig_2a_lan,
    fig_2b_mpls_domain,
)


class TestFig1a:
    def test_dimensions(self):
        instance = fig_1a()
        assert instance.n_links == 4
        assert instance.n_paths == 3
        assert instance.correlation.n_sets == 3

    def test_section31_coverage_table(self):
        """The full ψ(A) table for C̃ printed in Section 3.1."""
        instance = fig_1a()
        topology = instance.topology
        table = {
            frozenset({"e1"}): {"P1"},
            frozenset({"e2"}): {"P2", "P3"},
            frozenset({"e1", "e2"}): {"P1", "P2", "P3"},
            frozenset({"e3"}): {"P1", "P2"},
            frozenset({"e4"}): {"P3"},
        }
        for subset in instance.correlation.iter_subsets():
            names = frozenset(topology.links[k].name for k in subset)
            covered = {
                p.name for p in topology.covered_paths(subset)
            }
            assert covered == table[names]

    def test_assumption4_holds(self):
        instance = fig_1a()
        assert check_assumption4(instance.correlation).holds
        assert instance.metadata["assumption4"]


class TestFig1b:
    def test_dimensions(self):
        instance = fig_1b()
        assert instance.n_links == 3
        assert instance.n_paths == 2

    def test_section31_collision_table(self):
        """{e1,e2} and {e3} cover exactly {P1, P2}."""
        instance = fig_1b()
        topology = instance.topology
        e1e2 = topology.link_ids(["e1", "e2"])
        e3 = topology.link_ids(["e3"])
        assert topology.coverage_of(e1e2) == topology.coverage_of(e3)

    def test_assumption4_fails(self):
        instance = fig_1b()
        assert not check_assumption4(instance.correlation).holds
        assert not instance.metadata["assumption4"]

    def test_adding_v5_and_p3_gives_fig1a(self):
        """The paper: Fig 1(b) + node v5 + path P3 = Fig 1(a)."""
        a, b = fig_1a(), fig_1b()
        names_a = {link.name for link in a.topology.links}
        names_b = {link.name for link in b.topology.links}
        assert names_a - names_b == {"e4"}
        assert {p.name for p in a.topology.paths} - {
            p.name for p in b.topology.paths
        } == {"P3"}


class TestFig2Scenarios:
    def test_lan_structure(self):
        scenario = fig_2a_lan()
        instance = scenario.instance
        assert instance.n_paths == 16
        # The LAN forms one 4-link correlation set; access links alone.
        sizes = sorted(len(s) for s in instance.correlation.sets)
        assert sizes == [1] * 8 + [4]

    def test_fig2_instances_are_identifiable(self):
        from repro.core import check_assumption4

        assert check_assumption4(
            fig_2a_lan().instance.correlation
        ).holds
        assert check_assumption4(
            fig_2b_mpls_domain().instance.correlation
        ).holds

    def test_lan_sharing_induces_correlation(self):
        scenario = fig_2a_lan()
        model = scenario.make_model(
            {segment: 0.1 for segment in _all_segments(scenario)}
        )
        topology = scenario.instance.topology
        a = topology.link("r1->r3").id
        b = topology.link("r1->r4").id
        joint = model.joint(frozenset({a, b}))
        assert joint > model.marginal(a) * model.marginal(b)

    def test_mpls_trunk_correlates_whole_domain(self):
        scenario = fig_2b_mpls_domain()
        model = scenario.make_model(
            {segment: 0.1 for segment in _all_segments(scenario)}
        )
        topology = scenario.instance.topology
        links = [
            topology.link(name).id
            for name in ("b1->b3", "b1->b4", "b2->b3", "b2->b4")
        ]
        # The shared trunk makes *all four* congest together often.
        joint = model.joint(frozenset(links))
        product = math.prod(model.marginal(k) for k in links)
        assert joint > 5 * product

    def test_inference_recovers_lan_marginals(self):
        """End-to-end: the correlation algorithm on the Fig-2(a) LAN."""
        from repro.core import infer_congestion
        from repro.model import NetworkCongestionModel
        from repro.simulate import ExactPathStateDistribution

        scenario = fig_2a_lan()
        instance = scenario.instance
        topology = instance.topology
        probabilities = {
            segment: 0.08 for segment in _all_segments(scenario)
        }
        # Build per-correlation-set models from the resource map.
        from repro.model import SharedResourceModel

        models = []
        for group in instance.correlation.sets:
            resources = {
                r
                for link_id in group
                for r in scenario.resource_map[link_id]
            }
            models.append(
                SharedResourceModel(
                    {k: scenario.resource_map[k] for k in group},
                    {r: probabilities[r] for r in resources},
                )
            )
        model = NetworkCongestionModel(instance.correlation, models)
        oracle = ExactPathStateDistribution.from_model(topology, model)
        result = infer_congestion(
            topology, instance.correlation, oracle
        )
        truth = model.link_marginals()
        errors = np.abs(result.congestion_probabilities - truth)
        # The bipartite LAN instance is fully identifiable: exact
        # recovery from noise-free measurements.
        assert errors.max() < 1e-6


def _all_segments(scenario):
    return {
        segment
        for resources in scenario.resource_map.values()
        for segment in resources
    }
