"""Unit tests for the Brite evaluation scenario."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.topogen.brite import generate_brite


class TestInstanceStructure:
    def test_dimensions(self, brite_small):
        instance = brite_small.instance
        assert instance.n_paths <= 120
        assert instance.n_paths > 50
        assert instance.n_links > 0
        assert instance.metadata["generator"] == "brite"

    def test_every_link_has_resources(self, brite_small):
        for link in brite_small.instance.topology.links:
            assert brite_small.resource_map[link.id]

    def test_resource_map_matches_hierarchy(self, brite_small):
        topology = brite_small.instance.topology
        for link in topology.links:
            expected = frozenset(
                brite_small.hierarchy.as_link_routes[(link.src, link.dst)]
            )
            assert brite_small.resource_map[link.id] == expected

    def test_paths_are_as_level_walks(self, brite_small):
        topology = brite_small.instance.topology
        for path in topology.paths:
            for link_id in path.link_ids:
                link = topology.links[link_id]
                assert brite_small.hierarchy.as_graph.has_edge(
                    link.src, link.dst
                )

    def test_deterministic_given_seed(self):
        a = generate_brite(n_ases=20, routers_per_as=4, n_paths=40, seed=3)
        b = generate_brite(n_ases=20, routers_per_as=4, n_paths=40, seed=3)
        assert a.instance.topology == b.instance.topology
        assert a.instance.correlation == b.instance.correlation


class TestCorrelationModes:
    def test_cluster_mode_bounded_sets(self, brite_small):
        sizes = [len(s) for s in brite_small.instance.correlation.sets]
        assert max(sizes) <= 6

    def test_sharing_mode_links_share_resources_within_set(self):
        scenario = generate_brite(
            n_ases=20,
            routers_per_as=4,
            n_paths=40,
            correlation_mode="sharing",
            seed=4,
        )
        correlation = scenario.instance.correlation
        # Links in different sets must share no resources.
        for link_id in range(scenario.instance.n_links):
            for other in range(link_id + 1, scenario.instance.n_links):
                if correlation.same_set(link_id, other):
                    continue
                shared = (
                    scenario.resource_map[link_id]
                    & scenario.resource_map[other]
                )
                assert not shared

    def test_domain_mode_sets_are_node_incident(self):
        scenario = generate_brite(
            n_ases=20,
            routers_per_as=4,
            n_paths=40,
            correlation_mode="domain",
            seed=5,
        )
        topology = scenario.instance.topology
        for group in scenario.instance.correlation.sets:
            touched = [
                {topology.links[k].src, topology.links[k].dst}
                for k in group
            ]
            common = set.intersection(*touched)
            assert common  # all links of a set share an endpoint AS

    def test_invalid_mode_rejected(self):
        with pytest.raises(GenerationError):
            generate_brite(correlation_mode="nope")


class TestOrganicModel:
    def test_marginals_inherit_from_resources(self, brite_small):
        model = brite_small.make_organic_model(
            congested_resource_fraction=0.15, seed=6
        )
        truth = model.link_marginals()
        assert truth.shape == (brite_small.instance.n_links,)
        assert truth.max() > 0.0
        assert np.all(truth <= 1.0)

    def test_zero_fraction_means_all_good(self, brite_small):
        model = brite_small.make_organic_model(
            congested_resource_fraction=0.0, seed=7
        )
        assert np.all(model.link_marginals() == 0.0)

    def test_sampling_respects_marginals(self, brite_small):
        model = brite_small.make_organic_model(
            congested_resource_fraction=0.2, seed=8
        )
        from repro.utils.rng import as_generator

        states = model.sample_states(as_generator(9), 4000)
        assert np.allclose(
            states.mean(axis=0), model.link_marginals(), atol=0.05
        )
