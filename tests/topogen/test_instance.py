"""Unit tests for the TomographyInstance container."""

from repro.topogen.instance import TomographyInstance


class TestTomographyInstance:
    def test_counts_delegate_to_topology(self, instance_1a):
        assert instance_1a.n_links == instance_1a.topology.n_links
        assert instance_1a.n_paths == instance_1a.topology.n_paths

    def test_metadata_defaults_empty(self, instance_1a):
        bare = TomographyInstance(
            topology=instance_1a.topology,
            correlation=instance_1a.correlation,
        )
        assert bare.metadata == {}

    def test_frozen(self, instance_1a):
        import pytest

        with pytest.raises(AttributeError):
            instance_1a.topology = None
