"""Unit tests for the Waxman and Barabási–Albert generators."""

import networkx as nx
import pytest

from repro.exceptions import GenerationError
from repro.topogen.barabasi_albert import barabasi_albert_graph
from repro.topogen.waxman import waxman_graph


class TestWaxman:
    def test_node_count_and_positions(self):
        graph = waxman_graph(30, seed=0)
        assert graph.number_of_nodes() == 30
        for _, data in graph.nodes(data=True):
            x, y = data["pos"]
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_connected_by_default(self):
        for seed in range(5):
            graph = waxman_graph(40, alpha=0.05, beta=0.1, seed=seed)
            assert nx.is_connected(graph)

    def test_unconnected_when_repair_disabled(self):
        # With tiny alpha the raw graph is almost surely disconnected.
        graph = waxman_graph(
            60, alpha=0.01, beta=0.05, seed=1, connect=False
        )
        assert not nx.is_connected(graph)

    def test_alpha_increases_density(self):
        sparse = waxman_graph(50, alpha=0.1, beta=0.3, seed=2)
        dense = waxman_graph(50, alpha=0.9, beta=0.3, seed=2)
        assert dense.number_of_edges() > sparse.number_of_edges()

    def test_deterministic_given_seed(self):
        a = waxman_graph(25, seed=7)
        b = waxman_graph(25, seed=7)
        assert set(a.edges) == set(b.edges)

    def test_parameter_validation(self):
        with pytest.raises(GenerationError):
            waxman_graph(1)
        with pytest.raises(GenerationError):
            waxman_graph(10, alpha=0.0)
        with pytest.raises(GenerationError):
            waxman_graph(10, beta=1.5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        graph = barabasi_albert_graph(50, 2, seed=0)
        assert graph.number_of_nodes() == 50
        # Seed path has m edges; each subsequent node adds exactly m.
        assert graph.number_of_edges() == 2 + (50 - 3) * 2

    def test_connected(self):
        for seed in range(5):
            assert nx.is_connected(
                barabasi_albert_graph(60, 2, seed=seed)
            )

    def test_heavy_tail(self):
        """Preferential attachment produces hubs: the max degree should
        far exceed the mean degree."""
        graph = barabasi_albert_graph(300, 2, seed=3)
        degrees = [d for _, d in graph.degree]
        assert max(degrees) > 5 * (sum(degrees) / len(degrees))

    def test_deterministic_given_seed(self):
        a = barabasi_albert_graph(40, 2, seed=11)
        b = barabasi_albert_graph(40, 2, seed=11)
        assert set(a.edges) == set(b.edges)

    def test_parameter_validation(self):
        with pytest.raises(GenerationError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(GenerationError):
            barabasi_albert_graph(2, 2)
