"""Service integration: HTTP endpoints and service == batch bit-identity.

The service runs in-process on a dedicated event-loop thread; the
blocking :class:`ServiceClient` talks to it over a real loopback socket,
so the whole HTTP/JSON/batching path is exercised.  The final test goes
through the actual ``repro-tomography serve`` / ``localize`` CLI
entry points in subprocesses.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.queries import decode_vectors, run_query
from repro.serve.registry import instance_from_payload
from repro.serve.server import TomographyService

GENERATOR = {
    "kind": "brite",
    "n_ases": 12,
    "routers_per_as": 3,
    "n_paths": 30,
    "seed": 7,
}
OTHER_GENERATOR = dict(GENERATOR, seed=8)
QUERY = {
    "kind": "localization",
    "seed": 3,
    "n_snapshots": 30,
    "packets_per_path": 200,
    "loc_snapshots": 2,
}


class ServiceHarness:
    """A TomographyService on its own event-loop thread."""

    def __init__(self, **knobs) -> None:
        self.service = TomographyService(port=0, **knobs)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "ServiceHarness":
        self.thread.start()
        assert self._started.wait(timeout=30), "service failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(port=self.service.port, **kwargs)


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness(flush_interval=0.01) as running:
        yield running


@pytest.fixture(scope="module")
def client(harness):
    with harness.client() as connected:
        yield connected


@pytest.fixture(scope="module")
def fingerprint(client):
    return client.load_topology(generator=GENERATOR, name="itest")


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"

    def test_load_is_idempotent(self, client, fingerprint):
        assert client.load_topology(generator=GENERATOR) == fingerprint
        listed = client.topologies()
        assert [t["fingerprint"] for t in listed].count(fingerprint) == 1
        entry = next(
            t for t in listed if t["fingerprint"] == fingerprint
        )
        assert entry["name"] == "itest"
        assert entry["n_paths"] == GENERATOR["n_paths"]

    def test_stats_reports_warm_prep(self, client, fingerprint):
        stats = client.stats()
        assert stats["prep_registry"]["size"] >= 1
        assert fingerprint in stats["batchers"]

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({}, "exactly one"),
            ({"generator": {"kind": "nope"}}, "kind"),
            (
                {"generator": dict(GENERATOR, bogus=1)},
                "unknown brite generator",
            ),
        ],
    )
    def test_bad_load_payloads_are_400(self, client, payload, match):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/topologies", payload)
        assert excinfo.value.status == 400
        assert match in str(excinfo.value)

    def test_unknown_topology_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("no-such-fingerprint", QUERY)
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/nonsense")
        assert excinfo.value.status == 404

    def test_bad_method_is_405(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("PUT", "/topologies")
        assert excinfo.value.status == 405

    def test_bad_query_is_400(self, client, fingerprint):
        with pytest.raises(ServiceError) as excinfo:
            client.query(fingerprint, {"bogus_param": 1})
        assert excinfo.value.status == 400

    def test_malformed_json_is_400(self, client):
        connection = client._connect()
        connection.request(
            "POST",
            "/topologies",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = response.read()
        assert response.status == 400
        assert b"invalid JSON" in body


class TestQueries:
    def test_service_matches_batch_bit_for_bit(self, client, fingerprint):
        """The tentpole guarantee: same query, same seeds, same bits."""
        instance = instance_from_payload({"generator": GENERATOR})
        reference = run_query(instance, QUERY)
        served = client.query(fingerprint, QUERY)
        assert set(served) == set(reference)
        for name in reference:
            assert np.array_equal(served[name], reference[name]), name
            assert served[name].tobytes() == reference[name].tobytes()

    def test_concurrent_mixed_queries_coalesce_and_stay_exact(
        self, harness, fingerprint
    ):
        instance = instance_from_payload({"generator": GENERATOR})
        seeds = [3, 3, 5, 9]
        references = {
            seed: run_query(instance, dict(QUERY, seed=seed))
            for seed in set(seeds)
        }
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def one(index: int, seed: int) -> None:
            try:
                with harness.client() as own:
                    results[index] = own.query(
                        fingerprint, dict(QUERY, seed=seed)
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=one, args=(index, seed))
            for index, seed in enumerate(seeds)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == len(seeds)
        for index, seed in enumerate(seeds):
            for name, vector in references[seed].items():
                assert np.array_equal(results[index][name], vector), (
                    seed,
                    name,
                )

    def test_identifiability_endpoint(self, client, fingerprint):
        instance = instance_from_payload({"generator": GENERATOR})
        reference = run_query(instance, {"kind": "identifiability"})
        served = client.identifiability(fingerprint)
        for name in reference:
            assert np.array_equal(served[name], reference[name]), name

    def test_sugar_endpoints_fix_the_kind(self, client, fingerprint):
        served = client.localize(fingerprint, **{
            key: value for key, value in QUERY.items() if key != "kind"
        })
        assert "loc_precision" in served
        # kind in the body of a sugar endpoint is overridden, not an error
        response = client.request(
            "POST",
            f"/topologies/{fingerprint}/identifiability",
            {"kind": "localization"},
        )
        assert "holds" in response["result"]


class TestStoreLifecycle:
    def test_store_full_409_then_evict_frees_a_slot(self):
        with ServiceHarness(
            max_topologies=1, flush_interval=0
        ) as harness:
            with harness.client() as client:
                first = client.load_topology(generator=GENERATOR)
                with pytest.raises(ServiceError) as excinfo:
                    client.load_topology(generator=OTHER_GENERATOR)
                assert excinfo.value.status == 409
                client.evict(first)
                assert client.topologies() == []
                second = client.load_topology(generator=OTHER_GENERATOR)
                assert second != first
                with pytest.raises(ServiceError) as excinfo:
                    client.evict(first)
                assert excinfo.value.status == 404

    def test_shutdown_fails_queries_not_connections(self):
        harness = ServiceHarness(flush_interval=0)
        with harness:
            with harness.client() as client:
                fingerprint = client.load_topology(generator=GENERATOR)
                assert client.health()["status"] == "ok"
        # After shutdown the socket is gone entirely.
        with pytest.raises(OSError):
            with harness.client(timeout=5) as client:
                client.health()


@pytest.mark.timeout(300)
def test_cli_round_trip_matches_localize_command(tmp_path):
    """serve + client == localize CLI, through the real entry points."""
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"}
    cli = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "localize",
            "--generator",
            json.dumps(GENERATOR),
            "--seed",
            str(QUERY["seed"]),
            "--n-snapshots",
            str(QUERY["n_snapshots"]),
            "--packets-per-path",
            str(QUERY["packets_per_path"]),
            "--loc-snapshots",
            str(QUERY["loc_snapshots"]),
            "--no-cache",
        ],
        capture_output=True,
        text=True,
        cwd="/root/repo",
        env=env,
    )
    assert cli.returncode == 0, cli.stderr[-2000:]
    reference = decode_vectors(json.loads(cli.stdout)["result"])

    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--no-cache",
        ],
        stdout=subprocess.PIPE,
        text=True,
        cwd="/root/repo",
        env=env,
    )
    try:
        banner = process.stdout.readline().strip()
        assert banner.startswith("serving on "), banner
        port = int(banner.rsplit(":", 1)[1])
        with ServiceClient(port=port, timeout=120) as client:
            fingerprint = client.load_topology(generator=GENERATOR)
            served = client.query(fingerprint, QUERY)
        for name in reference:
            assert served[name].tobytes() == reference[name].tobytes(), name
    finally:
        process.terminate()
        process.wait(timeout=30)
    assert process.returncode == 0
