"""QueryBatcher units: coalescing, flush-on-timeout, shed-on-full, close.

``run_batch`` is injected, so these observe batching behaviour directly
without standing up the engine.  Each test runs a fresh event loop via
``asyncio.run`` — the batcher binds to the running loop lazily on first
submit.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.batching import BatcherClosed, BatcherFull, QueryBatcher


def _echo_batch(payloads):
    return [payload * 2 for payload in payloads]


class TestCoalescing:
    def test_concurrent_submissions_coalesce(self):
        sizes = []

        def run_batch(payloads):
            sizes.append(len(payloads))
            return _echo_batch(payloads)

        async def scenario():
            batcher = QueryBatcher(
                run_batch, batch_max=4, flush_interval=0.05
            )
            results = await asyncio.gather(
                *(batcher.submit(n) for n in range(8))
            )
            await batcher.close()
            return results

        results = asyncio.run(scenario())
        assert results == [n * 2 for n in range(8)]
        # 8 concurrent jobs, batch_max 4: at least one full batch, never
        # more than 8 batches, and every job accounted for exactly once.
        assert sum(sizes) == 8
        assert max(sizes) <= 4
        assert len(sizes) < 8

    def test_batch_max_one_disables_coalescing(self):
        sizes = []

        def run_batch(payloads):
            sizes.append(len(payloads))
            return _echo_batch(payloads)

        async def scenario():
            batcher = QueryBatcher(
                run_batch, batch_max=1, flush_interval=0.01
            )
            results = await asyncio.gather(
                *(batcher.submit(n) for n in range(4))
            )
            await batcher.close()
            return results

        assert asyncio.run(scenario()) == [0, 2, 4, 6]
        assert sizes == [1, 1, 1, 1]

    def test_results_map_back_in_order(self):
        async def scenario():
            batcher = QueryBatcher(
                _echo_batch, batch_max=8, flush_interval=0.02
            )
            results = await asyncio.gather(
                *(batcher.submit(n) for n in (5, 1, 9, 3))
            )
            await batcher.close()
            return results

        assert asyncio.run(scenario()) == [10, 2, 18, 6]

    def test_stats_track_batches(self):
        async def scenario():
            batcher = QueryBatcher(
                _echo_batch, batch_max=4, flush_interval=0.05
            )
            await asyncio.gather(*(batcher.submit(n) for n in range(6)))
            stats = dict(batcher.stats)
            await batcher.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats["queries"] == 6
        assert 2 <= stats["batches"] <= 6
        assert stats["max_batch"] <= 4
        assert stats["shed"] == 0


class TestFlushOnTimeout:
    def test_single_job_flushes_without_filling_batch(self):
        async def scenario():
            batcher = QueryBatcher(
                _echo_batch, batch_max=64, flush_interval=0.02
            )
            loop = asyncio.get_running_loop()
            start = loop.time()
            result = await batcher.submit(21)
            elapsed = loop.time() - start
            await batcher.close()
            return result, elapsed

        result, elapsed = asyncio.run(scenario())
        assert result == 42
        # Must not wait for a full batch that never comes; one flush
        # interval (plus scheduling slack) is the ceiling.
        assert elapsed < 1.0

    def test_zero_flush_interval_dispatches_immediately(self):
        async def scenario():
            batcher = QueryBatcher(
                _echo_batch, batch_max=64, flush_interval=0
            )
            return await batcher.submit(3)

        assert asyncio.run(scenario()) == 6


class TestShedOnFull:
    def test_submissions_beyond_max_pending_shed(self):
        release = threading.Event()

        def slow_batch(payloads):
            release.wait(timeout=30)
            return _echo_batch(payloads)

        async def scenario():
            batcher = QueryBatcher(
                slow_batch, batch_max=1, flush_interval=0, max_pending=2
            )
            first = asyncio.ensure_future(batcher.submit(0))
            # Let the dispatcher take job 0 into the (blocked) batch.
            await asyncio.sleep(0.05)
            backlog = [
                asyncio.ensure_future(batcher.submit(n)) for n in (1, 2)
            ]
            await asyncio.sleep(0.05)
            with pytest.raises(BatcherFull):
                await batcher.submit(3)
            assert batcher.stats["shed"] == 1
            release.set()
            results = await asyncio.gather(first, *backlog)
            await batcher.close()
            return results

        assert asyncio.run(scenario()) == [0, 2, 4]


class TestCloseAndFailure:
    def test_submit_after_close_raises(self):
        async def scenario():
            batcher = QueryBatcher(_echo_batch)
            await batcher.close()
            with pytest.raises(BatcherClosed):
                await batcher.submit(1)

        asyncio.run(scenario())

    def test_close_fails_queued_and_inflight_jobs(self):
        entered = threading.Event()
        release = threading.Event()

        def slow_batch(payloads):
            entered.set()
            release.wait(timeout=30)
            return _echo_batch(payloads)

        async def scenario():
            batcher = QueryBatcher(
                slow_batch, batch_max=1, flush_interval=0, max_pending=4
            )
            inflight = asyncio.ensure_future(batcher.submit(0))
            await asyncio.get_running_loop().run_in_executor(
                None, entered.wait, 5
            )
            queued = asyncio.ensure_future(batcher.submit(1))
            await asyncio.sleep(0.02)
            await batcher.close()
            release.set()
            for future in (inflight, queued):
                with pytest.raises(BatcherClosed):
                    await future

        asyncio.run(scenario())

    def test_batch_exception_fails_only_that_batch(self):
        calls = []

        def flaky_batch(payloads):
            calls.append(list(payloads))
            if len(calls) == 1:
                raise RuntimeError("boom")
            return _echo_batch(payloads)

        async def scenario():
            batcher = QueryBatcher(
                flaky_batch, batch_max=8, flush_interval=0.02
            )
            with pytest.raises(RuntimeError, match="boom"):
                await batcher.submit(1)
            result = await batcher.submit(2)
            stats = dict(batcher.stats)
            await batcher.close()
            return result, stats

        result, stats = asyncio.run(scenario())
        assert result == 4
        assert stats["failed"] == 1

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            QueryBatcher(_echo_batch, batch_max=0)
        with pytest.raises(ValueError):
            QueryBatcher(_echo_batch, max_pending=0)
        with pytest.raises(ValueError):
            QueryBatcher(_echo_batch, flush_interval=-1)
