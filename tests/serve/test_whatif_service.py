"""The ``/whatif`` endpoint: service == batch bit-identity, validation.

Pytest test dirs are not packages, so the small event-loop-thread
harness is redefined here rather than imported from test_service.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.queries import decode_vectors, run_query
from repro.serve.registry import instance_from_payload
from repro.serve.server import TomographyService

GENERATOR = {
    "kind": "brite",
    "n_ases": 12,
    "routers_per_as": 3,
    "n_paths": 30,
    "seed": 7,
}
DEMAND = {
    "flows": [
        {"name": "f0", "rate": 6.0, "paths": [0, 1]},
        {"name": "f1", "rate": 5.0, "paths": [1, 2]},
        {"name": "f2", "rate": 4.0, "paths": [0, 2]},
    ],
    "capacities": {"default": 10.0},
    "shifts": [{"name": "surge", "scale": 1.6}],
}
PARAMS = {"seed": 3, "n_snapshots": 30, "packets_per_path": 200}


class ServiceHarness:
    """A TomographyService on its own event-loop thread."""

    def __init__(self, **knobs) -> None:
        self.service = TomographyService(port=0, **knobs)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "ServiceHarness":
        self.thread.start()
        assert self._started.wait(timeout=30), "service failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(port=self.service.port, **kwargs)


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness(flush_interval=0.01) as running:
        yield running


@pytest.fixture(scope="module")
def client(harness):
    with harness.client() as connected:
        yield connected


@pytest.fixture(scope="module")
def fingerprint(client):
    return client.load_topology(generator=GENERATOR)


class TestWhatIfEndpoint:
    def test_service_matches_batch_bit_for_bit(self, client, fingerprint):
        served = client.whatif(fingerprint, DEMAND, **PARAMS)
        batch = run_query(
            instance_from_payload({"generator": GENERATOR}),
            dict(PARAMS, kind="whatif", demand=DEMAND),
        )
        assert sorted(served) == sorted(batch)
        for key, vector in batch.items():
            assert np.array_equal(vector, served[key]), key

    def test_sugar_route_matches_generic_query(self, client, fingerprint):
        via_query = client.whatif(fingerprint, DEMAND, **PARAMS)
        response = client.request(
            "POST",
            f"/topologies/{fingerprint}/whatif",
            dict(PARAMS, demand=DEMAND),
        )
        via_sugar = decode_vectors(response["result"])
        assert sorted(via_query) == sorted(via_sugar)
        for key, vector in via_query.items():
            assert np.array_equal(vector, via_sugar[key]), key

    def test_repeat_queries_are_deterministic(self, client, fingerprint):
        first = client.whatif(fingerprint, DEMAND, **PARAMS)
        second = client.whatif(fingerprint, DEMAND, **PARAMS)
        for key, vector in first.items():
            assert np.array_equal(vector, second[key]), key

    @pytest.mark.parametrize(
        "query, match",
        [
            (dict(PARAMS, kind="whatif"), "demand"),
            (
                dict(PARAMS, kind="whatif", demand=DEMAND, bogus=1),
                "bogus",
            ),
            (
                dict(
                    PARAMS,
                    kind="whatif",
                    demand={"flows": [{"name": "f", "rate": -1, "paths": [0]}]},
                ),
                "rate",
            ),
            (
                dict(PARAMS, kind="whatif", demand=DEMAND, shifts=[]),
                "shifts",
            ),
        ],
    )
    def test_malformed_queries_are_bad_requests(
        self, client, fingerprint, query, match
    ):
        with pytest.raises(ServiceError) as excinfo:
            client.query(fingerprint, query)
        assert excinfo.value.status == 400
        assert match in str(excinfo.value)

    def test_unresolvable_demand_rejected_at_the_door(
        self, client, fingerprint
    ):
        demand = {"flows": [{"name": "f", "rate": 1.0, "paths": [9_999]}]}
        with pytest.raises(ServiceError) as excinfo:
            client.whatif(fingerprint, demand, **PARAMS)
        assert excinfo.value.status == 400
        assert "flow 'f'" in str(excinfo.value)
