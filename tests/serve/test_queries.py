"""Query normalisation, codec round-trips, and runner determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.scenario import HIGH_CORRELATION_RANGE, LOOSE_CORRELATION_RANGE
from repro.eval.cache import trial_key
from repro.serve.queries import (
    decode_vectors,
    encode_vectors,
    normalize_query,
    query_tasks,
    run_query,
)


class TestNormalizeQuery:
    def test_defaults(self):
        runner, kwargs, seed = normalize_query({})
        assert runner.endswith(":run_localization_task")
        assert seed == 0
        assert kwargs["n_snapshots"] == 120
        assert kwargs["per_set_range"] == HIGH_CORRELATION_RANGE

    def test_overrides_and_seed(self):
        runner, kwargs, seed = normalize_query(
            {
                "kind": "localization",
                "seed": 7,
                "n_snapshots": 40,
                "per_set_range": "loose",
                "packets_per_path": None,
            }
        )
        assert seed == 7
        assert kwargs["n_snapshots"] == 40
        assert kwargs["per_set_range"] == LOOSE_CORRELATION_RANGE
        assert kwargs["packets_per_path"] is None

    def test_per_set_range_accepts_explicit_pair(self):
        _, kwargs, _ = normalize_query({"per_set_range": [2, 5]})
        assert kwargs["per_set_range"] == (2, 5)

    def test_identifiability_kind(self):
        runner, kwargs, _ = normalize_query(
            {"kind": "identifiability", "max_subset_size": 3}
        )
        assert runner.endswith(":run_identifiability_task")
        assert kwargs == {"max_subset_size": 3}

    @pytest.mark.parametrize(
        "query, match",
        [
            ({"kind": "nonsense"}, "unknown query kind"),
            ({"bogus": 1}, "unknown localization query parameter"),
            ({"kind": "identifiability", "n_snapshots": 5}, "unknown"),
            ({"seed": "abc"}, "seed must be an integer"),
            ([], "must be an object"),
        ],
    )
    def test_rejections(self, query, match):
        with pytest.raises(ValueError, match=match):
            normalize_query(query)

    def test_does_not_mutate_input(self):
        query = {"kind": "localization", "seed": 3}
        normalize_query(query)
        assert query == {"kind": "localization", "seed": 3}


class TestQueryTasks:
    @staticmethod
    def _key(task) -> str:
        return trial_key("fp", task)

    def test_same_query_same_tasks(self):
        query = {"seed": 11, "n_snapshots": 50}
        first = query_tasks(query)
        second = query_tasks(query)
        assert len(first) == len(second) == 1
        assert self._key(first[0]) == self._key(second[0])

    def test_different_seed_different_tasks(self):
        one = query_tasks({"seed": 1})[0]
        two = query_tasks({"seed": 2})[0]
        assert self._key(one) != self._key(two)

    def test_group_does_not_change_cache_key(self):
        """Coalescing position must never change a query's answer."""
        alone = query_tasks({"seed": 4}, group=0)[0]
        batched = query_tasks({"seed": 4}, group=7)[0]
        assert self._key(alone) == self._key(batched)


class TestVectorCodec:
    def test_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(0)
        vectors = {
            "uniform": rng.random(64),
            "awkward": np.array(
                [0.1, 1 / 3, np.pi, 1e-308, 1e308, -0.0, 7.0]
            ),
            "empty": np.array([], dtype=np.float64),
        }
        decoded = decode_vectors(encode_vectors(vectors))
        assert set(decoded) == set(vectors)
        for name, vector in vectors.items():
            # array_equal + byte compare: NaN-free here, and the byte
            # view also pins down signed zeros.
            assert np.array_equal(decoded[name], vector)
            assert decoded[name].tobytes() == vector.tobytes()

    def test_json_round_trip(self):
        import json

        vectors = {"values": np.array([0.1, 2 / 7, 1e-17])}
        over_the_wire = json.loads(json.dumps(encode_vectors(vectors)))
        decoded = decode_vectors(over_the_wire)
        assert decoded["values"].tobytes() == vectors["values"].tobytes()


class TestRunQuery:
    QUERY = {
        "kind": "localization",
        "seed": 5,
        "n_snapshots": 30,
        "packets_per_path": 200,
        "loc_snapshots": 2,
    }

    def test_localization_deterministic(self, instance_1a):
        first = run_query(instance_1a, self.QUERY)
        second = run_query(instance_1a, self.QUERY)
        assert set(first) == set(second)
        for name in first:
            assert np.array_equal(first[name], second[name]), name
        assert first["probabilities"].shape == (
            instance_1a.topology.n_links,
        )
        assert first["loc_precision"].shape == (2,)
        # Flattened link sets are consistent with their counts vector.
        assert first["loc_links"].size == int(
            first["loc_link_counts"].sum()
        )
        assert first["true_links"].size == int(
            first["true_link_counts"].sum()
        )

    def test_seed_changes_answer(self, instance_1a):
        base = run_query(instance_1a, self.QUERY)
        other = run_query(instance_1a, dict(self.QUERY, seed=6))
        assert any(
            not np.array_equal(base[name], other[name]) for name in base
        )

    def test_identifiability_fig1(self, instance_1a, instance_1b):
        holds = run_query(instance_1a, {"kind": "identifiability"})
        fails = run_query(instance_1b, {"kind": "identifiability"})
        assert holds["holds"].tolist() == [1.0]
        assert holds["exhaustive"].tolist() == [1.0]
        assert fails["holds"].tolist() == [0.0]
        assert fails["n_collisions"][0] >= 1.0

    def test_results_are_float64(self, instance_1a):
        result = run_query(instance_1a, {"kind": "identifiability"})
        assert all(v.dtype == np.float64 for v in result.values())
