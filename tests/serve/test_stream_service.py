"""/stream endpoint integration plus the client timeout satellite.

Same in-process harness as ``test_service.py``: the service runs on a
dedicated event-loop thread and the blocking :class:`ServiceClient`
exercises the real chunked HTTP/1.1 path over a loopback socket.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.correlation_algorithm import infer_congestion
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.queries import decode_vectors
from repro.serve.registry import instance_from_payload
from repro.serve.server import TomographyService
from repro.simulate.observations import PathObservations
from repro.utils.rng import as_generator

GENERATOR = {
    "kind": "brite",
    "n_ases": 12,
    "routers_per_as": 3,
    "n_paths": 30,
    "seed": 7,
}
N_PATHS = GENERATOR["n_paths"]


class ServiceHarness:
    """A TomographyService on its own event-loop thread."""

    def __init__(self, **knobs) -> None:
        self.service = TomographyService(port=0, **knobs)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._started.set()
        self.loop.run_forever()

    def __enter__(self) -> "ServiceHarness":
        self.thread.start()
        assert self._started.wait(timeout=30), "service failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        )
        future.result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(port=self.service.port, **kwargs)


@pytest.fixture(scope="module")
def harness():
    with ServiceHarness(flush_interval=0.01) as running:
        yield running


@pytest.fixture(scope="module")
def client(harness):
    with harness.client() as connected:
        yield connected


@pytest.fixture(scope="module")
def fingerprint(client):
    return client.load_topology(generator=GENERATOR, name="stream-itest")


def make_windows(n_windows, rows=20, seed=0):
    rng = as_generator(seed)
    return [
        (rng.random((rows, N_PATHS)) < 0.3).astype(int).tolist()
        for _ in range(n_windows)
    ]


class TestStreamEndpoint:
    def test_deltas_then_final_bit_identical_to_batch(
        self, client, fingerprint
    ):
        windows = make_windows(5, seed=1)
        lines = list(client.stream(fingerprint, windows))
        deltas, final = lines[:-1], lines[-1]

        assert len(deltas) == len(windows)
        for index, delta in enumerate(deltas):
            assert delta["window"] == index
            assert delta["timestamp"] == 20 * (index + 1)
            assert delta["n_snapshots"] == 20 * (index + 1)
            assert isinstance(delta["onsets"], list)
            assert isinstance(delta["clears"], list)
            assert delta["changed"] == bool(
                delta["onsets"] or delta["clears"]
            )

        assert set(final) == {"final"}
        assert final["final"]["n_snapshots"] == 100
        assert final["final"]["n_evicted"] == 0

        # The correctness anchor: the streamed full-history estimates
        # equal a local batch inference, byte for byte.
        instance = instance_from_payload({"generator": GENERATOR})
        batch = infer_congestion(
            instance.topology,
            instance.correlation,
            PathObservations(
                np.concatenate(
                    [np.asarray(w, dtype=bool) for w in windows], axis=0
                )
            ),
        )
        streamed = decode_vectors(final["final"]["result"])
        assert (
            streamed["probabilities"].tobytes()
            == batch.congestion_probabilities.tobytes()
        )
        assert streamed["log_good"].tobytes() == batch.log_good.tobytes()

    def test_max_window_evicts_history(self, client, fingerprint):
        windows = make_windows(4, rows=10, seed=2)
        *_, final = client.stream(
            fingerprint, windows, max_window=25
        )
        assert final["final"]["n_snapshots"] == 25
        assert final["final"]["n_evicted"] == 15

    def test_localize_last_adds_links(self, client, fingerprint):
        windows = make_windows(2, rows=10, seed=3)
        first, second, _final = client.stream(
            fingerprint, windows, localize_last=True
        )
        assert "localized_links" in first
        assert "localized_links" in second

    def test_unknown_fingerprint_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream("deadbeef", make_windows(1)))
        assert excinfo.value.status == 404

    def test_empty_windows_400(self, client, fingerprint):
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream(fingerprint, []))
        assert excinfo.value.status == 400

    def test_bad_threshold_400(self, client, fingerprint):
        with pytest.raises(ServiceError) as excinfo:
            list(
                client.stream(
                    fingerprint, make_windows(1), threshold=2.0
                )
            )
        assert excinfo.value.status == 400

    def test_bad_window_mid_stream_errors_then_connection_survives(
        self, client, fingerprint
    ):
        """A malformed window after good ones surfaces as a terminal
        error line (the 200 status is already on the wire) — and the
        keep-alive connection stays usable for the next request."""
        ragged = make_windows(1, rows=4, seed=4) + [[[0] * 5]]
        deltas = client.stream(fingerprint, ragged)
        first = next(deltas)
        assert first["window"] == 0
        with pytest.raises(ServiceError) as excinfo:
            list(deltas)
        assert excinfo.value.status == 500
        assert "paths" in str(excinfo.value.payload)
        assert client.health()["status"] == "ok"

    def test_ordinary_queries_unaffected_after_stream(
        self, client, fingerprint
    ):
        """StepFailure isolation: a failed stream step must not poison
        the topology's batcher for co-batched ordinary queries."""
        with pytest.raises(ServiceError):
            list(client.stream(fingerprint, [[[0] * 5]]))
        answer = client.query(
            fingerprint,
            {
                "kind": "localization",
                "seed": 3,
                "n_snapshots": 20,
                "packets_per_path": 200,
                "loc_snapshots": 1,
            },
        )
        assert answer


class TestClientTimeout:
    def test_stalled_server_raises_clean_error(self):
        """Satellite: a server that accepts but never answers must fail
        within the configured timeout, not hang forever."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            with ServiceClient(port=port, timeout=0.2) as client:
                started = time.monotonic()
                with pytest.raises(ServiceError) as excinfo:
                    client.health()
                elapsed = time.monotonic() - started
            assert excinfo.value.status == 0
            assert "no response" in str(excinfo.value.payload).lower() or (
                "0.2" in str(excinfo.value.payload)
            )
            assert elapsed < 5.0
        finally:
            listener.close()

    def test_default_timeout_is_bounded(self):
        assert ServiceClient().timeout == 30.0
