"""Shared fixtures: the paper's toy instances and small generated ones.

Expensive generated instances are session-scoped; anything a test mutates
must be function-scoped or copied.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.model import (
    ExplicitJointModel,
    IndependentModel,
    NetworkCongestionModel,
)
from repro.simulate import ExactPathStateDistribution
from repro.topogen import fig_1a, fig_1b, generate_brite, generate_planetlab


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the budget "
        "(SIGALRM-based; deferred to the pytest-timeout plugin when it is "
        "installed)",
    )


def _timeout_budget(item) -> float | None:
    """The effective ``timeout`` budget for *item*, or None."""
    marker = item.get_closest_marker("timeout")
    if marker is None:
        return None
    if marker.args:
        seconds = marker.args[0]
    else:
        seconds = marker.kwargs.get("seconds")
    if seconds is None:
        return None
    seconds = float(seconds)
    return seconds if seconds > 0 else None


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` without the plugin.

    The container does not ship pytest-timeout, so the dist suite's hang
    protection is implemented here with a real-time SIGALRM.  When the
    actual plugin is present it wins: this hook becomes a pass-through so
    the two implementations never race over the same signal.
    """
    seconds = _timeout_budget(item)
    can_alarm = (
        seconds is not None
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        return (yield)

    def _expired(signum, frame):
        pytest.fail(
            f"test exceeded its {seconds:g}s timeout budget", pytrace=False
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def instance_1a():
    """Figure 1(a): Assumption 4 holds."""
    return fig_1a()


@pytest.fixture(scope="session")
def instance_1b():
    """Figure 1(b): Assumption 4 fails."""
    return fig_1b()


def make_fig1a_model(instance):
    """The canonical correlated ground truth used across tests.

    ``{e1, e2}`` get an explicit joint with strong positive correlation;
    ``e3`` and ``e4`` are independent.  Exact marginals:
    P(e1)=P(e2)=0.25, P(e3)=0.3, P(e4)=0.15, P(e1∧e2)=0.2.
    """
    topology = instance.topology
    e1, e2, e3, e4 = (
        topology.link(name).id for name in ("e1", "e2", "e3", "e4")
    )
    return NetworkCongestionModel(
        instance.correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.3}),
            IndependentModel({e4: 0.15}),
        ],
    )


@pytest.fixture(scope="session")
def model_1a(instance_1a):
    return make_fig1a_model(instance_1a)


@pytest.fixture(scope="session")
def oracle_1a(instance_1a, model_1a):
    """Exact path-state distribution of the Fig-1(a) ground truth."""
    return ExactPathStateDistribution.from_model(
        instance_1a.topology, model_1a
    )


@pytest.fixture(scope="session")
def truth_1a(model_1a) -> np.ndarray:
    return model_1a.link_marginals()


@pytest.fixture(scope="session")
def brite_small():
    """A small Brite scenario shared by topogen/eval tests."""
    return generate_brite(
        n_ases=40, routers_per_as=5, n_paths=120, seed=101
    )


@pytest.fixture(scope="session")
def planetlab_small():
    """A small PlanetLab instance shared by topogen/eval tests."""
    return generate_planetlab(
        n_routers=120, n_vantages=20, n_paths=120, seed=102
    )
