"""Unit tests for the Figure-5 mislabeled-links scenario."""

import numpy as np
import pytest

from repro.eval.mislabel import make_mislabeled_scenario
from repro.exceptions import GenerationError


class TestConstruction:
    def test_flood_links_come_from_singletons(self, planetlab_small):
        scenario = make_mislabeled_scenario(
            planetlab_small,
            congested_fraction=0.10,
            mislabeled_fraction=0.5,
            seed=1,
        )
        flood = scenario.metadata["flood_links"]
        assert flood
        for link_id in flood:
            # The operator's view keeps them as singletons.
            assert len(
                scenario.algorithm_correlation.set_of(link_id)
            ) == 1

    def test_truth_fuses_flood_into_one_set(self, planetlab_small):
        scenario = make_mislabeled_scenario(
            planetlab_small,
            congested_fraction=0.10,
            mislabeled_fraction=0.5,
            seed=2,
        )
        flood = scenario.metadata["flood_links"]
        truth_correlation = scenario.truth_model.correlation
        indices = {
            truth_correlation.set_index_of(k) for k in flood
        }
        assert len(indices) == 1

    def test_flood_links_congest_together(self, planetlab_small):
        scenario = make_mislabeled_scenario(
            planetlab_small,
            congested_fraction=0.10,
            mislabeled_fraction=0.5,
            seed=3,
        )
        flood = sorted(scenario.metadata["flood_links"])
        model = scenario.truth_model
        marginals = model.link_marginals()
        joint = model.joint(set(flood[:2]))
        assert joint > marginals[flood[0]] * marginals[flood[1]]

    def test_algorithm_structure_is_original(self, planetlab_small):
        scenario = make_mislabeled_scenario(
            planetlab_small, mislabeled_fraction=0.25, seed=4
        )
        assert (
            scenario.algorithm_correlation
            is planetlab_small.correlation
        )

    def test_flood_size_tracks_fraction(self, planetlab_small):
        scenario = make_mislabeled_scenario(
            planetlab_small,
            congested_fraction=0.10,
            mislabeled_fraction=0.5,
            seed=5,
        )
        target_total = scenario.metadata["target_total"]
        flood = scenario.metadata["flood_links"]
        assert len(flood) == round(0.5 * target_total) - scenario.metadata[
            "flood_shortfall"
        ]

    def test_zero_fraction_means_no_flood(self, planetlab_small):
        scenario = make_mislabeled_scenario(
            planetlab_small, mislabeled_fraction=0.0, seed=6
        )
        assert scenario.metadata["flood_links"] == frozenset()

    def test_no_singletons_rejected(self, instance_1a):
        """Fig 1(a) has singleton sets; force the error by clustering
        everything into one set first."""
        from repro.core.correlation import CorrelationStructure
        from repro.topogen.instance import TomographyInstance

        topology = instance_1a.topology
        fused = TomographyInstance(
            topology=topology,
            correlation=CorrelationStructure(
                topology, [list(range(topology.n_links))]
            ),
        )
        with pytest.raises(GenerationError, match="singleton"):
            make_mislabeled_scenario(
                fused,
                congested_fraction=1.0,
                mislabeled_fraction=0.5,
                seed=7,
            )

    def test_deterministic(self, planetlab_small):
        a = make_mislabeled_scenario(
            planetlab_small, mislabeled_fraction=0.25, seed=8
        )
        b = make_mislabeled_scenario(
            planetlab_small, mislabeled_fraction=0.25, seed=8
        )
        assert a.congested_links == b.congested_links
        assert np.allclose(
            a.truth_model.link_marginals(),
            b.truth_model.link_marginals(),
        )
