"""The parallel scenario engine: determinism across worker counts."""

import numpy as np
import pytest

from repro.eval.cache import TrialCache
from repro.eval.figures import figure3_sweep, figure5_cdf
from repro.eval.parallel import (
    SCENARIO_FACTORIES,
    LocalExecutor,
    ScenarioTask,
    ScenarioTaskError,
    SerialExecutor,
    _pack_error_dicts,
    _unpack_error_dicts,
    pool_errors,
    resolve_workers,
    run_scenario_tasks,
    scenario_tasks,
)
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)


def _boom_factory(instance, seed=None, **kwargs):
    raise RuntimeError("injected failure")


def _with_boom(tasks, index):
    """Swap task ``index``'s factory for the failing one."""
    bad = tasks[index]
    tasks = list(tasks)
    tasks[index] = ScenarioTask(
        group=bad.group,
        factory="boom",
        factory_kwargs={},
        scenario_seed=bad.scenario_seed,
        run_seed=bad.run_seed,
    )
    return tasks


class TestTaskConstruction:
    def test_task_layout(self):
        tasks = scenario_tasks(
            "clustered",
            {"congested_fraction": 0.1},
            n_trials=3,
            seed=5,
            group=2,
        )
        assert len(tasks) == 3
        assert all(task.group == 2 for task in tasks)
        assert all(task.factory == "clustered" for task in tasks)
        # Child generators are pre-spawned and pairwise distinct.
        states = {
            id(task.scenario_seed) for task in tasks
        } | {id(task.run_seed) for task in tasks}
        assert len(states) == 6

    def test_unknown_factory_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario factory"):
            scenario_tasks("bogus", {}, n_trials=1, seed=0)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_negative_argument_names_the_source(self):
        """Bad values fail here with their origin named, not later
        inside ProcessPoolExecutor."""
        with pytest.raises(ValueError, match="workers must be >= 0"):
            resolve_workers(-2)

    def test_negative_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        with pytest.raises(
            ValueError, match="REPRO_WORKERS.*must be >= 0"
        ):
            resolve_workers(None)

    def test_env_honoured_and_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)


class TestEngineDeterminism:
    def test_serial_and_parallel_results_identical(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered",
            {"congested_fraction": 0.1},
            n_trials=2,
            seed=21,
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        parallel = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=2
        )
        assert len(serial) == len(parallel) == 2
        for errors_a, errors_b in zip(serial, parallel):
            assert set(errors_a) == set(errors_b)
            for name in errors_a:
                assert np.array_equal(errors_a[name], errors_b[name])

    def test_figure3_sweep_identical_across_worker_counts(
        self, planetlab_small
    ):
        kwargs = dict(
            instance=planetlab_small,
            fractions=(0.05, 0.10),
            config=FAST,
            n_trials=2,
            seed=31,
        )
        serial = figure3_sweep(workers=1, **kwargs)
        parallel = figure3_sweep(workers=4, **kwargs)
        for point_a, point_b in zip(serial.points, parallel.points):
            assert point_a.correlation == point_b.correlation
            assert point_a.independence == point_b.independence

    def test_figure5_identical_across_worker_counts(self, planetlab_small):
        kwargs = dict(
            instance=planetlab_small,
            config=FAST,
            n_trials=2,
            seed=32,
        )
        serial = figure5_cdf(workers=1, **kwargs)
        parallel = figure5_cdf(workers=2, **kwargs)
        for name in serial.curves:
            assert np.array_equal(serial.curves[name], parallel.curves[name])

    def test_same_seed_reproduces(self, planetlab_small):
        kwargs = dict(
            instance=planetlab_small,
            fractions=(0.10,),
            config=FAST,
            seed=33,
        )
        first = figure3_sweep(**kwargs)
        second = figure3_sweep(**kwargs)
        assert first.points == second.points


class TestTransport:
    def test_unpacked_vectors_are_independent_copies(self):
        dicts = [
            {"correlation": np.array([1.0, 2.0]), "independence": np.array([3.0])},
            {"correlation": np.array([4.0])},
        ]
        descriptor, buffer = _pack_error_dicts(dicts)
        restored = _unpack_error_dicts(descriptor, buffer)
        # Copies own their memory: dropping one trial must not pin the
        # whole chunk buffer, and mutating the buffer must not alias.
        for errors in restored:
            for vector in errors.values():
                assert vector.base is None
                assert vector.flags.writeable
        buffer[:] = -1.0
        assert np.array_equal(restored[0]["correlation"], [1.0, 2.0])

    def test_unpack_views_on_request(self):
        dicts = [{"correlation": np.array([1.0, 2.0])}]
        descriptor, buffer = _pack_error_dicts(dicts)
        restored = _unpack_error_dicts(descriptor, buffer, copy=False)
        assert restored[0]["correlation"].base is buffer


class TestFailureSemantics:
    def test_serial_failure_reports_indices_and_keeps_cache(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(SCENARIO_FACTORIES, "boom", _boom_factory)
        tasks = _with_boom(
            scenario_tasks(
                "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=41
            ),
            1,
        )
        cache = TrialCache(tmp_path / "store")
        with pytest.raises(ScenarioTaskError) as excinfo:
            run_scenario_tasks(
                planetlab_small, tasks, config=FAST, cache=cache
            )
        assert excinfo.value.task_indices == [1]
        # Every healthy task was written back before the raise, so a
        # rerun with a fixed factory recomputes only the lost one.
        assert cache.stats.stores == 2

    def test_local_failure_reports_indices_and_keeps_cache(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(SCENARIO_FACTORIES, "boom", _boom_factory)
        tasks = _with_boom(
            scenario_tasks(
                "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=42
            ),
            2,
        )
        cache = TrialCache(tmp_path / "store")
        with pytest.raises(ScenarioTaskError) as excinfo:
            run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                cache=cache,
                executor=LocalExecutor(2),
            )
        assert excinfo.value.task_indices == [2]
        assert cache.stats.stores == 3

    def test_failed_sweep_resumes_from_cache(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(SCENARIO_FACTORIES, "boom", _boom_factory)
        healthy = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=43
        )
        broken = _with_boom(healthy, 0)
        store = tmp_path / "store"
        with pytest.raises(ScenarioTaskError):
            run_scenario_tasks(
                planetlab_small,
                broken,
                config=FAST,
                cache=TrialCache(store),
            )
        retry_cache = TrialCache(store)
        results = run_scenario_tasks(
            planetlab_small, healthy, config=FAST, cache=retry_cache
        )
        assert len(results) == 3
        # Only the lost task recomputes.
        assert retry_cache.stats.hits == 2
        assert retry_cache.stats.stores == 1

    def test_executor_results_identical_across_backends(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=44
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, executor=SerialExecutor()
        )
        local = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, executor=LocalExecutor(2)
        )
        for errors_a, errors_b in zip(serial, local):
            assert set(errors_a) == set(errors_b)
            for name in errors_a:
                assert np.array_equal(errors_a[name], errors_b[name])


class TestPooling:
    def test_pool_errors_rejects_out_of_range_groups(self):
        results = [{"correlation": np.array([1.0])}]
        for group in (-1, 2, 5):
            tasks = [ScenarioTask(group=group, factory="clustered")]
            with pytest.raises(ValueError, match=r"\[0, 2\)"):
                pool_errors(tasks, results, 2)

    def test_pool_errors_rejects_negative_n_groups(self):
        with pytest.raises(ValueError, match="n_groups"):
            pool_errors([], [], -1)

    def test_pool_errors_groups_in_task_order(self):
        tasks = [
            ScenarioTask(group=0, factory="clustered"),
            ScenarioTask(group=1, factory="clustered"),
            ScenarioTask(group=0, factory="clustered"),
        ]
        results = [
            {"correlation": np.array([1.0])},
            {"correlation": np.array([2.0])},
            {"correlation": np.array([3.0])},
        ]
        pooled = pool_errors(tasks, results, 2)
        assert np.array_equal(pooled[0]["correlation"], [1.0, 3.0])
        assert np.array_equal(pooled[1]["correlation"], [2.0])
