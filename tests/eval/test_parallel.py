"""The parallel scenario engine: determinism across worker counts."""

import numpy as np
import pytest

from repro.eval.figures import figure3_sweep, figure5_cdf
from repro.eval.parallel import (
    ScenarioTask,
    pool_errors,
    resolve_workers,
    run_scenario_tasks,
    scenario_tasks,
)
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)


class TestTaskConstruction:
    def test_task_layout(self):
        tasks = scenario_tasks(
            "clustered",
            {"congested_fraction": 0.1},
            n_trials=3,
            seed=5,
            group=2,
        )
        assert len(tasks) == 3
        assert all(task.group == 2 for task in tasks)
        assert all(task.factory == "clustered" for task in tasks)
        # Child generators are pre-spawned and pairwise distinct.
        states = {
            id(task.scenario_seed) for task in tasks
        } | {id(task.run_seed) for task in tasks}
        assert len(states) == 6

    def test_unknown_factory_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario factory"):
            scenario_tasks("bogus", {}, n_trials=1, seed=0)

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestEngineDeterminism:
    def test_serial_and_parallel_results_identical(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered",
            {"congested_fraction": 0.1},
            n_trials=2,
            seed=21,
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        parallel = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=2
        )
        assert len(serial) == len(parallel) == 2
        for errors_a, errors_b in zip(serial, parallel):
            assert set(errors_a) == set(errors_b)
            for name in errors_a:
                assert np.array_equal(errors_a[name], errors_b[name])

    def test_figure3_sweep_identical_across_worker_counts(
        self, planetlab_small
    ):
        kwargs = dict(
            instance=planetlab_small,
            fractions=(0.05, 0.10),
            config=FAST,
            n_trials=2,
            seed=31,
        )
        serial = figure3_sweep(workers=1, **kwargs)
        parallel = figure3_sweep(workers=4, **kwargs)
        for point_a, point_b in zip(serial.points, parallel.points):
            assert point_a.correlation == point_b.correlation
            assert point_a.independence == point_b.independence

    def test_figure5_identical_across_worker_counts(self, planetlab_small):
        kwargs = dict(
            instance=planetlab_small,
            config=FAST,
            n_trials=2,
            seed=32,
        )
        serial = figure5_cdf(workers=1, **kwargs)
        parallel = figure5_cdf(workers=2, **kwargs)
        for name in serial.curves:
            assert np.array_equal(serial.curves[name], parallel.curves[name])

    def test_same_seed_reproduces(self, planetlab_small):
        kwargs = dict(
            instance=planetlab_small,
            fractions=(0.10,),
            config=FAST,
            seed=33,
        )
        first = figure3_sweep(**kwargs)
        second = figure3_sweep(**kwargs)
        assert first.points == second.points


class TestPooling:
    def test_pool_errors_groups_in_task_order(self):
        tasks = [
            ScenarioTask(group=0, factory="clustered"),
            ScenarioTask(group=1, factory="clustered"),
            ScenarioTask(group=0, factory="clustered"),
        ]
        results = [
            {"correlation": np.array([1.0])},
            {"correlation": np.array([2.0])},
            {"correlation": np.array([3.0])},
        ]
        pooled = pool_errors(tasks, results, 2)
        assert np.array_equal(pooled[0]["correlation"], [1.0, 3.0])
        assert np.array_equal(pooled[1]["correlation"], [2.0])
