"""Distributed sweep backend: framing, fault tolerance, bit-identity."""

import contextlib
import pickle
import socket
import threading

import numpy as np
import pytest

from repro.eval.dist import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    RemoteExecutor,
    WorkerServer,
    buffer_payload,
    parse_hosts,
    payload_to_buffer,
    recv_message,
    send_message,
)
from repro.eval.cache import TrialCache
from repro.eval.parallel import (
    SCENARIO_FACTORIES,
    ScenarioTaskError,
    _pack_error_dicts,
    _unpack_error_dicts,
    run_scenario_tasks,
    scenario_tasks,
)
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _pipe():
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


class TestFraming:
    def test_round_trip_header_and_payload(self):
        with _pipe() as (left, right):
            payload = bytes(range(256)) * 100
            send_message(
                left, {"type": "chunk", "chunk": 7, "extra": [1, 2]}, payload
            )
            header, received = recv_message(right)
        assert header == {"type": "chunk", "chunk": 7, "extra": [1, 2]}
        assert received == payload

    def test_round_trip_empty_payload(self):
        with _pipe() as (left, right):
            send_message(left, {"type": "end"})
            header, received = recv_message(right)
        assert header["type"] == "end"
        assert received == b""

    def test_multiple_frames_in_sequence(self):
        with _pipe() as (left, right):
            for index in range(5):
                send_message(left, {"type": "chunk", "chunk": index})
            got = [recv_message(right)[0]["chunk"] for _ in range(5)]
        assert got == list(range(5))

    def test_clean_close_raises_connection_closed(self):
        with _pipe() as (left, right):
            left.close()
            with pytest.raises(ConnectionClosed):
                recv_message(right)

    def test_mid_frame_close_is_not_clean(self):
        with _pipe() as (left, right):
            send_message(left, {"type": "chunk"}, b"x" * 64)
            # Retransmit a truncated copy: send only part of the frame.
            left.close()
            recv_message(right)  # the full frame arrives fine
        with _pipe() as (left, right):
            left.sendall(b"RTD1")  # magic only, then vanish
            left.close()
            with pytest.raises(ProtocolError) as excinfo:
                recv_message(right)
            assert not isinstance(excinfo.value, ConnectionClosed)

    def test_bad_magic_rejected(self):
        with _pipe() as (left, right):
            left.sendall(b"BOGUS!!!" + bytes(16))
            with pytest.raises(ProtocolError, match="magic"):
                recv_message(right)

    def test_oversized_lengths_rejected(self):
        import struct

        with _pipe() as (left, right):
            left.sendall(struct.pack("!4sQQ", b"RTD1", 1 << 60, 0))
            with pytest.raises(ProtocolError, match="header length"):
                recv_message(right)

    def test_non_dict_header_rejected(self):
        import struct

        blob = pickle.dumps(["not", "a", "dict"])
        with _pipe() as (left, right):
            left.sendall(struct.pack("!4sQQ", b"RTD1", len(blob), 0) + blob)
            with pytest.raises(ProtocolError, match="dict"):
                recv_message(right)

    def test_packed_buffer_round_trip(self):
        dicts = [
            {"correlation": np.array([0.1, 0.2]), "independence": np.array([0.3])},
            {"correlation": np.array([], dtype=np.float64)},
        ]
        descriptor, buffer = _pack_error_dicts(dicts)
        payload = bytes(buffer_payload(buffer))
        restored = _unpack_error_dicts(
            descriptor, payload_to_buffer(payload)
        )
        assert len(restored) == 2
        assert np.array_equal(restored[0]["correlation"], [0.1, 0.2])
        assert np.array_equal(restored[0]["independence"], [0.3])
        assert restored[1]["correlation"].size == 0
        # Copies, not views into the read-only socket buffer.
        assert restored[0]["correlation"].flags.writeable

    def test_ragged_payload_rejected(self):
        with pytest.raises(ProtocolError, match="float64"):
            payload_to_buffer(b"12345")


class TestParseHosts:
    def test_comma_separated_string(self):
        assert parse_hosts("a:7100, b:7200") == [("a", 7100), ("b", 7200)]

    def test_iterables_and_tuples(self):
        assert parse_hosts([("a", 1), "b:2"]) == [("a", 1), ("b", 2)]

    def test_ipv6_brackets(self):
        assert parse_hosts("[::1]:7100") == [("::1", 7100)]

    @pytest.mark.parametrize(
        "spec", ["", "hostonly", "a:notaport", "a:0", "[::1]7100"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_hosts(spec)


# ----------------------------------------------------------------------
# Remote execution
# ----------------------------------------------------------------------
@contextlib.contextmanager
def worker_fleet(count=2, /, **kwargs):
    """Run ``count`` in-thread workers; yields the server objects."""
    kwargs.setdefault("max_sessions", 1)
    servers = [WorkerServer(**kwargs) for _ in range(count)]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=10)


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for errors_a, errors_b in zip(reference, candidate):
        assert set(errors_a) == set(errors_b)
        for name in errors_a:
            assert np.array_equal(errors_a[name], errors_b[name])


def _boom_factory(instance, seed=None, **kwargs):
    raise RuntimeError("injected failure")


class TestRemoteExecution:
    def test_remote_matches_serial_bit_identical(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=21
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers]
                ),
            )
        _assert_identical(serial, remote)

    def test_worker_death_requeues_deterministically(self, planetlab_small):
        """One worker drops mid-chunk; survivors absorb the requeue."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=22
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1) as good:
            with worker_fleet(1, fail_after_chunks=1) as flaky:
                remote = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [good[0].address, flaky[0].address]
                    ),
                )
        _assert_identical(serial, remote)

    def test_all_workers_lost_raises_with_task_indices(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=23
        )
        with worker_fleet(2, fail_after_chunks=0) as servers:
            with pytest.raises(ScenarioTaskError) as excinfo:
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [server.address for server in servers]
                    ),
                )
        assert excinfo.value.task_indices == [0, 1, 2]

    def test_unreachable_endpoint_does_not_kill_sweep(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=24
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        # Reserve a port nothing listens on.
        probe = socket.create_server(("127.0.0.1", 0))
        dead_address = "{}:{}".format(*probe.getsockname()[:2])
        probe.close()
        with worker_fleet(1) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [servers[0].address, dead_address],
                    connect_timeout=2.0,
                ),
            )
        _assert_identical(serial, remote)

    def test_remote_task_error_settles_other_chunks(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(SCENARIO_FACTORIES, "boom", _boom_factory)
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=25
        )
        bad = tasks[1]
        tasks[1] = type(bad)(
            group=bad.group,
            factory="boom",
            factory_kwargs={},
            scenario_seed=bad.scenario_seed,
            run_seed=bad.run_seed,
        )
        cache = TrialCache(tmp_path / "store")
        with worker_fleet(2) as servers:
            with pytest.raises(ScenarioTaskError) as excinfo:
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    cache=cache,
                    executor=RemoteExecutor(
                        [server.address for server in servers]
                    ),
                )
        assert excinfo.value.task_indices == [1]
        # The two healthy chunks were written back despite the failure.
        assert cache.stats.stores == 2

    def test_worker_side_cache_serves_hits_without_compute(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        """A populated worker cache answers even when compute would fail."""
        store = tmp_path / "shared-store"
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=26
        )
        serial = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            cache=TrialCache(store),
        )
        entries = len(list(store.rglob("*.npz")))
        assert entries == 2
        # Break the factory: only cache hits can answer now.
        monkeypatch.setitem(
            SCENARIO_FACTORIES, "clustered", _boom_factory
        )
        with worker_fleet(2, cache_dir=store) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers]
                ),
            )
        _assert_identical(serial, remote)
        assert len(list(store.rglob("*.npz"))) == entries

    def test_worker_writes_cache_as_chunks_complete(
        self, planetlab_small, tmp_path
    ):
        """A worker killed after one chunk has persisted that chunk."""
        store = tmp_path / "store"
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=27
        )
        with worker_fleet(
            1, cache_dir=store, fail_after_chunks=1
        ) as servers:
            with pytest.raises(ScenarioTaskError):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor([servers[0].address]),
                )
        # The chunk served before the crash reached the shared store.
        assert len(list(store.rglob("*.npz"))) >= 1

    def test_straggler_duplication_keeps_results_identical(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=28
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers],
                    # Aggressive timeout: every chunk is eligible for
                    # speculative duplication almost immediately.
                    straggler_timeout=0.01,
                ),
            )
        _assert_identical(serial, remote)

    def test_concurrent_sessions_on_one_worker(self, planetlab_small):
        """A worker mid-sweep still serves a second coordinator."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=29
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, max_sessions=2) as servers:
            executor = RemoteExecutor([servers[0].address])
            outcomes = {}

            def sweep(label):
                outcomes[label] = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )

            first = threading.Thread(target=sweep, args=("first",))
            second = threading.Thread(target=sweep, args=("second",))
            first.start()
            second.start()
            first.join(timeout=60)
            second.join(timeout=60)
        _assert_identical(serial, outcomes["first"])
        _assert_identical(serial, outcomes["second"])

    def test_protocol_version_mismatch_reported(self):
        with worker_fleet(1) as servers:
            sock = socket.create_connection(
                (servers[0].host, servers[0].port), timeout=5
            )
            try:
                send_message(
                    sock,
                    {"type": "init", "protocol": PROTOCOL_VERSION + 1},
                    pickle.dumps((None, None, None)),
                )
                header, _ = recv_message(sock)
            finally:
                sock.close()
        assert header["type"] == "error"
        assert "protocol mismatch" in header["message"]
