"""Distributed sweep backend: framing, fault tolerance, bit-identity."""

import contextlib
import pathlib
import pickle
import socket
import threading
import time

import numpy as np
import pytest

from repro.eval.dist import (
    CAPACITY_PROTOCOL_VERSION,
    CODEC_PROTOCOL_VERSION,
    MAGIC_V4,
    PROTOCOL_BASE_VERSION,
    PROTOCOL_VERSION,
    ChunkBoard,
    ConnectionClosed,
    FaultPlan,
    HostSpec,
    ProtocolError,
    RemoteExecutor,
    SHM_PREFIX,
    ShmError,
    WorkerServer,
    buffer_payload,
    negotiate_version,
    parse_hosts,
    payload_to_buffer,
    read_magic,
    recv_json_message,
    recv_message,
    send_message,
)
from repro.eval.cache import TrialCache
from repro.eval.parallel import (
    SCENARIO_FACTORIES,
    ScenarioTaskError,
    _pack_error_dicts,
    _unpack_error_dicts,
    run_scenario_tasks,
    scenario_tasks,
)
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)

# Hang protection for the whole dist suite: a deadlocked coordinator or
# worker thread should fail a single test, not stall the entire run.
pytestmark = pytest.mark.timeout(120)


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _pipe():
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


class TestFraming:
    def test_round_trip_header_and_payload(self):
        with _pipe() as (left, right):
            payload = bytes(range(256)) * 100
            send_message(
                left, {"type": "chunk", "chunk": 7, "extra": [1, 2]}, payload
            )
            header, received = recv_message(right)
        assert header == {"type": "chunk", "chunk": 7, "extra": [1, 2]}
        assert received == payload

    def test_round_trip_empty_payload(self):
        with _pipe() as (left, right):
            send_message(left, {"type": "end"})
            header, received = recv_message(right)
        assert header["type"] == "end"
        assert received == b""

    def test_multiple_frames_in_sequence(self):
        with _pipe() as (left, right):
            for index in range(5):
                send_message(left, {"type": "chunk", "chunk": index})
            got = [recv_message(right)[0]["chunk"] for _ in range(5)]
        assert got == list(range(5))

    def test_clean_close_raises_connection_closed(self):
        with _pipe() as (left, right):
            left.close()
            with pytest.raises(ConnectionClosed):
                recv_message(right)

    def test_mid_frame_close_is_not_clean(self):
        with _pipe() as (left, right):
            send_message(left, {"type": "chunk"}, b"x" * 64)
            # Retransmit a truncated copy: send only part of the frame.
            left.close()
            recv_message(right)  # the full frame arrives fine
        with _pipe() as (left, right):
            left.sendall(b"RTD1")  # magic only, then vanish
            left.close()
            with pytest.raises(ProtocolError) as excinfo:
                recv_message(right)
            assert not isinstance(excinfo.value, ConnectionClosed)

    def test_bad_magic_rejected(self):
        with _pipe() as (left, right):
            left.sendall(b"BOGUS!!!" + bytes(16))
            with pytest.raises(ProtocolError, match="magic"):
                recv_message(right)

    def test_oversized_lengths_rejected(self):
        import struct

        with _pipe() as (left, right):
            left.sendall(struct.pack("!4sQQ", b"RTD1", 1 << 60, 0))
            with pytest.raises(ProtocolError, match="header length"):
                recv_message(right)

    def test_non_dict_header_rejected(self):
        import struct

        blob = pickle.dumps(["not", "a", "dict"])
        with _pipe() as (left, right):
            left.sendall(struct.pack("!4sQQ", b"RTD1", len(blob), 0) + blob)
            with pytest.raises(ProtocolError, match="dict"):
                recv_message(right)

    def test_packed_buffer_round_trip(self):
        dicts = [
            {"correlation": np.array([0.1, 0.2]), "independence": np.array([0.3])},
            {"correlation": np.array([], dtype=np.float64)},
        ]
        descriptor, buffer = _pack_error_dicts(dicts)
        payload = bytes(buffer_payload(buffer))
        restored = _unpack_error_dicts(
            descriptor, payload_to_buffer(payload)
        )
        assert len(restored) == 2
        assert np.array_equal(restored[0]["correlation"], [0.1, 0.2])
        assert np.array_equal(restored[0]["independence"], [0.3])
        assert restored[1]["correlation"].size == 0
        # Copies, not views into the read-only socket buffer.
        assert restored[0]["correlation"].flags.writeable

    def test_ragged_payload_rejected(self):
        with pytest.raises(ProtocolError, match="float64"):
            payload_to_buffer(b"12345")


class TestParseHosts:
    def test_comma_separated_string(self):
        assert [spec.endpoint for spec in parse_hosts("a:7100, b:7200")] == [
            ("a", 7100),
            ("b", 7200),
        ]

    def test_iterables_and_tuples(self):
        specs = parse_hosts([("a", 1), "b:2"])
        assert [spec.endpoint for spec in specs] == [("a", 1), ("b", 2)]

    def test_ipv6_brackets(self):
        (spec,) = parse_hosts("[::1]:7100")
        assert spec.endpoint == ("::1", 7100)
        assert spec.address == "[::1]:7100"

    def test_user_prefix_carried_for_ssh(self):
        specs = parse_hosts("alice@a:7100, b:7200")
        assert specs[0] == HostSpec("a", 7100, "alice")
        assert specs[0].ssh_target == "alice@a"
        assert specs[0].endpoint == ("a", 7100)  # user never connects
        assert specs[1].ssh_target == "b"

    def test_user_prefix_with_ipv6(self):
        (spec,) = parse_hosts("bob@[::1]:7100")
        assert spec == HostSpec("::1", 7100, "bob")

    def test_host_spec_entries_pass_through(self):
        spec = HostSpec("a", 7100, "carol")
        assert parse_hosts([spec]) == [spec]

    @pytest.mark.parametrize(
        "spec", ["", "hostonly", "a:notaport", "a:0", "[::1]7100"]
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_hosts(spec)

    @pytest.mark.parametrize("port", [0, -1, 65536, 1 << 20])
    def test_out_of_range_ports_rejected(self, port):
        with pytest.raises(ValueError, match="out of range"):
            parse_hosts([("a", port)])

    def test_duplicate_endpoints_rejected(self):
        with pytest.raises(ValueError, match="duplicate worker endpoint"):
            parse_hosts("a:7100,b:7200,a:7100")

    def test_duplicate_detection_ignores_user(self):
        # Two logins to one endpoint is still one worker socket.
        with pytest.raises(ValueError, match="duplicate"):
            parse_hosts("alice@a:7100,bob@a:7100")


# ----------------------------------------------------------------------
# Remote execution
# ----------------------------------------------------------------------
@contextlib.contextmanager
def worker_fleet(count=2, /, **kwargs):
    """Run ``count`` in-thread workers; yields the server objects."""
    kwargs.setdefault("max_sessions", 1)
    servers = [WorkerServer(**kwargs) for _ in range(count)]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=10)


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for errors_a, errors_b in zip(reference, candidate):
        assert set(errors_a) == set(errors_b)
        for name in errors_a:
            assert np.array_equal(errors_a[name], errors_b[name])


def _boom_factory(instance, seed=None, **kwargs):
    raise RuntimeError("injected failure")


class TestRemoteExecution:
    def test_remote_matches_serial_bit_identical(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=21
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers]
                ),
            )
        _assert_identical(serial, remote)

    def test_worker_death_requeues_deterministically(self, planetlab_small):
        """One worker drops mid-chunk; survivors absorb the requeue."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=22
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1) as good:
            with worker_fleet(1, fail_after_chunks=1) as flaky:
                remote = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [good[0].address, flaky[0].address]
                    ),
                )
        _assert_identical(serial, remote)

    def test_death_during_send_requeues_the_claimed_chunk(
        self, planetlab_small, monkeypatch
    ):
        """A worker that dies with RST makes the *send* fail.

        The chunk was already claimed from the board at that point; it
        must be requeued (not leaked) or the sweep hangs forever —
        regression test for the SIGKILL-mid-sweep hang.
        """
        from repro.eval.dist import coordinator as coordinator_module

        # Trip whichever wire the session negotiated: legacy chunk
        # frames go through send_message, v4 ones through
        # send_json_message.
        tripped = []

        def _flaky(real):
            def flaky_send(sock, header, payload=b""):
                if header.get("type") == "chunk" and not tripped:
                    tripped.append(header["chunk"])
                    raise OSError("simulated connection reset")
                return real(sock, header, payload)

            return flaky_send

        monkeypatch.setattr(
            coordinator_module,
            "send_message",
            _flaky(coordinator_module.send_message),
        )
        monkeypatch.setattr(
            coordinator_module,
            "send_json_message",
            _flaky(coordinator_module.send_json_message),
        )
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=30
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        outcome = {}

        def sweep():
            with worker_fleet(2) as servers:
                outcome["remote"] = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [server.address for server in servers]
                    ),
                )

        # Drive the sweep from a daemon thread so a reintroduced leak
        # fails the test instead of hanging the whole session.
        thread = threading.Thread(target=sweep, daemon=True)
        thread.start()
        thread.join(timeout=120)
        assert not thread.is_alive(), (
            "sweep hung: a chunk claimed by the dead worker was never "
            "requeued"
        )
        assert tripped  # the failure injection actually fired
        _assert_identical(serial, outcome["remote"])

    def test_requeued_duplicate_of_own_inflight_chunk_is_absorbed(
        self, planetlab_small
    ):
        """A dead duplicator requeues a chunk its victim still runs.

        The victim's pipeline top-up then claims a chunk it already
        has in flight; that token must collapse into the running
        execution — re-sending it would produce a second result frame
        and a ProtocolError that kills the healthy worker.  The
        interleaving is timing-dependent, but the sweep must complete
        bit-identically on every schedule this race can produce.
        """
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=34
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, capacity=2) as wide:
            with worker_fleet(1, fail_after_chunks=0) as doomed:
                remote = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [wide[0].address, doomed[0].address],
                        straggler_timeout=0.05,
                        max_attempts=5,
                    ),
                )
        _assert_identical(serial, remote)

    def test_all_workers_lost_raises_with_task_indices(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=23
        )
        with worker_fleet(2, fail_after_chunks=0) as servers:
            with pytest.raises(ScenarioTaskError) as excinfo:
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [server.address for server in servers]
                    ),
                )
        assert excinfo.value.task_indices == [0, 1, 2]

    def test_unreachable_endpoint_does_not_kill_sweep(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=24
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        # Reserve a port nothing listens on.
        probe = socket.create_server(("127.0.0.1", 0))
        dead_address = "{}:{}".format(*probe.getsockname()[:2])
        probe.close()
        with worker_fleet(1) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [servers[0].address, dead_address],
                    connect_timeout=2.0,
                ),
            )
        _assert_identical(serial, remote)

    def test_remote_task_error_settles_other_chunks(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(SCENARIO_FACTORIES, "boom", _boom_factory)
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=25
        )
        bad = tasks[1]
        tasks[1] = type(bad)(
            group=bad.group,
            factory="boom",
            factory_kwargs={},
            scenario_seed=bad.scenario_seed,
            run_seed=bad.run_seed,
        )
        cache = TrialCache(tmp_path / "store")
        with worker_fleet(2) as servers:
            with pytest.raises(ScenarioTaskError) as excinfo:
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    cache=cache,
                    executor=RemoteExecutor(
                        [server.address for server in servers]
                    ),
                )
        assert excinfo.value.task_indices == [1]
        # The two healthy chunks were written back despite the failure.
        assert cache.stats.stores == 2

    def test_worker_side_cache_serves_hits_without_compute(
        self, planetlab_small, monkeypatch, tmp_path
    ):
        """A populated worker cache answers even when compute would fail."""
        store = tmp_path / "shared-store"
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=26
        )
        serial = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            cache=TrialCache(store),
        )
        entries = len(list(store.rglob("*.npz")))
        assert entries == 2
        # Break the factory: only cache hits can answer now.
        monkeypatch.setitem(
            SCENARIO_FACTORIES, "clustered", _boom_factory
        )
        with worker_fleet(2, cache_dir=store) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers]
                ),
            )
        _assert_identical(serial, remote)
        assert len(list(store.rglob("*.npz"))) == entries

    def test_worker_writes_cache_as_chunks_complete(
        self, planetlab_small, tmp_path
    ):
        """A worker killed after one chunk has persisted that chunk."""
        store = tmp_path / "store"
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=27
        )
        with worker_fleet(
            1, cache_dir=store, fail_after_chunks=1
        ) as servers:
            with pytest.raises(ScenarioTaskError):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor([servers[0].address]),
                )
        # The chunk served before the crash reached the shared store.
        assert len(list(store.rglob("*.npz"))) >= 1

    def test_straggler_duplication_keeps_results_identical(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=28
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers],
                    # Aggressive timeout: every chunk is eligible for
                    # speculative duplication almost immediately.
                    straggler_timeout=0.01,
                ),
            )
        _assert_identical(serial, remote)

    def test_concurrent_sessions_on_one_worker(self, planetlab_small):
        """A worker mid-sweep still serves a second coordinator."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=29
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, max_sessions=2) as servers:
            executor = RemoteExecutor([servers[0].address])
            outcomes = {}

            def sweep(label):
                outcomes[label] = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )

            first = threading.Thread(target=sweep, args=("first",))
            second = threading.Thread(target=sweep, args=("second",))
            first.start()
            second.start()
            first.join(timeout=60)
            second.join(timeout=60)
        _assert_identical(serial, outcomes["first"])
        _assert_identical(serial, outcomes["second"])

    def test_broken_pool_drops_session_instead_of_task_error(self):
        """A pool child dying (OOM, segfault) is infrastructure death:
        the worker must hang up — so the coordinator requeues the
        chunk on survivors — not report a never-retried task error."""
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        server = WorkerServer(capacity=2)
        try:
            left, right = socket.socketpair()
            try:
                future: Future = Future()
                future.set_exception(
                    BrokenProcessPool("child was OOM-killed")
                )
                server._send_chunk_result(
                    left, threading.Lock(), 7, future
                )
                # No error frame was sent; the peer sees a clean close
                # (the worker-down signal that triggers a requeue).
                with pytest.raises(ConnectionClosed):
                    recv_message(right)
            finally:
                left.close()
                right.close()
        finally:
            server.close()

    def test_protocol_version_mismatch_reported(self):
        with worker_fleet(1) as servers:
            sock = socket.create_connection(
                (servers[0].host, servers[0].port), timeout=5
            )
            try:
                send_message(
                    sock,
                    {"type": "init", "protocol": PROTOCOL_VERSION + 1},
                    pickle.dumps((None, None, None)),
                )
                header, _ = recv_message(sock)
            finally:
                sock.close()
        assert header["type"] == "error"
        assert "protocol mismatch" in header["message"]


# ----------------------------------------------------------------------
# Version negotiation and the capacity HELLO
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_negotiate_version_rules(self):
        # Version-1 coordinator (no protocol_max key) → version 1.
        assert negotiate_version({"protocol": 1}) == 1
        # Current coordinator → the highest version both speak.
        assert (
            negotiate_version({"protocol": 1, "protocol_max": 2}) == 2
        )
        # A future coordinator caps at what this build understands.
        assert (
            negotiate_version({"protocol": 1, "protocol_max": 99})
            == PROTOCOL_VERSION
        )

    @pytest.mark.parametrize(
        "header",
        [
            {"protocol": PROTOCOL_VERSION + 1},  # baseline too new
            {"protocol": None},
            {"protocol": "1"},
            {},
            {"protocol": 1, "protocol_max": 0},  # max below baseline
            {"protocol": 2, "protocol_max": 1},  # inverted range
        ],
    )
    def test_negotiate_version_rejects(self, header):
        with pytest.raises(ProtocolError, match="protocol mismatch"):
            negotiate_version(header)

    def _handshake(self, server, init_header):
        sock = socket.create_connection(
            (server.host, server.port), timeout=5
        )
        try:
            send_message(
                sock, init_header, pickle.dumps((None, None, None))
            )
            # A worker that negotiated v4 answers with a v4-framed
            # ready (and then expects a context frame — closing the
            # socket ends the session); older negotiations answer with
            # the legacy pickled frame and take a legacy "end".
            magic = read_magic(sock)
            if magic == MAGIC_V4:
                header, _ = recv_json_message(sock, preread_magic=magic)
            else:
                header, _ = recv_message(sock, preread_magic=magic)
                send_message(sock, {"type": "end"})
        finally:
            sock.close()
        return header

    def test_v1_coordinator_gets_v1_ready_without_capacity(self):
        """A PR-3 coordinator sees exactly the wire it expects."""
        with worker_fleet(1, capacity=4) as servers:
            header = self._handshake(
                servers[0],
                {"type": "init", "protocol": PROTOCOL_BASE_VERSION},
            )
        assert header["type"] == "ready"
        assert header["protocol"] == PROTOCOL_BASE_VERSION
        assert "capacity" not in header

    def test_v2_coordinator_learns_capacity(self):
        """A capacity-era (PR-4) coordinator pins the session at v2."""
        with worker_fleet(1, capacity=4) as servers:
            header = self._handshake(
                servers[0],
                {
                    "type": "init",
                    "protocol": PROTOCOL_BASE_VERSION,
                    "protocol_max": CAPACITY_PROTOCOL_VERSION,
                },
            )
        assert header["type"] == "ready"
        assert header["protocol"] == CAPACITY_PROTOCOL_VERSION
        assert header["capacity"] == 4

    def test_current_coordinator_negotiates_latest_version(self):
        with worker_fleet(1, capacity=4) as servers:
            header = self._handshake(
                servers[0],
                {
                    "type": "init",
                    "protocol": PROTOCOL_BASE_VERSION,
                    "protocol_max": PROTOCOL_VERSION,
                },
            )
        assert header["type"] == "ready"
        assert header["protocol"] == PROTOCOL_VERSION
        assert header["capacity"] == 4

    def test_executor_tolerates_v1_worker(self, planetlab_small):
        """A coordinator sweeping a fleet that still runs PR-3 code.

        The fake worker speaks strict version 1: it rejects any init
        whose ``protocol`` key is not exactly 1 (ignoring unknown keys,
        as the PR-3 code did) and answers one chunk at a time.
        """
        from repro.eval.parallel import _execute_task

        ready = threading.Event()
        bound = {}

        def v1_worker():
            server = socket.create_server(("127.0.0.1", 0))
            bound["port"] = server.getsockname()[1]
            ready.set()
            connection, _ = server.accept()
            with connection, server:
                header, payload = recv_message(connection)
                assert header["protocol"] == 1  # baseline on the wire
                instance, config, options = pickle.loads(payload)
                send_message(
                    connection, {"type": "ready", "protocol": 1}
                )
                while True:
                    try:
                        header, payload = recv_message(connection)
                    except ConnectionClosed:
                        return  # coordinator hung up: end of session
                    if header["type"] == "end":
                        return
                    tasks = pickle.loads(payload)
                    descriptor, buffer = _pack_error_dicts(
                        [
                            _execute_task(
                                instance, config, options, task
                            )
                            for task in tasks
                        ]
                    )
                    send_message(
                        connection,
                        {
                            "type": "result",
                            "chunk": header["chunk"],
                            "descriptor": descriptor,
                        },
                        buffer_payload(buffer),
                    )

        thread = threading.Thread(target=v1_worker, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=31
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        remote = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            executor=RemoteExecutor([f"127.0.0.1:{bound['port']}"]),
        )
        thread.join(timeout=10)
        _assert_identical(serial, remote)

    def test_capacity_worker_matches_serial_bit_identical(
        self, planetlab_small
    ):
        """Concurrent (process-pool) chunk execution changes nothing."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=32
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, capacity=2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor([servers[0].address]),
            )
        _assert_identical(serial, remote)

    def test_capacity_blind_executor_stays_sequential(
        self, planetlab_small
    ):
        """capacity_aware=False is the uniform (PR-3) schedule."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=33
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, capacity=2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [servers[0].address], capacity_aware=False
                ),
            )
        _assert_identical(serial, remote)


# ----------------------------------------------------------------------
# Protocol v4: pinned wires, mixed fleets, the zero-pickle guarantee
# ----------------------------------------------------------------------
class _CountingPickle:
    """Proxy that counts deserializations; everything else passes through."""

    def __init__(self, real):
        self._real = real
        self.loads_count = 0

    def loads(self, *args, **kwargs):
        self.loads_count += 1
        return self._real.loads(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestV4Wire:
    def test_v4_pinned_wire_matches_serial(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=41
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers],
                    wire_version=CODEC_PROTOCOL_VERSION,
                ),
            )
            assert all(
                server.negotiated_versions == [CODEC_PROTOCOL_VERSION]
                for server in servers
            )
        _assert_identical(serial, remote)

    def test_v3_pinned_wire_matches_serial(self, planetlab_small):
        """wire_version=3 serves exactly the legacy pickled session."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=42
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers],
                    wire_version=CODEC_PROTOCOL_VERSION - 1,
                ),
            )
            assert all(
                server.negotiated_versions
                == [CODEC_PROTOCOL_VERSION - 1]
                for server in servers
            )
        _assert_identical(serial, remote)

    def test_mixed_version_fleet_bit_identical(self, planetlab_small):
        """One pre-v4 worker and one current worker share a sweep.

        Each session gets its own codec — pickled frames to the pinned
        worker, v4 frames to the other — and the merged results are
        still bit-identical to serial.
        """
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=43
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, protocol_max=3) as legacy:
            with worker_fleet(1) as modern:
                remote = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [legacy[0].address, modern[0].address]
                    ),
                )
                assert legacy[0].negotiated_versions == [3]
                assert modern[0].negotiated_versions == [
                    CODEC_PROTOCOL_VERSION
                ]
        _assert_identical(serial, remote)

    def test_wire_pin_refuses_legacy_fleet(self, planetlab_small):
        """wire_version=4 + a fleet that can only speak v3 fails fast."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=44
        )
        with worker_fleet(2, protocol_max=3) as servers:
            with pytest.raises(ScenarioTaskError):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [server.address for server in servers],
                        wire_version=CODEC_PROTOCOL_VERSION,
                    ),
                )

    def test_v4_session_deserializes_zero_pickles(
        self, planetlab_small, monkeypatch
    ):
        """The tentpole guarantee, counter-asserted on live sweeps.

        Both wire modules get a counting ``pickle`` proxy.  A v3-pinned
        sweep proves the counter observes the legacy wire (loads > 0);
        an authenticated v4 sweep over the same fleet then runs with
        **zero** ``pickle.loads`` calls anywhere in the process — the
        worker never deserializes a pickled byte, fail-closed rather
        than by convention.
        """
        from repro.eval.dist import protocol as protocol_module
        from repro.eval.dist import worker as worker_module

        secret = b"zero-pickle-proof"
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=45
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )

        def counted_sweep(wire_version):
            counters = [
                _CountingPickle(pickle),
                _CountingPickle(pickle),
            ]
            monkeypatch.setattr(protocol_module, "pickle", counters[0])
            monkeypatch.setattr(worker_module, "pickle", counters[1])
            try:
                with worker_fleet(2, secret=secret) as servers:
                    remote = run_scenario_tasks(
                        planetlab_small,
                        tasks,
                        config=FAST,
                        executor=RemoteExecutor(
                            [server.address for server in servers],
                            secret=secret,
                            wire_version=wire_version,
                        ),
                    )
                    versions = [
                        version
                        for server in servers
                        for version in server.negotiated_versions
                    ]
            finally:
                monkeypatch.setattr(
                    protocol_module, "pickle", pickle
                )
                monkeypatch.setattr(worker_module, "pickle", pickle)
            loads = sum(counter.loads_count for counter in counters)
            return remote, versions, loads

        # Control: the pinned legacy wire visibly unpickles.
        remote, versions, loads = counted_sweep(
            CODEC_PROTOCOL_VERSION - 1
        )
        _assert_identical(serial, remote)
        assert set(versions) == {CODEC_PROTOCOL_VERSION - 1}
        assert loads > 0

        # The v4 wire: same sweep, zero deserialized pickles.
        remote, versions, loads = counted_sweep(CODEC_PROTOCOL_VERSION)
        _assert_identical(serial, remote)
        assert set(versions) == {CODEC_PROTOCOL_VERSION}
        assert loads == 0


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
def _shm_segments():
    return sorted(pathlib.Path("/dev/shm").glob(f"{SHM_PREFIX}*"))


@pytest.fixture
def ring_spy(monkeypatch):
    """Record every ring the coordinator creates (and its name)."""
    from repro.eval.dist import coordinator as coordinator_module

    created = []
    real_create = coordinator_module.create_ring

    def spy(n_slots, slot_size, **kwargs):
        ring = real_create(n_slots, slot_size, **kwargs)
        created.append(ring.name)
        return ring

    monkeypatch.setattr(coordinator_module, "create_ring", spy)
    return created


@pytest.mark.skipif(
    not pathlib.Path("/dev/shm").is_dir(),
    reason="POSIX shared memory not mounted",
)
class TestShmTransport:
    def _sweep(self, instance, tasks, servers, **executor_kwargs):
        return run_scenario_tasks(
            instance,
            tasks,
            config=FAST,
            executor=RemoteExecutor(
                [server.address for server in servers],
                **executor_kwargs,
            ),
        )

    def test_shm_sweep_bit_identical_and_rings_unlinked(
        self, planetlab_small, ring_spy
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=46
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2, capacity=2) as servers:
            remote = self._sweep(
                planetlab_small, tasks, servers, transport="shm"
            )
        _assert_identical(serial, remote)
        # Two rings per session actually moved the payloads...
        assert len(ring_spy) == 4
        # ...and every segment was unlinked at teardown.
        assert not _shm_segments()

    def test_auto_transport_detects_loopback(
        self, planetlab_small, ring_spy
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=47
        )
        with worker_fleet(1) as servers:
            self._sweep(planetlab_small, tasks, servers)  # transport="auto"
        assert len(ring_spy) == 2
        assert not _shm_segments()

    def test_socket_transport_never_creates_rings(
        self, planetlab_small, ring_spy
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=48
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1) as servers:
            remote = self._sweep(
                planetlab_small, tasks, servers, transport="socket"
            )
        _assert_identical(serial, remote)
        assert ring_spy == []

    def test_attach_failure_nacks_and_falls_back_inline(
        self, planetlab_small, ring_spy, monkeypatch
    ):
        """A worker that cannot map the rings keeps the sweep alive.

        The worker nacks the shm offer (e.g. a loopback-looking address
        that is really a tunnel to another host); the coordinator
        unlinks its rings and the session completes on inline socket
        payloads — shm is an optimisation, never a correctness
        dependency.
        """
        from repro.eval.dist import worker as worker_module

        def refuse(name, n_slots, slot_size):
            raise ShmError(f"injected attach failure for {name}")

        monkeypatch.setattr(worker_module, "attach_ring", refuse)
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=49
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2) as servers:
            remote = self._sweep(
                planetlab_small, tasks, servers, transport="shm"
            )
        _assert_identical(serial, remote)
        assert len(ring_spy) == 4  # offered, nacked...
        assert not _shm_segments()  # ...and unlinked on the nack

    def test_tiny_result_slots_fall_back_inline(self, planetlab_small):
        """Results that outgrow their ring slot ship inline instead."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=50
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, capacity=2) as servers:
            remote = self._sweep(
                planetlab_small,
                tasks,
                servers,
                transport="shm",
                shm_slot_bytes=8,
            )
        _assert_identical(serial, remote)
        assert not _shm_segments()

    def test_worker_death_with_shm_requeues(self, planetlab_small):
        """The SIGKILL-requeue guarantee holds on the shm data plane."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=51
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1) as good:
            with worker_fleet(1, fail_after_chunks=1) as flaky:
                remote = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [good[0].address, flaky[0].address],
                        transport="shm",
                    ),
                )
        _assert_identical(serial, remote)
        assert not _shm_segments()


# ----------------------------------------------------------------------
# ChunkBoard scheduling
# ----------------------------------------------------------------------
class TestChunkBoard:
    def test_claims_drain_pending_in_order(self):
        board = ChunkBoard(3, max_attempts=3)
        assert [board.claim() for _ in range(3)] == [0, 1, 2]

    def test_nonblocking_claim_returns_none_when_queue_empty(self):
        board = ChunkBoard(1, max_attempts=3)
        assert board.claim() == 0
        # Chunk 0 is outstanding, not settled: a pipelining worker must
        # not stall here waiting for the straggler clock.
        assert board.claim(10.0, block=False) is None

    def test_speculation_wait_tracks_oldest_inflight_chunk(self):
        """The idle wait is computed, not a fixed timeout/2 poll."""
        board = ChunkBoard(2, max_attempts=3)
        assert board.claim() == 0
        import time as time_module

        now = time_module.monotonic()
        started = board.outstanding[0]
        wait = board._speculation_wait(now, 10.0)
        # Chunk 0 just started: the wait runs to its eligibility, not
        # to a generic poll interval.
        assert wait == pytest.approx(started + 10.0 - now, abs=0.05)
        # No eligible in-flight chunk → sleep until notified.
        board.claim()  # chunk 1 outstanding too
        board.attempts[0] = board.max_attempts
        board.attempts[1] = board.max_attempts
        assert board._speculation_wait(now, 10.0) is None

    def test_settle_wakes_blocked_claimers(self):
        board = ChunkBoard(1, max_attempts=3)
        assert board.claim() == 0
        results = []

        def idle_claim():
            results.append(board.claim(straggler_timeout=30.0))

        thread = threading.Thread(target=idle_claim)
        thread.start()
        time.sleep(0.1)
        board.settle(0)  # wakes the claimer immediately: all settled
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]

    @staticmethod
    def _await_idle(board, count, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with board.condition:
                if len(board._idle) >= count:
                    return
            time.sleep(0.005)
        raise AssertionError(f"{count} idle claimer(s) never parked")

    def test_straggler_duplicate_steers_to_fastest_idle_worker(self):
        # max_attempts=2: after the duplicate is granted the chunk can
        # never ripen again, so the slow claimer provably stays idle
        # because of *steering*, not because it ran out of attempts.
        board = ChunkBoard(1, max_attempts=2)
        assert board.claim(capacity=1) == 0  # now outstanding
        claims = {}

        def claimer(name, capacity):
            claims[name] = board.claim(
                straggler_timeout=0.3, capacity=capacity
            )

        # Park the fast claimer first and *wait until it is registered
        # idle* before starting the slow one, so the slow claimer can
        # never observe an empty idle set and grab the duplicate
        # itself — the ripeness race would otherwise flake on a loaded
        # machine.
        fast = threading.Thread(target=claimer, args=("fast", 4))
        fast.start()
        self._await_idle(board, 1)
        slow = threading.Thread(target=claimer, args=("slow", 1))
        slow.start()
        self._await_idle(board, 2)
        deadline = time.monotonic() + 10.0
        while "fast" not in claims and time.monotonic() < deadline:
            time.sleep(0.01)  # chunk ripens ~0.3 s after its claim
        assert claims.get("fast") == 0
        assert "slow" not in claims  # still deferring
        board.settle(0)
        slow.join(timeout=5)
        fast.join(timeout=5)
        assert claims["slow"] is None

    def test_duplicates_bounded_by_max_attempts(self):
        board = ChunkBoard(1, max_attempts=2)
        assert board.claim(0.01, capacity=1) == 0
        with board.condition:
            board.outstanding[0] -= 1.0
        # Second (and last allowed) attempt is granted...
        assert board.claim(0.01, capacity=1, block=True) == 0
        # ...after which the chunk is never duplicated again: the next
        # idle claim waits for a settle instead of a third grant.
        settled = threading.Timer(0.3, board.settle, args=(0,))
        settled.start()
        assert board.claim(0.01, capacity=1) is None
        settled.join()

    def test_holding_skips_own_inflight_chunk_without_charging(self):
        board = ChunkBoard(2, max_attempts=3)
        assert board.claim() == 0
        board.requeue(0)  # a dead duplicate holder put it back
        # The holder's own top-up must not get chunk 0 again — and the
        # skipped token must stay queued (uncharged) for other workers.
        assert board.claim(block=False, holding={0}) == 1
        assert board.claim(block=False, holding={0, 1}) is None
        assert board.attempts[0] == 1  # no phantom attempt
        assert board.claim(block=False) == 0  # another worker takes it
        assert board.attempts[0] == 2

    def test_requeue_puts_chunk_at_front(self):
        board = ChunkBoard(3, max_attempts=3)
        assert board.claim() == 0
        assert board.claim() == 1
        board.requeue(1)
        assert board.claim() == 1  # ahead of chunk 2
        assert board.claim() == 2


# ----------------------------------------------------------------------
# Robustness surfaces: heartbeat gating, degradation stats (S2), ENOSPC
# fallback (S3)
# ----------------------------------------------------------------------
class TestRobustnessSurfaces:
    def test_v3_worker_gates_heartbeat_off_and_stays_identical(
        self, planetlab_small
    ):
        """Heartbeats are feature-negotiated, never assumed.

        A pre-v4 worker (``protocol_max=3``) cannot speak control
        frames; a coordinator configured with an aggressive heartbeat
        interval must leave liveness unarmed for that session rather
        than time it out — and the sweep stays bit-identical.
        """
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=61
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2, protocol_max=3) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                heartbeat_interval=0.2,
            )
            remote = run_scenario_tasks(
                planetlab_small, tasks, config=FAST, executor=executor
            )
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.heartbeat_timeouts == 0
        assert stats.worker_losses == 0

    @pytest.mark.skipif(
        not pathlib.Path("/dev/shm").is_dir(),
        reason="POSIX shared memory not mounted",
    )
    def test_inline_fallbacks_surface_in_sweep_stats(self, planetlab_small):
        """S2: shm→inline degradation is counted, not silent.

        Result slots far too small for any payload force every result
        onto the inline socket path; the sweep stats must say so.
        """
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=62
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, capacity=2) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                transport="shm",
                shm_slot_bytes=8,
            )
            remote = run_scenario_tasks(
                planetlab_small, tasks, config=FAST, executor=executor
            )
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.shm_sessions == 1
        assert stats.shm_inline_results > 0
        assert sum(stats.inline_by_session.values()) > 0
        assert "inline" in stats.render()

    @pytest.mark.skipif(
        not pathlib.Path("/dev/shm").is_dir(),
        reason="POSIX shared memory not mounted",
    )
    def test_shm_enospc_falls_back_to_socket_bit_identical(
        self, planetlab_small, ring_spy
    ):
        """S3: an exhausted /dev/shm degrades to sockets, not failure.

        The ``shm-enospc`` chaos fault makes every ring creation fail
        exactly as a full tmpfs would (``ENOSPC`` inside
        ``create_ring``); the session must proceed on inline socket
        payloads with no segments left behind.
        """
        from repro.eval.dist import faults

        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=63
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers], transport="shm"
            )
            with faults.installed(FaultPlan.parse("shm-enospc")):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
        _assert_identical(serial, remote)
        assert executor.last_sweep_stats.shm_sessions == 0
        assert not _shm_segments()
