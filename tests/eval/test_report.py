"""Unit tests for report rendering."""

import numpy as np

from repro.eval.figures import CdfResult, SweepPoint, SweepResult
from repro.eval.metrics import ErrorStats
from repro.eval.report import render_cdf, render_sweep


def make_sweep():
    stats_a = ErrorStats(mean=0.02, p90=0.05, max=0.2, n_links=100)
    stats_b = ErrorStats(mean=0.08, p90=0.2, max=0.9, n_links=100)
    return SweepResult(
        points=(
            SweepPoint(
                congested_fraction=0.05,
                correlation=stats_a,
                independence=stats_b,
            ),
        )
    )


class TestRenderSweep:
    def test_contains_values(self):
        text = render_sweep(make_sweep())
        assert "5%" in text
        assert "0.0200" in text
        assert "0.2000" in text

    def test_custom_title(self):
        text = render_sweep(make_sweep(), title="Custom")
        assert text.splitlines()[0] == "Custom"

    def test_default_title_mentions_figure(self):
        assert "Figure 3" in render_sweep(make_sweep())


class TestRenderCdf:
    def test_contains_curves(self):
        result = CdfResult(
            label="demo",
            grid=np.array([0.1, 1.0]),
            curves={
                "correlation": np.array([0.9, 1.0]),
                "independence": np.array([0.5, 1.0]),
            },
        )
        text = render_cdf(result)
        assert "cdf[correlation]" in text
        assert "0.9000" in text
        assert "demo" in text
