"""Unit tests for the Figure-4 unidentifiable-links scenario."""

import numpy as np
import pytest

from repro.core.identifiability import structurally_unidentifiable_nodes
from repro.eval.unidentifiable import make_unidentifiable_scenario


class TestConstruction:
    def test_unidentifiable_fraction_reached(self, planetlab_small):
        scenario = make_unidentifiable_scenario(
            planetlab_small,
            congested_fraction=0.10,
            unidentifiable_fraction=0.5,
            seed=1,
        )
        meta = scenario.metadata
        assert meta["achieved_unidentifiable"] >= meta[
            "target_unidentifiable"
        ]

    def test_truth_structure_violates_assumption4(self, planetlab_small):
        scenario = make_unidentifiable_scenario(
            planetlab_small,
            congested_fraction=0.10,
            unidentifiable_fraction=0.25,
            seed=2,
        )
        offenders = structurally_unidentifiable_nodes(
            planetlab_small.topology,
            scenario.truth_model.correlation,
        )
        assert offenders

    def test_algorithm_treats_unidentifiable_as_singletons(
        self, planetlab_small
    ):
        scenario = make_unidentifiable_scenario(
            planetlab_small,
            congested_fraction=0.10,
            unidentifiable_fraction=0.25,
            seed=3,
        )
        unidentifiable = scenario.metadata["unidentifiable_links"]
        for link_id in unidentifiable:
            assert (
                len(
                    scenario.algorithm_correlation.set_of(link_id)
                )
                == 1
            )

    def test_unidentifiable_links_are_congested(self, planetlab_small):
        scenario = make_unidentifiable_scenario(
            planetlab_small,
            congested_fraction=0.10,
            unidentifiable_fraction=0.5,
            seed=4,
        )
        unidentifiable = scenario.metadata["unidentifiable_links"]
        assert unidentifiable <= scenario.congested_links

    def test_node_clumps_congest_jointly(self, planetlab_small):
        scenario = make_unidentifiable_scenario(
            planetlab_small,
            congested_fraction=0.10,
            unidentifiable_fraction=0.5,
            seed=5,
        )
        truth = scenario.truth_model
        unidentifiable = sorted(
            scenario.metadata["unidentifiable_links"]
        )
        # Pick two unidentifiable links from the same (true) set.
        correlation = truth.correlation
        by_set = {}
        for link_id in unidentifiable:
            by_set.setdefault(
                correlation.set_index_of(link_id), []
            ).append(link_id)
        clump = next(
            links for links in by_set.values() if len(links) >= 2
        )
        marginals = truth.link_marginals()
        joint = truth.joint(set(clump[:2]))
        assert joint > marginals[clump[0]] * marginals[clump[1]]

    def test_zero_fraction_degenerates_to_clustered(
        self, planetlab_small
    ):
        scenario = make_unidentifiable_scenario(
            planetlab_small,
            congested_fraction=0.10,
            unidentifiable_fraction=0.0,
            seed=6,
        )
        assert scenario.metadata["achieved_unidentifiable"] == 0
        assert (
            scenario.metadata["unidentifiable_links"] == frozenset()
        )

    def test_deterministic(self, planetlab_small):
        a = make_unidentifiable_scenario(
            planetlab_small, unidentifiable_fraction=0.25, seed=7
        )
        b = make_unidentifiable_scenario(
            planetlab_small, unidentifiable_fraction=0.25, seed=7
        )
        assert a.congested_links == b.congested_links
        assert np.allclose(
            a.truth_model.link_marginals(),
            b.truth_model.link_marginals(),
        )
