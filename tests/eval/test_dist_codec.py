"""Protocol v4 wire codec: JSON frames, context/task codecs, rng specs."""

import contextlib
import socket

import numpy as np
import pytest

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.dist import (
    CodecError,
    ConnectionClosed,
    MAGIC_V4,
    ProtocolError,
    decode_context,
    decode_tasks,
    encode_context,
    encode_tasks,
    recv_json_message,
    send_json_message,
)
from repro.eval.parallel import ScenarioTask, scenario_tasks
from repro.io import instance_fingerprint
from repro.simulate.experiment import ExperimentConfig
from repro.utils.rng import (
    SeedSpec,
    as_generator,
    generator_from_spec,
    generator_spec,
    spawn_children,
)


@contextlib.contextmanager
def _pipe():
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# v4 framing (JSON header, binary payload)
# ----------------------------------------------------------------------
class TestJsonFraming:
    def test_round_trip_header_and_payload(self):
        with _pipe() as (left, right):
            payload = bytes(range(256)) * 64
            send_json_message(
                left,
                {"type": "chunk", "chunk": 3, "ack": [0, 2]},
                payload,
            )
            header, received = recv_json_message(right)
        assert header == {"type": "chunk", "chunk": 3, "ack": [0, 2]}
        assert received == payload

    def test_round_trip_empty_payload(self):
        with _pipe() as (left, right):
            send_json_message(left, {"type": "end"})
            header, received = recv_json_message(right)
        assert header["type"] == "end"
        assert received == b""

    def test_header_is_utf8_json_not_pickle(self):
        with _pipe() as (left, right):
            send_json_message(left, {"type": "ready", "protocol": 4})
            magic = right.recv(4, socket.MSG_PEEK)
            assert magic == MAGIC_V4
            raw = right.recv(1 << 16)
        # Past the 20-byte prefix the header reads as plain JSON text.
        assert raw[20:].startswith(b'{"type":"ready"')

    def test_unencodable_header_raises_before_sending(self):
        with _pipe() as (left, right):
            with pytest.raises(TypeError):
                send_json_message(left, {"type": "chunk", "bad": {1, 2}})
            left.close()
            with pytest.raises(ConnectionClosed):
                recv_json_message(right)

    def test_legacy_magic_rejected_on_v4_receive(self):
        with _pipe() as (left, right):
            left.sendall(b"RTD1" + bytes(16))
            with pytest.raises(ProtocolError, match="magic"):
                recv_json_message(right)

    def test_malformed_json_header_rejected(self):
        import struct

        blob = b"not json at all"
        with _pipe() as (left, right):
            left.sendall(
                struct.pack("!4sQQ", MAGIC_V4, len(blob), 0) + blob
            )
            with pytest.raises(ProtocolError, match="malformed"):
                recv_json_message(right)

    def test_non_object_header_rejected(self):
        import struct

        blob = b'["type","chunk"]'
        with _pipe() as (left, right):
            left.sendall(
                struct.pack("!4sQQ", MAGIC_V4, len(blob), 0) + blob
            )
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_json_message(right)


# ----------------------------------------------------------------------
# Init-context codec
# ----------------------------------------------------------------------
class TestContextCodec:
    def test_round_trip_preserves_fingerprint_and_dataclasses(
        self, planetlab_small
    ):
        config = ExperimentConfig(n_snapshots=64, packets_per_path=100)
        options = AlgorithmOptions()
        blob = encode_context((planetlab_small, config, options))
        (instance, got_config, got_options), fingerprint = decode_context(
            blob
        )
        assert fingerprint == instance_fingerprint(planetlab_small)
        # The decoded instance fingerprints identically, so worker-side
        # cache keys and compute inputs match the coordinator's.
        assert instance_fingerprint(instance) == fingerprint
        assert got_config == config
        assert got_options == options

    def test_none_config_and_options_round_trip(self, planetlab_small):
        blob = encode_context((planetlab_small, None, None))
        (_, config, options), _ = decode_context(blob)
        assert config is None
        assert options is None

    def test_non_instance_rejected(self):
        with pytest.raises(CodecError, match="TomographyInstance"):
            encode_context(("nope", None, None))

    def test_wrong_config_type_rejected(self, planetlab_small):
        class NotConfig:
            pass

        with pytest.raises(CodecError, match="ExperimentConfig"):
            encode_context((planetlab_small, NotConfig(), None))

    def test_malformed_payload_rejected(self):
        with pytest.raises(CodecError, match="malformed"):
            decode_context(b"\xff\xfe not even text")
        with pytest.raises(CodecError, match="codec"):
            decode_context(b'{"codec": 99}')

    def test_missing_fingerprint_rejected(self):
        with pytest.raises(CodecError, match="fingerprint"):
            decode_context(b'{"codec": 1, "instance": {}}')


# ----------------------------------------------------------------------
# Task-chunk codec
# ----------------------------------------------------------------------
def _assert_seed_twin(original, decoded):
    """Bit-exact in both draw behaviour and spawn behaviour.

    ``decoded`` may be any seed-like (the task codec yields lazy
    :class:`SeedSpec` values); it is coerced the same way every engine
    consumer coerces task seeds.
    """
    if original is None:
        assert decoded is None
        return
    decoded = as_generator(decoded)
    draw_a = original.random(8)
    draw_b = decoded.random(8)
    assert np.array_equal(draw_a, draw_b)
    spawn_a = spawn_children(original, 2)
    spawn_b = spawn_children(decoded, 2)
    for child_a, child_b in zip(spawn_a, spawn_b):
        assert np.array_equal(child_a.random(4), child_b.random(4))


class TestTaskCodec:
    def test_round_trip_real_sweep_tasks(self):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=7
        )
        decoded = decode_tasks(encode_tasks(tasks))
        assert len(decoded) == len(tasks)
        for task, twin in zip(tasks, decoded):
            assert twin.group == task.group
            assert twin.factory == task.factory
            assert twin.factory_kwargs == task.factory_kwargs
            _assert_seed_twin(task.scenario_seed, twin.scenario_seed)
            _assert_seed_twin(task.run_seed, twin.run_seed)

    def test_decoded_seeds_are_lazy_specs(self):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=13
        )
        decoded = decode_tasks(encode_tasks(tasks))
        for twin in decoded:
            # Decode must not pay numpy generator reconstruction; the
            # engine materialises seeds via as_generator() at execution.
            assert isinstance(twin.scenario_seed, SeedSpec)
            assert isinstance(twin.run_seed, SeedSpec)

    def test_lazy_seed_survives_clone_then_coerce(self):
        # _execute_task clones task seeds before handing them to the
        # factories; the lazy spec must behave identically through that
        # exact path.
        import copy

        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=1, seed=14
        )
        (twin,) = decode_tasks(encode_tasks(tasks[:1]))
        clone_a = as_generator(copy.deepcopy(twin.scenario_seed))
        clone_b = as_generator(copy.deepcopy(twin.scenario_seed))
        assert np.array_equal(clone_a.random(8), clone_b.random(8))
        _assert_seed_twin(tasks[0].scenario_seed, twin.scenario_seed)

    def test_decoded_tasks_re_encode_identically(self):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=15
        )
        blob = encode_tasks(tasks)
        assert encode_tasks(decode_tasks(blob)) == blob

    def test_decoded_tasks_get_private_kwargs_dicts(self):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=8
        )
        decoded = decode_tasks(encode_tasks(tasks))
        decoded[0].factory_kwargs["congested_fraction"] = 0.9
        assert decoded[1].factory_kwargs["congested_fraction"] == 0.1

    def test_tuples_in_kwargs_survive_exactly(self):
        task = ScenarioTask(
            group=0,
            factory="clustered",
            factory_kwargs={"pair": (1, 2), "nested": [("a", 3)]},
        )
        (twin,) = decode_tasks(encode_tasks([task]))
        assert twin.factory_kwargs["pair"] == (1, 2)
        assert isinstance(twin.factory_kwargs["pair"], tuple)
        assert twin.factory_kwargs["nested"] == [("a", 3)]
        assert isinstance(twin.factory_kwargs["nested"][0], tuple)

    def test_none_seeds_round_trip(self):
        task = ScenarioTask(group=1, factory="clustered")
        (twin,) = decode_tasks(encode_tasks([task]))
        assert twin.scenario_seed is None
        assert twin.run_seed is None

    def test_mid_stream_generator_state_round_trips(self):
        gen = as_generator(42)
        gen.random(17)  # advance past the seeded origin
        task = ScenarioTask(group=0, factory="clustered", run_seed=gen)
        import copy

        reference = copy.deepcopy(gen)
        (twin,) = decode_tasks(encode_tasks([task]))
        _assert_seed_twin(reference, twin.run_seed)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bad": {1, 2, 3}},
            {"bad": object()},
            {"bad": np.float32(1.5)},
            {1: "non-string key"},
            {"__tuple__": ["reserved key"]},
        ],
    )
    def test_unrepresentable_kwargs_raise_codec_error(self, kwargs):
        task = ScenarioTask(
            group=0, factory="clustered", factory_kwargs=kwargs
        )
        with pytest.raises(CodecError):
            encode_tasks([task])

    def test_non_task_rejected(self):
        with pytest.raises(CodecError, match="ScenarioTask"):
            encode_tasks(["not a task"])

    def test_non_pcg64_seed_raises_codec_error(self):
        exotic = np.random.Generator(np.random.MT19937(5))
        task = ScenarioTask(
            group=0, factory="clustered", scenario_seed=exotic
        )
        with pytest.raises(CodecError, match="seed"):
            encode_tasks([task])

    def test_trailing_bytes_rejected(self):
        blob = encode_tasks(
            [ScenarioTask(group=0, factory="clustered")]
        )
        with pytest.raises(CodecError, match="trailing"):
            decode_tasks(blob + b"\x00")

    def test_wrong_codec_version_rejected(self):
        blob = bytearray(
            encode_tasks([ScenarioTask(group=0, factory="clustered")])
        )
        blob[0] = 99
        with pytest.raises(CodecError, match="codec"):
            decode_tasks(bytes(blob))

    def test_truncated_payload_rejected(self):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=1, seed=9
        )
        blob = encode_tasks(tasks)
        with pytest.raises(CodecError, match="malformed"):
            decode_tasks(blob[: len(blob) // 2])


# ----------------------------------------------------------------------
# Generator spec helpers (the codec's seed transport)
# ----------------------------------------------------------------------
class TestGeneratorSpec:
    def test_spec_round_trip_draws_and_spawns(self):
        original = as_generator(123)
        original.random(5)
        twin = generator_from_spec(generator_spec(original))
        _assert_seed_twin(original, twin)

    def test_spawned_child_round_trips(self):
        (child,) = spawn_children(11, 1)
        twin = generator_from_spec(generator_spec(child))
        _assert_seed_twin(child, twin)

    def test_spawn_counter_is_preserved(self):
        gen = as_generator(3)
        spawn_children(gen, 2)  # advance the children counter
        twin = generator_from_spec(generator_spec(gen))
        _assert_seed_twin(gen, twin)

    def test_non_generator_rejected(self):
        with pytest.raises(ValueError, match="Generator"):
            generator_spec(17)

    def test_non_pcg64_rejected(self):
        with pytest.raises(ValueError, match="PCG64"):
            generator_spec(np.random.Generator(np.random.MT19937(1)))
