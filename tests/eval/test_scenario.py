"""Unit tests for the Figure-3 scenario constructor."""

import numpy as np
import pytest

from repro.eval.scenario import (
    HIGH_CORRELATION_RANGE,
    LOOSE_CORRELATION_RANGE,
    make_clustered_scenario,
)
from repro.exceptions import GenerationError


class TestTargets:
    def test_congested_fraction_respected(self, planetlab_small):
        scenario = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=1
        )
        target = round(0.10 * planetlab_small.n_links)
        achieved = len(scenario.congested_links)
        assert abs(achieved - target) <= max(2, 0.2 * target)

    def test_high_correlation_cluster_sizes(self, planetlab_small):
        scenario = make_clustered_scenario(
            planetlab_small,
            congested_fraction=0.10,
            per_set_range=HIGH_CORRELATION_RANGE,
            seed=2,
        )
        correlation = scenario.truth_model.correlation
        counts = {}
        for link_id in scenario.congested_links:
            counts.setdefault(
                correlation.set_index_of(link_id), 0
            )
            counts[correlation.set_index_of(link_id)] += 1
        # "more than 2 congested links per correlation set" for the bulk
        # of the congested mass (fallback fill may be smaller).
        clustered = sum(c for c in counts.values() if c >= 3)
        assert clustered >= 0.6 * len(scenario.congested_links)

    def test_loose_correlation_cluster_sizes(self, planetlab_small):
        scenario = make_clustered_scenario(
            planetlab_small,
            congested_fraction=0.10,
            per_set_range=LOOSE_CORRELATION_RANGE,
            seed=3,
        )
        correlation = scenario.truth_model.correlation
        counts = {}
        for link_id in scenario.congested_links:
            index = correlation.set_index_of(link_id)
            counts[index] = counts.get(index, 0) + 1
        assert max(counts.values()) <= 2

    def test_strict_raises_when_unreachable(self, instance_1a):
        # Fig 1(a)'s largest set has 2 links: >2 per set is impossible.
        with pytest.raises(GenerationError):
            make_clustered_scenario(
                instance_1a,
                congested_fraction=1.0,
                per_set_range=(3, 6),
                strict=True,
                seed=4,
            )

    def test_invalid_range_rejected(self, instance_1a):
        with pytest.raises(GenerationError):
            make_clustered_scenario(
                instance_1a, per_set_range=(2, 1), seed=0
            )


class TestGroundTruth:
    def test_marginals_positive_exactly_on_congested(
        self, planetlab_small
    ):
        scenario = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=5
        )
        truth = scenario.truth_model.link_marginals()
        positive = set(np.flatnonzero(truth > 0))
        assert positive == set(scenario.congested_links)

    def test_within_set_positive_correlation(self, planetlab_small):
        scenario = make_clustered_scenario(
            planetlab_small,
            congested_fraction=0.15,
            per_set_range=HIGH_CORRELATION_RANGE,
            seed=6,
        )
        model = scenario.truth_model
        correlation = model.correlation
        # Find a set with >= 2 congested links and check joint > product.
        by_set = {}
        for link_id in scenario.congested_links:
            by_set.setdefault(
                correlation.set_index_of(link_id), []
            ).append(link_id)
        multi = next(
            links for links in by_set.values() if len(links) >= 2
        )
        a, b = multi[:2]
        joint = model.joint({a, b})
        truth = model.link_marginals()
        assert joint > truth[a] * truth[b]

    def test_algorithm_structure_matches_truth_in_fig3(
        self, planetlab_small
    ):
        scenario = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=7
        )
        assert (
            scenario.algorithm_correlation
            is planetlab_small.correlation
        )

    def test_deterministic_given_seed(self, planetlab_small):
        a = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=8
        )
        b = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=8
        )
        assert a.congested_links == b.congested_links
        assert np.allclose(
            a.truth_model.link_marginals(),
            b.truth_model.link_marginals(),
        )

    def test_metadata(self, planetlab_small):
        scenario = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=9
        )
        assert scenario.metadata["congested_fraction"] == 0.10
        assert scenario.metadata["achieved"] == len(
            scenario.congested_links
        )
