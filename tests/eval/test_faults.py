"""Chaos-injection plane: every fault class is detected and survived.

Each sweep-level test here follows one shape: run the sweep serially,
run it again under an installed :class:`FaultPlan`, and require the
results bit-identical — faults may cost retries, requeues or fallbacks,
never correctness.  Frame faults are scoped by frame *type* because the
in-process fleet shares the process-global plan: ``result``/``pong``
frames are worker sends, ``chunk``/``ping``/``context`` frames are
coordinator sends.
"""

import contextlib
import os
import pathlib
import threading
import time

import numpy as np
import pytest

from repro.eval.dist import (
    FaultPlan,
    FaultSpecError,
    LocalLauncher,
    RemoteExecutor,
    WorkerServer,
    faults,
)
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)

pytestmark = pytest.mark.timeout(120)


@contextlib.contextmanager
def worker_fleet(count=2, /, **kwargs):
    kwargs.setdefault("max_sessions", 1)
    servers = [WorkerServer(**kwargs) for _ in range(count)]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=10)


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for errors_a, errors_b in zip(reference, candidate):
        assert set(errors_a) == set(errors_b)
        for name in errors_a:
            assert np.array_equal(errors_a[name], errors_b[name])


def _tasks(seed, n_trials=3):
    return scenario_tasks(
        "clustered", {"congested_fraction": 0.1}, n_trials=n_trials, seed=seed
    )


def _serial(instance, tasks):
    return run_scenario_tasks(instance, tasks, config=FAST, workers=1)


class TestFaultSpecParsing:
    @pytest.mark.parametrize(
        "spec",
        [
            "bogus-fault",
            "frame-drop:nth",  # key without value
            "frame-drop:seconds=2",  # not a knob frame-drop takes
            "frame-delay:seconds=abc",  # non-numeric value
            "worker-kill",  # chunk faults require chunk=K
            "compute-stall:seconds=1",
            "",
            "  ,  ",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_spec_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "frame-corrupt:type=result:nth=2,connect-refuse:n=1,"
            "worker-freeze:chunk=3:seconds=1.5"
        )
        assert len(plan.faults) == 3
        assert plan.frame_send_action({"type": "chunk"}) is None
        # nth=2: the first matching result frame passes untouched...
        assert plan.frame_send_action({"type": "result"}) is None
        # ...the second is corrupted, and the counter never re-fires.
        assert plan.frame_send_action({"type": "result"}) == "corrupt"
        assert plan.frame_send_action({"type": "result"}) is None
        assert plan.refuse_connect() is True
        assert plan.refuse_connect() is False  # n=1 exhausted
        assert plan.chunk_fault(1) is None
        assert plan.chunk_fault(3) == ("freeze", 1.5)

    def test_env_install_round_trip(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV, "connect-refuse:n=2")
        monkeypatch.setenv(faults.CHAOS_SEED_ENV, "7")
        plan = faults.plan_from_env(allow_process_faults=True)
        assert plan is not None and plan.allow_process_faults
        monkeypatch.delenv(faults.CHAOS_ENV)
        assert faults.plan_from_env() is None

    def test_installed_scopes_and_restores(self):
        outer = FaultPlan.parse("connect-refuse:n=1")
        with faults.installed(outer):
            assert faults.active_plan() is outer
            with faults.installed(FaultPlan.parse("shm-enospc")):
                assert faults.active_plan() is not outer
            assert faults.active_plan() is outer
        assert faults.active_plan() is None


class TestFrameFaults:
    def _chaos_sweep(self, instance, tasks, spec, n_workers=2, **kwargs):
        with worker_fleet(n_workers) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                transport="socket",
                **kwargs,
            )
            with faults.installed(FaultPlan.parse(spec)):
                remote = run_scenario_tasks(
                    instance, tasks, config=FAST, executor=executor
                )
        return remote, executor.last_sweep_stats

    def test_corrupt_result_frame_is_detected_and_requeued(
        self, planetlab_small
    ):
        tasks = _tasks(seed=80)
        serial = _serial(planetlab_small, tasks)
        remote, stats = self._chaos_sweep(
            planetlab_small, tasks, "frame-corrupt:type=result:nth=1"
        )
        _assert_identical(serial, remote)
        assert stats.worker_losses >= 1
        assert stats.requeued_chunks >= 1

    def test_truncated_result_frame_is_detected_and_requeued(
        self, planetlab_small
    ):
        tasks = _tasks(seed=81)
        serial = _serial(planetlab_small, tasks)
        remote, stats = self._chaos_sweep(
            planetlab_small, tasks, "frame-truncate:type=result:nth=1"
        )
        _assert_identical(serial, remote)
        assert stats.worker_losses >= 1

    def test_corrupt_chunk_frame_survives_worker_side_validation(
        self, planetlab_small
    ):
        """The coordinator's own sends are fair game too: a corrupted
        chunk frame kills that session at the worker and the chunk is
        recomputed elsewhere."""
        tasks = _tasks(seed=82)
        serial = _serial(planetlab_small, tasks)
        remote, stats = self._chaos_sweep(
            planetlab_small, tasks, "frame-corrupt:type=chunk:nth=1"
        )
        _assert_identical(serial, remote)
        assert stats.requeued_chunks >= 1

    def test_dropped_result_frame_hits_the_chunk_deadline(
        self, planetlab_small
    ):
        """A swallowed result is invisible to heartbeats — the worker
        keeps beating — so the per-chunk deadline is what recovers it."""
        tasks = _tasks(seed=83)
        serial = _serial(planetlab_small, tasks)
        started = time.monotonic()
        remote, stats = self._chaos_sweep(
            planetlab_small,
            tasks,
            "frame-drop:type=result:nth=1",
            chunk_deadline=1.0,
        )
        elapsed = time.monotonic() - started
        _assert_identical(serial, remote)
        assert stats.deadline_timeouts >= 1
        assert stats.requeued_chunks >= 1
        assert elapsed < 60


class TestConnectFaults:
    def test_refused_connect_is_retried_with_backoff(self, planetlab_small):
        tasks = _tasks(seed=84)
        serial = _serial(planetlab_small, tasks)
        with worker_fleet(1) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                connect_attempts=3,
            )
            with faults.installed(FaultPlan.parse("connect-refuse:n=1")):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.connect_retries >= 1
        assert stats.sessions == 1

    def test_unreachable_fleet_degrades_to_serial(self, planetlab_small):
        """Every connect refused, retries exhausted: ``--on-fleet-loss
        serial`` finishes the sweep in-process instead of failing."""
        tasks = _tasks(seed=85)
        serial = _serial(planetlab_small, tasks)
        with worker_fleet(1) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                connect_attempts=2,
                on_fleet_loss="serial",
            )
            with faults.installed(FaultPlan.parse("connect-refuse")):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.sessions == 0
        assert stats.serial_fallback_chunks == len(tasks)


class TestWorkerFaults:
    def test_frozen_worker_trips_the_heartbeat(self, planetlab_small):
        """SIGSTOP-in-miniature: the session stays connected but goes
        completely silent (no pongs either).  Detection must come from
        the liveness clock, well before the freeze ends."""
        tasks = _tasks(seed=86)
        serial = _serial(planetlab_small, tasks)
        freeze = 8.0
        started = time.monotonic()
        # The plan is process-global, so *every* in-process worker
        # freezes at its first chunk: the whole fleet goes silent and
        # the serial fallback finishes the sweep after detection.
        with worker_fleet(2) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                heartbeat_interval=0.5,
                on_fleet_loss="serial",
            )
            with faults.installed(
                FaultPlan.parse(f"worker-freeze:chunk=1:seconds={freeze}")
            ):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
            elapsed = time.monotonic() - started
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.heartbeat_timeouts >= 1
        assert stats.requeued_chunks >= 1
        # The sweep finished while the frozen worker was still frozen:
        # detection came from the heartbeat, not from outwaiting the
        # stall.
        assert elapsed < freeze

    def test_stalled_compute_trips_the_deadline_not_the_heartbeat(
        self, planetlab_small
    ):
        """The complement of the freeze: the worker's heartbeat thread
        keeps beating while its compute is wedged, so only the chunk
        deadline can recover the sweep."""
        tasks = _tasks(seed=87)
        serial = _serial(planetlab_small, tasks)
        stall = 8.0
        started = time.monotonic()
        with worker_fleet(2) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                heartbeat_interval=0.5,
                chunk_deadline=1.5,
                on_fleet_loss="serial",
            )
            with faults.installed(
                FaultPlan.parse(f"compute-stall:chunk=1:seconds={stall}")
            ):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
            elapsed = time.monotonic() - started
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.deadline_timeouts >= 1
        assert elapsed < stall

    def test_in_process_kill_degrades_to_session_drop(self, planetlab_small):
        """``worker-kill`` without ``allow_process_faults`` (an
        in-process plan) must never take the test process down — it
        degrades to dropping the session, and the fleet-loss fallback
        completes the sweep."""
        tasks = _tasks(seed=88)
        serial = _serial(planetlab_small, tasks)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                on_fleet_loss="serial",
            )
            with faults.installed(FaultPlan.parse("worker-kill:chunk=1")):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
        _assert_identical(serial, remote)
        assert executor.last_sweep_stats.serial_fallback_chunks >= 1


@pytest.mark.skipif(
    not pathlib.Path("/dev/shm").is_dir(),
    reason="POSIX shared memory not mounted",
)
class TestShmFaults:
    def test_corrupted_slot_fails_the_crc_and_requeues(
        self, planetlab_small
    ):
        """One shm slot is damaged after its CRC is stamped; whichever
        side reads it gets a checksum mismatch — a detected, retriable
        transport error, not silent data corruption."""
        tasks = _tasks(seed=89)
        serial = _serial(planetlab_small, tasks)
        with worker_fleet(2) as servers:
            executor = RemoteExecutor(
                [server.address for server in servers],
                transport="shm",
            )
            with faults.installed(FaultPlan.parse("shm-corrupt:nth=1")):
                remote = run_scenario_tasks(
                    planetlab_small, tasks, config=FAST, executor=executor
                )
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.shm_sessions >= 1
        assert stats.worker_losses >= 1
        assert stats.requeued_chunks >= 1
        assert not sorted(
            pathlib.Path("/dev/shm").glob("repro-ring-*")
        ), "rings must be unlinked even on a corrupted-session teardown"


class TestRealProcessFaults:
    @pytest.mark.timeout(300)
    def test_sigstopped_worker_is_detected_and_reaped(
        self, planetlab_small, monkeypatch
    ):
        """The acceptance scenario end to end, with real processes:
        autolaunched workers SIGSTOP themselves at their first chunk
        (chaos rides the child environment), the heartbeat detects the
        hang, the fleet-loss fallback finishes the sweep, and the
        staged teardown (SIGCONT+SIGTERM, then SIGKILL) reaps the
        stopped processes."""
        monkeypatch.setenv(faults.CHAOS_ENV, "worker-sigstop:chunk=1")
        tasks = _tasks(seed=90)
        serial = _serial(planetlab_small, tasks)
        launcher = LocalLauncher(2)
        specs = launcher.launch()
        pids = [worker.pid for worker in launcher.workers]
        try:
            executor = RemoteExecutor(
                specs,
                heartbeat_interval=0.5,
                connect_attempts=1,
                on_fleet_loss="serial",
            )
            started = time.monotonic()
            remote = run_scenario_tasks(
                planetlab_small, tasks, config=FAST, executor=executor
            )
            elapsed = time.monotonic() - started
        finally:
            launcher.shutdown()
        _assert_identical(serial, remote)
        stats = executor.last_sweep_stats
        assert stats.heartbeat_timeouts >= 1
        assert stats.serial_fallback_chunks >= 1
        # Detection came from the liveness clock: the stopped workers
        # never resumed on their own, yet the sweep finished promptly.
        assert elapsed < 60
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
