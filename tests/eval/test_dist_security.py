"""Wire security: shared-secret handshake, TLS, fail-closed semantics.

The invariant every test here defends: when a secret (or TLS) is
configured, nothing a peer sends is unpickled — header or payload —
until the handshake proves the peer holds the same configuration, and
every mismatch fails *closed* with a clean
:class:`~repro.exceptions.DistSecurityError` instead of a hang, a
traceback, or (worst) a silently-accepted session.
"""

import contextlib
import pickle
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.eval.dist import (
    AUTH_MAGIC,
    AUTH_PROTOCOL_VERSION,
    MAGIC,
    PROTOCOL_BASE_VERSION,
    PROTOCOL_VERSION,
    AuthError,
    ConnectionClosed,
    DistSecurityError,
    ProtocolError,
    RemoteExecutor,
    TlsMismatchError,
    WorkerServer,
    client_context,
    client_handshake,
    generate_self_signed,
    normalize_secret,
    recv_message,
    resolve_secret,
    send_message,
    server_context,
    server_handshake,
)
from repro.eval.dist.auth import _HELLO_BODY, _send_auth, compute_mac
from repro.eval.dist.auth import _HELLO as HELLO_KIND
from repro.eval.dist.auth import _PROVE as PROVE_KIND
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)

SECRET = b"a-test-fleet-token"


@contextlib.contextmanager
def _pipe():
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


def _handshake_pair(client_secret, server_secret):
    """Run both handshake halves over a socketpair; return outcomes."""
    outcome = {}
    with _pipe() as (left, right):

        def server():
            try:
                outcome["server"] = server_handshake(right, server_secret)
            except Exception as exc:  # noqa: BLE001 - recorded for asserts
                outcome["server_error"] = exc

        thread = threading.Thread(target=server)
        thread.start()
        try:
            outcome["client"] = client_handshake(left, client_secret)
        except Exception as exc:  # noqa: BLE001
            outcome["client_error"] = exc
        thread.join(timeout=10)
        assert not thread.is_alive()
    return outcome


@contextlib.contextmanager
def worker_fleet(count=1, /, **kwargs):
    kwargs.setdefault("max_sessions", 1)
    servers = [WorkerServer(**kwargs) for _ in range(count)]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=10)


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for errors_a, errors_b in zip(reference, candidate):
        assert set(errors_a) == set(errors_b)
        for name in errors_a:
            assert np.array_equal(errors_a[name], errors_b[name])


@pytest.fixture(scope="module")
def tls_material(tmp_path_factory):
    directory = tmp_path_factory.mktemp("tls")
    return generate_self_signed(directory)


# ----------------------------------------------------------------------
# Handshake primitives
# ----------------------------------------------------------------------
class TestHandshake:
    def test_round_trip_negotiates_current_version(self):
        outcome = _handshake_pair(SECRET, SECRET)
        assert outcome["client"] == PROTOCOL_VERSION
        assert outcome["server"] == PROTOCOL_VERSION
        assert outcome["client"] >= AUTH_PROTOCOL_VERSION

    def test_wrong_secret_rejected_both_sides(self):
        outcome = _handshake_pair(b"not-the-secret", SECRET)
        assert isinstance(outcome["client_error"], AuthError)
        assert isinstance(outcome["server_error"], AuthError)
        # Symmetric wording: the reason must not say which side's MAC
        # computation "won".
        assert "authentication failed" in str(
            outcome["server_error"]
        ) or "authentication" in str(outcome["server_error"])

    def test_secretless_server_rejects_with_reason(self):
        outcome = _handshake_pair(SECRET, None)
        assert isinstance(outcome["client_error"], AuthError)
        assert "no shared secret" in str(outcome["client_error"])
        assert isinstance(outcome["server_error"], AuthError)

    def test_truncated_handshake_frame_is_protocol_error(self):
        """A hello that stops mid-body tears cleanly, never hangs."""
        with _pipe() as (left, right):
            # Magic + kind + a length promising more body than we send.
            left.sendall(
                struct.pack("!4sBI", AUTH_MAGIC, HELLO_KIND, 20)
                + b"\x00" * 4
            )
            left.close()
            with pytest.raises(ProtocolError):
                server_handshake(right, SECRET)

    def test_oversized_auth_body_rejected(self):
        with _pipe() as (left, right):
            left.sendall(
                struct.pack("!4sBI", AUTH_MAGIC, HELLO_KIND, 1 << 20)
            )
            with pytest.raises(ProtocolError, match="exceeds"):
                server_handshake(right, SECRET)

    def test_legacy_frame_answering_auth_is_auth_error(self):
        """A peer speaking pickled frames at the auth layer is refused
        without parsing (unpickling) anything it sent."""
        with _pipe() as (left, right):
            send_message(left, {"type": "ready", "protocol": 1})
            with pytest.raises(AuthError, match="legacy"):
                server_handshake(right, SECRET)

    def test_replayed_handshake_rejected(self):
        """Nonce reuse: a recorded transcript fails against the fresh
        challenge of a new connection."""
        # First, a legitimate exchange whose client frames we keep.
        recorded = {}
        with _pipe() as (left, right):

            def server():
                recorded["version"] = server_handshake(right, SECRET)

            thread = threading.Thread(target=server)
            thread.start()
            nonce_c = b"\x01" * 16
            _send_auth(
                left,
                HELLO_KIND,
                _HELLO_BODY.pack(nonce_c, PROTOCOL_VERSION),
            )
            from repro.eval.dist.auth import _recv_auth

            kind, body = _recv_auth(left)
            nonce_w, _ = _HELLO_BODY.unpack(body)
            proof = compute_mac(
                SECRET, b"C", nonce_c, nonce_w, PROTOCOL_VERSION
            )
            _send_auth(left, PROVE_KIND, proof)
            _recv_auth(left)  # the OK frame
            thread.join(timeout=10)
            assert recorded["version"] == PROTOCOL_VERSION
        # Replay the identical hello + proof on a new connection: the
        # server's nonce is fresh, so the recorded proof must fail.
        with _pipe() as (left, right):
            outcome = {}

            def replay_target():
                try:
                    server_handshake(right, SECRET)
                except Exception as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=replay_target)
            thread.start()
            _send_auth(
                left,
                HELLO_KIND,
                _HELLO_BODY.pack(nonce_c, PROTOCOL_VERSION),
            )
            _recv_auth(left)  # fresh challenge, ignored by the replayer
            _send_auth(left, PROVE_KIND, proof)  # the *recorded* proof
            kind, body = _recv_auth(left)
            thread.join(timeout=10)
        from repro.eval.dist.auth import _REJECT

        assert kind == _REJECT
        assert isinstance(outcome["error"], AuthError)

    def test_mac_binds_negotiated_version(self):
        """Downgrading the version in the MAC input fails the proof."""
        assert compute_mac(
            SECRET, b"C", b"\x01" * 16, b"\x02" * 16, 3
        ) != compute_mac(SECRET, b"C", b"\x01" * 16, b"\x02" * 16, 2)

    def test_pre_v3_peer_cannot_authenticate(self):
        """An auth hello advertising only v2 is refused outright."""
        with _pipe() as (left, right):
            _send_auth(
                left,
                HELLO_KIND,
                _HELLO_BODY.pack(b"\x03" * 16, AUTH_PROTOCOL_VERSION - 1),
            )
            with pytest.raises(AuthError, match="predates"):
                server_handshake(right, SECRET)


class TestSecretResolution:
    def test_normalize_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            normalize_secret("   ")
        with pytest.raises(TypeError):
            normalize_secret(123)
        assert normalize_secret(" tok \n") == b"tok"
        assert normalize_secret(None) is None

    def test_resolve_precedence_file_over_env(self, tmp_path):
        secret_file = tmp_path / "secret"
        secret_file.write_text("from-file\n")
        env = {"REPRO_DIST_SECRET": "from-env"}
        assert resolve_secret(secret_file, env=env) == b"from-file"
        assert resolve_secret(None, env=env) == b"from-env"
        assert resolve_secret(None, env={}) is None

    def test_resolve_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_text("\n\n")
        with pytest.raises(ValueError, match="empty"):
            resolve_secret(empty)


# ----------------------------------------------------------------------
# Worker-side fail-closed semantics
# ----------------------------------------------------------------------
class TestWorkerFailClosed:
    def test_v2_peer_refused_before_payload_exchange(self):
        """A legacy (v2) init against a secret-configured worker is
        answered with a clean error frame — and neither the pickled
        header nor the payload is ever read, proven by sending bytes
        that would raise if unpickled."""
        poison = b"\x80\x04not a pickle at all"
        with worker_fleet(1, secret=SECRET) as servers:
            sock = socket.create_connection(
                (servers[0].host, servers[0].port), timeout=5
            )
            try:
                # A hand-built v2 init whose header *and* payload are
                # poisoned: a worker that touched either would blow up
                # before replying.
                sock.sendall(
                    struct.pack("!4sQQ", MAGIC, len(poison), len(poison))
                    + poison
                    + poison
                )
                header, _ = recv_message(sock)
            finally:
                sock.close()
        assert header["type"] == "error"
        assert header["error"] == "auth-required"
        assert "shared-secret" in header["message"]

    def test_wrong_secret_refused_before_unpickling(self):
        """The handshake fails before any frame beyond auth is read."""
        with worker_fleet(1, secret=SECRET) as servers:
            sock = socket.create_connection(
                (servers[0].host, servers[0].port), timeout=5
            )
            try:
                with pytest.raises(AuthError):
                    client_handshake(sock, b"wrong-token")
            finally:
                sock.close()

    def test_worker_survives_refused_sessions(self, planetlab_small):
        """Refusals never cost the worker; the next good session runs."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=61
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, secret=SECRET, max_sessions=3) as servers:
            address = servers[0].address
            # Refusal 1: wrong secret.
            with pytest.raises(DistSecurityError):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor([address], secret=b"wrong"),
                )
            # Refusal 2: no secret at all.
            with pytest.raises(DistSecurityError):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor([address]),
                )
            # Session 3: the real sweep, bit-identical.
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor([address], secret=SECRET),
            )
        _assert_identical(serial, remote)

    def test_secret_on_coordinator_only_fails_closed(
        self, planetlab_small
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=62
        )
        with worker_fleet(1) as servers:  # worker has no secret
            with pytest.raises(
                DistSecurityError, match="no shared secret"
            ):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [servers[0].address], secret=SECRET
                    ),
                )

    def test_secret_on_worker_only_fails_closed(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=63
        )
        with worker_fleet(1, secret=SECRET) as servers:
            with pytest.raises(DistSecurityError, match="requires"):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor([servers[0].address]),
                )

    def test_slow_drip_handshake_hits_absolute_deadline(self):
        """handshake_timeout is a deadline, not a per-recv window: a
        peer dripping bytes slower than the frame needs is cut off at
        the deadline instead of pinning a session thread forever."""
        with worker_fleet(
            1, secret=SECRET, handshake_timeout=1.0
        ) as servers:
            sock = socket.create_connection(
                (servers[0].host, servers[0].port), timeout=5
            )
            sock.settimeout(10.0)
            start = time.monotonic()
            cut_off = False
            try:
                # Keep each gap well under any per-recv window; only
                # an absolute deadline can end this connection.  Once
                # the reaper closes it, a send raises within a probe
                # or two.
                for index in range(40):
                    sock.sendall(AUTH_MAGIC[index % 4 : index % 4 + 1])
                    time.sleep(0.2)
            except OSError:
                cut_off = True
            finally:
                elapsed = time.monotonic() - start
                sock.close()
        assert cut_off, "drip-fed handshake was never cut off"
        assert elapsed < 6.0, (
            f"drip-fed handshake survived {elapsed:.1f}s past a 1s "
            "deadline"
        )

    def test_truncated_handshake_leaves_worker_serving(
        self, planetlab_small
    ):
        """A connection that dies mid-handshake is one torn session,
        not a denial of service."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=64
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, secret=SECRET, max_sessions=2) as servers:
            sock = socket.create_connection(
                (servers[0].host, servers[0].port), timeout=5
            )
            sock.sendall(AUTH_MAGIC + b"\x01")  # torn mid-prefix
            sock.close()
            time.sleep(0.2)
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [servers[0].address], secret=SECRET
                ),
            )
        _assert_identical(serial, remote)


# ----------------------------------------------------------------------
# Authenticated + TLS sweeps
# ----------------------------------------------------------------------
class TestSecuredSweeps:
    def test_authenticated_sweep_bit_identical(self, planetlab_small):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=65
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(2, secret=SECRET) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers], secret=SECRET
                ),
            )
        _assert_identical(serial, remote)

    def test_tls_and_secret_sweep_bit_identical(
        self, planetlab_small, tls_material
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=66
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(
            2,
            secret=SECRET,
            ssl_context=server_context(
                tls_material.cert, tls_material.key
            ),
        ) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [server.address for server in servers],
                    secret=SECRET,
                    ssl_context=client_context(cafile=tls_material.cert),
                ),
            )
        _assert_identical(serial, remote)

    def test_tls_capacity_worker_bit_identical(
        self, planetlab_small, tls_material
    ):
        """TLS + auth + the concurrent (process-pool) session path."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=67
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(
            1,
            capacity=2,
            secret=SECRET,
            ssl_context=server_context(
                tls_material.cert, tls_material.key
            ),
        ) as servers:
            remote = run_scenario_tasks(
                planetlab_small,
                tasks,
                config=FAST,
                executor=RemoteExecutor(
                    [servers[0].address],
                    secret=SECRET,
                    ssl_context=client_context(cafile=tls_material.cert),
                ),
            )
        _assert_identical(serial, remote)

    def test_plaintext_coordinator_refused_by_tls_worker(
        self, planetlab_small, tls_material
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=68
        )
        with worker_fleet(
            1,
            ssl_context=server_context(
                tls_material.cert, tls_material.key
            ),
        ) as servers:
            with pytest.raises(DistSecurityError, match="TLS"):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor([servers[0].address]),
                )

    def test_tls_coordinator_refused_by_plaintext_worker(
        self, planetlab_small, tls_material
    ):
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=69
        )
        with worker_fleet(1) as servers:  # plaintext worker
            with pytest.raises(DistSecurityError):
                run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [servers[0].address],
                        ssl_context=client_context(
                            cafile=tls_material.cert
                        ),
                        connect_timeout=5.0,
                    ),
                )

    def test_mixed_fleet_partial_auth_failure_still_completes(
        self, planetlab_small
    ):
        """One worker with the right secret carries the sweep; the
        misconfigured one is just a down worker."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=3, seed=70
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        with worker_fleet(1, secret=SECRET) as good:
            with worker_fleet(1, secret=b"other-token") as bad:
                remote = run_scenario_tasks(
                    planetlab_small,
                    tasks,
                    config=FAST,
                    executor=RemoteExecutor(
                        [good[0].address, bad[0].address], secret=SECRET
                    ),
                )
        _assert_identical(serial, remote)


class TestCerts:
    def test_generated_material_loads_into_contexts(self, tls_material):
        server_context(tls_material.cert, tls_material.key)
        client_context(cafile=tls_material.cert)

    def test_key_is_private(self, tls_material):
        import os
        import stat

        mode = stat.S_IMODE(os.stat(tls_material.key).st_mode)
        assert mode == 0o600

    def test_tls_mismatch_error_is_security_error(self):
        assert issubclass(TlsMismatchError, DistSecurityError)
        assert issubclass(TlsMismatchError, ProtocolError)

    def test_bad_magic_for_tls_record_names_tls(self):
        from repro.eval.dist.protocol import bad_magic_error

        error = bad_magic_error(b"\x16\x03\x01\x00", "RTD1")
        assert isinstance(error, TlsMismatchError)
        assert "TLS" in str(error)


class TestConnectionClosedPaths:
    def test_client_handshake_against_closed_socket(self):
        with _pipe() as (left, right):
            right.close()
            with pytest.raises((AuthError, ProtocolError, OSError)):
                client_handshake(left, SECRET)

    def test_client_reports_pre_v3_worker_as_auth_error(self):
        """An old worker drops the auth hello (bad magic on its side);
        the coordinator names the likely cause instead of a bare EOF."""
        with _pipe() as (left, right):

            def old_worker():
                try:
                    recv_message(right)  # chokes on the auth magic
                except ProtocolError:
                    pass
                right.close()

            thread = threading.Thread(target=old_worker)
            thread.start()
            with pytest.raises(AuthError, match="pre-v3"):
                client_handshake(left, SECRET)
            thread.join(timeout=10)

    def test_connection_closed_is_still_clean_eof(self):
        with _pipe() as (left, right):
            left.close()
            with pytest.raises(ConnectionClosed):
                recv_message(right)
