"""Detection-latency sweep: the streaming engine's eval surface."""

import numpy as np
import pytest

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.parallel import scenario_tasks
from repro.eval.streaming import (
    DETECTION_RUNNER,
    DetectionLatencyResult,
    detection_latency_sweep,
    render_detection_latency,
    run_detection_task,
)

@pytest.fixture(scope="module")
def instance(brite_small):
    return brite_small.instance


SWEEP_KWARGS = dict(
    probe_rates=(10, 25),
    n_windows=6,
    onset_after=2,
    packets_per_path=600,
    congested_fraction=0.05,
    per_set_range="high",
    n_onset_links=2,
    threshold=0.5,
    n_trials=2,
    seed=42,
)

TASK_KWARGS = dict(
    probe_rate=15,
    n_windows=5,
    onset_after=2,
    packets_per_path=600,
    congested_fraction=0.05,
    per_set_range="high",
    n_onset_links=2,
    threshold=0.5,
)


def make_task(seed=0, **overrides):
    kwargs = {**TASK_KWARGS, **overrides}
    (task,) = scenario_tasks(
        DETECTION_RUNNER, kwargs, n_trials=1, seed=seed
    )
    return task


class TestRunDetectionTask:
    def test_runner_spec_is_accepted_by_the_task_engine(self):
        """The dotted runner spec resolves, so the sweep can ship tasks
        through any TaskExecutor backend."""
        tasks = scenario_tasks(
            DETECTION_RUNNER, dict(TASK_KWARGS), n_trials=3, seed=1
        )
        assert len(tasks) == 3
        assert all(task.factory == DETECTION_RUNNER for task in tasks)

    def test_result_shape_and_transport_types(self, instance):
        result = run_detection_task(
            instance, None, AlgorithmOptions(), make_task(seed=3)
        )
        assert set(result) == {
            "probe_rate",
            "onset_links",
            "detected",
            "latency_windows",
            "false_alarm_link_windows",
        }
        for value in result.values():
            assert value.dtype == np.float64  # executor transport
        assert result["probe_rate"][0] == 15.0
        assert result["onset_links"].shape == (2,)
        assert set(result["detected"]) <= {0.0, 1.0}
        # Latency is only defined for detected links, in 1..n_windows.
        hit = result["detected"] > 0
        assert np.isnan(result["latency_windows"][~hit]).all()
        assert (result["latency_windows"][hit] >= 1).all()
        assert (
            result["latency_windows"][hit]
            <= TASK_KWARGS["n_windows"] - TASK_KWARGS["onset_after"]
        ).all()

    def test_deterministic_at_fixed_seed(self, instance):
        first = run_detection_task(
            instance, None, AlgorithmOptions(), make_task(seed=7)
        )
        second = run_detection_task(
            instance, None, AlgorithmOptions(), make_task(seed=7)
        )
        for key in first:
            assert np.array_equal(
                first[key], second[key], equal_nan=True
            )

    def test_rejects_unknown_parameters(self, instance):
        task = make_task(seed=0, bogus=1)
        with pytest.raises(ValueError, match="bogus"):
            run_detection_task(
                instance, None, AlgorithmOptions(), task
            )

    def test_rejects_onset_outside_stream(self, instance):
        task = make_task(seed=0, onset_after=5, n_windows=5)
        with pytest.raises(ValueError, match="onset_after"):
            run_detection_task(
                instance, None, AlgorithmOptions(), task
            )


class TestDetectionLatencySweep:
    @pytest.fixture(scope="class")
    def sweep(self, instance) -> DetectionLatencyResult:
        return detection_latency_sweep(instance, **SWEEP_KWARGS)

    def test_one_point_per_probe_rate(self, sweep):
        assert [p.probe_rate for p in sweep.points] == [10, 25]
        for point in sweep.points:
            assert 0.0 <= point.detection_fraction <= 1.0
            assert point.false_alarm_rate >= 0.0
            if point.detection_fraction > 0:
                assert point.mean_latency >= 1.0
                assert point.p90_latency >= point.mean_latency * 0.5

    def test_metadata_records_the_configuration(self, sweep, instance):
        assert sweep.metadata["n_windows"] == 6
        assert sweep.metadata["n_trials"] == 2
        assert sweep.metadata["n_links"] == instance.n_links
        assert sweep.metadata["n_paths"] == instance.n_paths

    def test_sweep_is_deterministic(self, sweep, instance):
        again = detection_latency_sweep(instance, **SWEEP_KWARGS)
        assert again.points == sweep.points

    def test_render_smoke(self, sweep):
        table = render_detection_latency(sweep, title="smoke")
        assert "smoke" in table
        for point in sweep.points:
            assert str(point.probe_rate) in table
