"""Unit tests for the PlanetLab-tomographer emulation."""

import numpy as np
import pytest

from repro.eval.scenario import make_clustered_scenario
from repro.eval.tomographer import (
    indirect_validation,
    predict_path_congestion,
    run_tomographer,
)
from repro.simulate import ExperimentConfig, run_experiment
from repro.simulate.observations import PathObservations


class TestPredictPathCongestion:
    def test_independent_composition(self, instance_1a):
        """P(Y=1) = 1 − Π (1 − p_k) along the path."""
        topology = instance_1a.topology
        probabilities = np.array([0.1, 0.2, 0.3, 0.4])
        predicted = predict_path_congestion(topology, probabilities)
        for path in topology.paths:
            expected = 1.0 - np.prod(
                [1.0 - probabilities[k] for k in path.link_ids]
            )
            assert np.isclose(predicted[path.id], expected)

    def test_zero_probabilities(self, instance_1a):
        predicted = predict_path_congestion(
            instance_1a.topology, np.zeros(4)
        )
        assert np.allclose(predicted, 0.0)

    def test_certain_link_congests_paths(self, instance_1a):
        topology = instance_1a.topology
        probabilities = np.zeros(4)
        probabilities[topology.link("e3").id] = 1.0
        predicted = predict_path_congestion(topology, probabilities)
        assert predicted[topology.path("P1").id] > 0.999
        assert predicted[topology.path("P3").id] == 0.0


class TestIndirectValidation:
    def test_perfect_probabilities_score_well(
        self, instance_1a, model_1a, truth_1a
    ):
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(
                n_snapshots=4000, packets_per_path=None
            ),
            seed=71,
        )
        report = indirect_validation(
            instance_1a.topology,
            truth_1a,
            run.observations,
            correlation=instance_1a.correlation,
        )
        # Fig 1(a) paths are all correlation-free, so the composition is
        # exact and only sampling noise remains.
        assert report.n_correlation_free == report.n_paths
        assert report.mean_error < 0.03

    def test_bad_probabilities_score_poorly(
        self, instance_1a, model_1a, truth_1a
    ):
        run = run_experiment(
            instance_1a.topology,
            model_1a,
            config=ExperimentConfig(
                n_snapshots=2000, packets_per_path=None
            ),
            seed=72,
        )
        good = indirect_validation(
            instance_1a.topology, truth_1a, run.observations
        )
        bad = indirect_validation(
            instance_1a.topology,
            np.zeros_like(truth_1a),
            run.observations,
        )
        assert bad.mean_error > good.mean_error + 0.1

    def test_report_shapes(self, instance_1a, truth_1a):
        states = np.zeros((10, 3), dtype=bool)
        report = indirect_validation(
            instance_1a.topology, truth_1a, PathObservations(states)
        )
        assert report.per_path_error.shape == (3,)
        assert report.n_paths == 3


class TestRunTomographer:
    @pytest.fixture(scope="class")
    def comparison(self, request):
        planetlab = request.getfixturevalue("planetlab_small")
        scenario = make_clustered_scenario(
            planetlab, congested_fraction=0.10, seed=73
        )
        training = run_experiment(
            planetlab.topology,
            scenario.truth_model,
            config=ExperimentConfig(
                n_snapshots=1200, packets_per_path=800
            ),
            seed=74,
        )
        holdout = run_experiment(
            planetlab.topology,
            scenario.truth_model,
            config=ExperimentConfig(
                n_snapshots=800, packets_per_path=800
            ),
            seed=75,
        )
        return run_tomographer(
            planetlab.topology,
            planetlab.correlation,
            training.observations,
            holdout.observations,
        )

    def test_both_variants_ran(self, comparison):
        assert (
            comparison.uncorrelated_result.algorithm
            == "tomographer-uncorrelated"
        )
        assert (
            comparison.correlated_result.algorithm
            == "tomographer-correlated"
        )

    def test_correlated_variant_validates_no_worse(self, comparison):
        """The paper's hypothesis: accounting for correlation should
        improve (or at least not hurt) held-out path prediction on the
        unbiased (correlation-free) population."""
        assert (
            comparison.correlated_validation.mean_error_correlation_free
            <= comparison.uncorrelated_validation.mean_error_correlation_free
            + 0.01
        )

    def test_metadata(self, comparison):
        assert comparison.metadata["n_training_snapshots"] == 1200
        assert comparison.metadata["n_holdout_snapshots"] == 800

    def test_validation_population_counts(self, comparison):
        validation = comparison.correlated_validation
        assert 0 < validation.n_correlation_free <= validation.n_paths
