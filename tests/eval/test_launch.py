"""Worker autolaunch: lifecycle, readiness, lifeline, SSH command shape."""

import os
import socket
import subprocess
import sys
import time

import pytest

from repro.eval.dist import (
    HostSpec,
    LaunchError,
    LocalLauncher,
    RemoteExecutor,
    SshLauncher,
)
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)


def _assert_gone(pids, timeout=20.0):
    deadline = time.monotonic() + timeout
    for pid in pids:
        while True:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            if time.monotonic() > deadline:
                pytest.fail(f"worker process {pid} still alive")
            time.sleep(0.05)


def _assert_identical(reference, candidate):
    import numpy as np

    assert len(reference) == len(candidate)
    for errors_a, errors_b in zip(reference, candidate):
        assert set(errors_a) == set(errors_b)
        for name in errors_a:
            assert np.array_equal(errors_a[name], errors_b[name])


class TestLocalLauncher:
    def test_launch_and_teardown_lifecycle(self):
        launcher = LocalLauncher(2, capacities=[1, 2])
        specs = launcher.launch()
        pids = [worker.pid for worker in launcher.workers]
        try:
            assert len(specs) == 2
            assert launcher.worker_slots == 3
            # Every announced endpoint is actually connectable.
            for spec in specs:
                socket.create_connection(spec.endpoint, timeout=5).close()
        finally:
            launcher.shutdown()
        assert launcher.workers == []
        _assert_gone(pids)
        launcher.shutdown()  # idempotent

    def test_spawn_failure_raises_launch_error(self):
        launcher = LocalLauncher(1, python="/nonexistent-interpreter")
        with pytest.raises(LaunchError, match="failed to spawn"):
            launcher.launch()
        assert launcher.workers == []

    def test_startup_failure_reports_output_and_cleans_up(self):
        # /bin/sleep rejects the worker argv immediately: the launcher
        # must surface the exit (not hang) and tear down anything it
        # already started.
        launcher = LocalLauncher(
            1, python="/bin/sleep", startup_timeout=10.0
        )
        with pytest.raises(LaunchError, match="exited with status"):
            launcher.launch()
        assert launcher.workers == []

    def test_double_launch_is_rejected_not_clobbered(self):
        """A second launch() on a live fleet must raise: silently
        replacing the workers list would let one sweep's shutdown kill
        another sweep's fleet."""
        launcher = LocalLauncher(1)
        launcher.launch()
        try:
            with pytest.raises(LaunchError, match="live fleet"):
                launcher.launch()
        finally:
            launcher.shutdown()
        launcher.launch()  # fine again after shutdown
        launcher.shutdown()

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacities must be >= 1"):
            LocalLauncher(2, capacities=[1, 0])
        with pytest.raises(ValueError, match="one value per worker"):
            LocalLauncher(2, capacities=[1, 2, 3])
        with pytest.raises(ValueError, match="n_workers"):
            LocalLauncher(0)

    def test_autolaunched_sweep_matches_serial_and_tears_down(
        self, planetlab_small
    ):
        """The tentpole end-to-end: elastic sweep, bit-identical, no
        orphans once the executor is done."""
        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=4, seed=41
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        launcher = LocalLauncher(2, capacities=[1, 2])
        remote = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            executor=RemoteExecutor(launcher=launcher),
        )
        _assert_identical(serial, remote)
        # map_chunks' finally tore the fleet down even though nothing
        # failed; the launcher owns no processes any more.
        assert launcher.workers == []


class TestLifeline:
    def test_worker_exits_when_stdin_closes(self):
        import pathlib

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            pathlib.Path(repro.__file__).resolve().parent.parent
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--bind",
                "127.0.0.1",
                "--port",
                "0",
                "--capacity",
                "1",
                "--exit-on-stdin-close",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "worker listening on" in line
            process.stdin.close()  # the coordinator "dies"
            assert process.wait(timeout=20) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


class TestSshLauncher:
    @pytest.fixture()
    def fake_ssh(self, tmp_path):
        """A stand-in `ssh` that runs the remote command locally.

        Receives ``<target> repro-tomography worker ...`` exactly like
        a real SSH client and execs the worker through this
        interpreter, relaying stdio — which is all the launcher's
        lifecycle logic can observe.
        """
        import pathlib

        import repro

        package_root = pathlib.Path(repro.__file__).resolve().parent.parent
        script = tmp_path / "fake-ssh.py"
        script.write_text(
            "import os, subprocess, sys\n"
            "args = sys.argv[1:]\n"
            "target = args.pop(0)\n"
            "assert args.pop(0) == 'repro-tomography'\n"
            "env = dict(os.environ)\n"
            f"env['PYTHONPATH'] = {str(package_root)!r}\n"
            f"sys.exit(subprocess.call([{sys.executable!r}, '-m',"
            " 'repro.cli', *args], env=env))\n"
        )
        return [sys.executable, str(script)]

    @staticmethod
    def _free_port():
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_ssh_launch_lifecycle(self, fake_ssh):
        port = self._free_port()
        launcher = SshLauncher(
            f"alice@127.0.0.1:{port}",
            capacities=1,
            ssh_command=fake_ssh,
        )
        specs = launcher.launch()
        try:
            assert specs == [HostSpec("127.0.0.1", port, "alice")]
            socket.create_connection(specs[0].endpoint, timeout=5).close()
        finally:
            pids = [worker.pid for worker in launcher.workers]
            launcher.shutdown()
        _assert_gone(pids)

    def test_ssh_command_shape(self):
        """The argv handed to SSH is exactly the documented invocation."""
        launcher = SshLauncher(
            "alice@hostA:7100,hostB:7200",
            capacities=[2, None],
            cache_dir="/shared/store",
        )
        recorded = []
        launcher._spawn = (
            lambda argv, describe, env=None, **kwargs: recorded.append(argv)
        )
        launcher._spawn_all()
        assert recorded[0] == [
            "ssh",
            "-o",
            "BatchMode=yes",
            "alice@hostA",
            "repro-tomography",
            "worker",
            "--bind",
            "0.0.0.0",
            "--port",
            "7100",
            "--exit-on-stdin-close",
            "--capacity",
            "2",
            "--cache-dir",
            "/shared/store",
        ]
        assert recorded[1][3] == "hostB"  # no user prefix
        assert "--capacity" not in recorded[1]  # remote CPU default

    def test_worker_slots_counts_capacities(self):
        from repro.eval.dist.launch import ASSUMED_REMOTE_SLOTS

        launcher = SshLauncher(
            "a:7100,b:7200", capacities=[2, None]
        )
        # None = remote CPU default, planned with assumed granularity
        # so the advertised pipeline can actually be filled.
        assert launcher.worker_slots == 2 + ASSUMED_REMOTE_SLOTS

    def test_secret_rides_stdin_never_argv(self):
        """The SSH command line must not leak the token: the worker is
        started with --secret-stdin and the value travels the pipe."""
        launcher = SshLauncher(
            "hostA:7100",
            secret="hunter2-token",
            tls_cert="/remote/cert.pem",
            tls_key="/remote/key.pem",
        )
        recorded = []

        def record(argv, describe, env=None, **kwargs):
            recorded.append((argv, kwargs))

        launcher._spawn = record
        launcher._spawn_all()
        argv, kwargs = recorded[0]
        assert "--secret-stdin" in argv
        assert all("hunter2-token" not in piece for piece in argv)
        assert kwargs["stdin_line"] == "hunter2-token"
        assert argv[argv.index("--tls-cert") + 1] == "/remote/cert.pem"
        assert argv[argv.index("--tls-key") + 1] == "/remote/key.pem"

    def test_stdin_secret_delivery_end_to_end(self, fake_ssh):
        """A fake-SSH worker really reads the token off the channel."""
        from repro.eval.dist import client_handshake

        port = self._free_port()
        launcher = SshLauncher(
            f"127.0.0.1:{port}",
            capacities=1,
            ssh_command=fake_ssh,
            secret="stdin-delivered-token",
        )
        specs = launcher.launch()
        try:
            sock = socket.create_connection(specs[0].endpoint, timeout=5)
            try:
                version = client_handshake(sock, b"stdin-delivered-token")
            finally:
                sock.close()
            assert version >= 3
        finally:
            launcher.shutdown()

    def test_tls_material_must_pair(self):
        with pytest.raises(ValueError, match="together"):
            SshLauncher("a:7100", tls_cert="/cert.pem")
        with pytest.raises(ValueError, match="together"):
            LocalLauncher(1, tls_key="/key.pem")


class TestLocalLauncherSecurity:
    def test_secret_rides_environment_never_argv(self):
        launcher = LocalLauncher(1, secret="local-fleet-token")
        recorded = []

        def record(argv, describe, env=None, **kwargs):
            recorded.append((argv, env, kwargs))

        launcher._spawn = record
        launcher._spawn_all()
        argv, env, kwargs = recorded[0]
        assert all("local-fleet-token" not in piece for piece in argv)
        assert env["REPRO_DIST_SECRET"] == "local-fleet-token"
        assert kwargs.get("stdin_line") is None

    def test_env_secret_sweep_bit_identical(self, planetlab_small):
        """Autolaunched local fleet + coordinator secret, end to end."""
        from repro.eval.dist import RemoteExecutor as Executor

        tasks = scenario_tasks(
            "clustered", {"congested_fraction": 0.1}, n_trials=2, seed=71
        )
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        launcher = LocalLauncher(2, secret="env-fleet-token")
        remote = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            executor=Executor(
                launcher=launcher, secret="env-fleet-token"
            ),
        )
        _assert_identical(serial, remote)
        assert launcher.workers == []


class TestReadinessDeath:
    def test_misconfigured_tls_surfaces_stderr_promptly(self):
        """A worker dying on a bad TLS path must raise LaunchError with
        the worker's own error output, well before startup_timeout."""
        launcher = LocalLauncher(
            1,
            tls_cert="/nonexistent/cert.pem",
            tls_key="/nonexistent/key.pem",
            startup_timeout=60.0,
        )
        start = time.monotonic()
        with pytest.raises(LaunchError) as excinfo:
            launcher.launch()
        elapsed = time.monotonic() - start
        assert elapsed < 30, (
            f"death took {elapsed:.1f}s to surface — the readiness "
            "wait timed out instead of noticing the exit"
        )
        message = str(excinfo.value)
        assert "exited with status" in message
        assert "TLS" in message or "tls" in message
        assert launcher.workers == []

    def test_dead_worker_with_held_pipe_surfaces_promptly(self, tmp_path):
        """EOF never arrives when a grandchild inherits stdout; the
        poll on the process itself must surface the death anyway."""
        wrapper = tmp_path / "die-but-hold-pipe.py"
        wrapper.write_text(
            "import subprocess, sys\n"
            # A grandchild that inherits our stdout and outlives us.
            "subprocess.Popen([sys.executable, '-c',"
            " 'import time; time.sleep(45)'])\n"
            "print('worker failed: injected startup error',"
            " flush=True)\n"
            "sys.exit(3)\n"
        )
        launcher = LocalLauncher(1, startup_timeout=60.0)
        real_argv = [sys.executable, str(wrapper)]
        original_spawn = launcher._spawn
        launcher._spawn = (
            lambda argv, describe, env=None, **kwargs: original_spawn(
                real_argv, describe, env, **kwargs
            )
        )
        start = time.monotonic()
        with pytest.raises(LaunchError) as excinfo:
            launcher.launch()
        elapsed = time.monotonic() - start
        assert elapsed < 30
        assert "exited with status 3" in str(excinfo.value)
        assert "injected startup error" in str(excinfo.value)


class TestStagedTeardown:
    """S1: lifeline EOF → SIGCONT+SIGTERM → SIGKILL, bounded and total."""

    @staticmethod
    def _stub_worker(body):
        process = subprocess.Popen(
            [sys.executable, "-c", body],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        from repro.eval.dist import LaunchedWorker

        worker = LaunchedWorker(process, "stub")
        worker.watcher.ready.wait(timeout=20)
        return worker

    def test_sigterm_immune_worker_is_sigkilled(self):
        """A worker that ignores both the lifeline and SIGTERM still
        dies — the escalation must bottom out in SIGKILL."""
        worker = self._stub_worker(
            "import signal, time\n"
            "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
            "print('worker listening on 127.0.0.1:1', flush=True)\n"
            "while True:\n"
            "    time.sleep(1)\n"
        )
        start = time.monotonic()
        worker.terminate(grace=1.0)
        elapsed = time.monotonic() - start
        assert worker.process.poll() == -9
        assert elapsed < 15

    def test_sigstopped_worker_is_continued_then_reaped(self):
        """A stopped process sees neither the lifeline EOF nor a
        pending SIGTERM; the SIGCONT stage is what makes graceful
        termination reachable at all."""
        import signal as signal_module

        from repro.eval.dist.launch import WorkerLauncher

        worker = self._stub_worker(
            "import time\n"
            "print('worker listening on 127.0.0.1:1', flush=True)\n"
            "time.sleep(600)\n"
        )
        os.kill(worker.pid, signal_module.SIGSTOP)
        launcher = WorkerLauncher()
        launcher.workers = [worker]
        start = time.monotonic()
        launcher.shutdown(grace=2.0)
        elapsed = time.monotonic() - start
        # Reaped by SIGTERM after the SIGCONT — SIGKILL never needed.
        assert worker.process.poll() == -signal_module.SIGTERM
        assert elapsed < 15
        assert launcher.workers == []

    def test_fleet_shutdown_escalates_in_parallel(self):
        """Escalation cost is one grace period for the fleet, not one
        per worker."""
        from repro.eval.dist.launch import WorkerLauncher

        body = (
            "import signal, time\n"
            "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
            "print('worker listening on 127.0.0.1:1', flush=True)\n"
            "while True:\n"
            "    time.sleep(1)\n"
        )
        workers = [self._stub_worker(body) for _ in range(3)]
        launcher = WorkerLauncher()
        launcher.workers = list(workers)
        start = time.monotonic()
        launcher.shutdown(grace=2.0)
        elapsed = time.monotonic() - start
        for worker in workers:
            assert worker.process.poll() == -9
        # Sequential escalation would cost ~3 × (2 + 2)s; the parallel
        # stages keep the whole fleet inside ~one escalation budget.
        assert elapsed < 10


class TestLaunchRetry:
    @staticmethod
    def _flaky_interpreter(tmp_path, fail_times):
        """A python wrapper that fails its first ``fail_times`` spawns,
        then execs the real interpreter — a crash-on-startup flake."""
        counter = tmp_path / "attempts"
        script = tmp_path / "flaky-python"
        script.write_text(
            "#!/bin/sh\n"
            f'count=$(cat "{counter}" 2>/dev/null || echo 0)\n'
            f'echo $((count + 1)) > "{counter}"\n'
            f"if [ \"$count\" -lt {fail_times} ]; then\n"
            "  echo 'worker failed: transient spawn flake'\n"
            "  exit 7\n"
            "fi\n"
            f'exec "{sys.executable}" "$@"\n'
        )
        script.chmod(0o755)
        return str(script)

    def test_transient_startup_flake_is_relaunched(self, tmp_path):
        launcher = LocalLauncher(
            1,
            python=self._flaky_interpreter(tmp_path, fail_times=1),
            launch_attempts=2,
        )
        specs = launcher.launch()
        try:
            assert len(specs) == 1
            socket.create_connection(specs[0].endpoint, timeout=5).close()
        finally:
            launcher.shutdown()

    def test_retry_budget_is_bounded(self, tmp_path):
        """A deterministically broken worker still fails, with its
        output, after exactly launch_attempts tries."""
        counter_dir = tmp_path / "always"
        counter_dir.mkdir()
        launcher = LocalLauncher(
            1,
            python=self._flaky_interpreter(counter_dir, fail_times=99),
            launch_attempts=2,
        )
        with pytest.raises(LaunchError, match="transient spawn flake"):
            launcher.launch()
        assert launcher.workers == []
        attempts = int((counter_dir / "attempts").read_text())
        assert attempts == 2
