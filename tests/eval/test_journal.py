"""Crash-safe sweep journal: replay, torn tails, resume bit-identity."""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.eval.dist import (
    JournalMismatchError,
    SweepJournal,
    sweep_fingerprint,
)
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)

pytestmark = pytest.mark.timeout(120)


def _tasks(seed, n_trials=3):
    return scenario_tasks(
        "clustered", {"congested_fraction": 0.1}, n_trials=n_trials, seed=seed
    )


def _assert_identical(reference, candidate):
    assert len(reference) == len(candidate)
    for errors_a, errors_b in zip(reference, candidate):
        assert set(errors_a) == set(errors_b)
        for name in errors_a:
            assert np.array_equal(errors_a[name], errors_b[name])


def _execution_counter(monkeypatch):
    """Count real task executions through the serial engine."""
    from repro.eval import parallel as parallel_module

    executed = []
    real = parallel_module._execute_task

    def counting(instance, config, options, task):
        executed.append(task)
        return real(instance, config, options, task)

    monkeypatch.setattr(parallel_module, "_execute_task", counting)
    return executed


class TestJournalReplay:
    def test_resume_replays_settled_chunks_without_recompute(
        self, planetlab_small, tmp_path, monkeypatch
    ):
        tasks = _tasks(seed=70)
        path = tmp_path / "sweep.jnl"
        first = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            journal=SweepJournal(path),
        )
        # A full journal resumes with zero recomputation...
        executed = _execution_counter(monkeypatch)
        resumed = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            journal=SweepJournal(path, resume=True),
        )
        assert executed == []
        # ...and the replayed results are the originals, bit for bit.
        _assert_identical(first, resumed)

    def test_partial_journal_recomputes_only_the_missing_tail(
        self, planetlab_small, tmp_path, monkeypatch
    ):
        """Chop settled records off the end: exactly those re-execute."""
        tasks = _tasks(seed=71)
        path = tmp_path / "sweep.jnl"
        run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            journal=SweepJournal(path),
        )
        # Record where each chunk record ends, then drop the last two —
        # the on-disk image of a coordinator killed two settles early.
        probe = SweepJournal(path, resume=True)
        replayed = probe.open(planetlab_small, tasks, config=FAST)
        probe.close()
        assert len(replayed) == len(tasks)
        import repro.eval.dist.journal as journal_module

        boundaries = []
        with open(path, "rb") as handle:
            offset = 0
            while True:
                record = journal_module._read_record(handle, offset)
                if record is None:
                    break
                offset = record[2]
                boundaries.append(offset)
        with open(path, "r+b") as handle:
            handle.truncate(boundaries[-3])

        executed = _execution_counter(monkeypatch)
        serial = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, workers=1
        )
        assert len(executed) == len(tasks)  # the reference run
        del executed[:]
        resumed = run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            journal=SweepJournal(path, resume=True),
        )
        assert len(executed) == 2  # only the truncated-away tail
        _assert_identical(serial, resumed)

    def test_torn_tail_is_healed_and_appended_over(
        self, planetlab_small, tmp_path
    ):
        """Garbage after the last valid record neither poisons replay
        nor survives the resumed run."""
        tasks = _tasks(seed=72)
        path = tmp_path / "sweep.jnl"
        run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            journal=SweepJournal(path),
        )
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            # A record prefix cut off mid-header: what a crash during
            # an append leaves behind.
            handle.write(b"RJL1\x00\x00\x40\x00partial garbage")
        journal = SweepJournal(path, resume=True)
        replayed = journal.open(planetlab_small, tasks, config=FAST)
        journal.close()
        assert len(replayed) == len(tasks)
        assert path.stat().st_size == intact  # tail truncated in place

    def test_corrupt_record_checksum_keeps_the_prefix(
        self, planetlab_small, tmp_path
    ):
        tasks = _tasks(seed=73)
        path = tmp_path / "sweep.jnl"
        run_scenario_tasks(
            planetlab_small,
            tasks,
            config=FAST,
            workers=1,
            journal=SweepJournal(path),
        )
        # Flip one byte near the end of the file: the damaged record
        # fails its CRC and everything before it still replays.
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(blob)
        journal = SweepJournal(path, resume=True)
        replayed = journal.open(planetlab_small, tasks, config=FAST)
        journal.close()
        assert 0 < len(replayed) < len(tasks)

    def test_foreign_journal_is_refused(self, planetlab_small, tmp_path):
        """A journal from a different sweep must never splice in."""
        path = tmp_path / "sweep.jnl"
        run_scenario_tasks(
            planetlab_small,
            _tasks(seed=74),
            config=FAST,
            workers=1,
            journal=SweepJournal(path),
        )
        with pytest.raises(JournalMismatchError, match="different"):
            run_scenario_tasks(
                planetlab_small,
                _tasks(seed=75),  # different seed, different sweep
                config=FAST,
                workers=1,
                journal=SweepJournal(path, resume=True),
            )

    def test_non_journal_file_is_refused(self, planetlab_small, tmp_path):
        path = tmp_path / "not-a-journal.bin"
        path.write_bytes(b"definitely not a journal" * 10)
        with pytest.raises(JournalMismatchError, match="not a sweep journal"):
            run_scenario_tasks(
                planetlab_small,
                _tasks(seed=76),
                config=FAST,
                workers=1,
                journal=SweepJournal(path, resume=True),
            )

    def test_fingerprint_is_task_order_sensitive(self, planetlab_small):
        tasks = _tasks(seed=77)
        forward = sweep_fingerprint(planetlab_small, tasks, config=FAST)
        reversed_fp = sweep_fingerprint(
            planetlab_small, list(reversed(tasks)), config=FAST
        )
        assert forward != reversed_fp

    def test_fresh_journal_overwrites_without_resume(
        self, planetlab_small, tmp_path
    ):
        """No ``--resume`` means a fresh sweep: stale files are replaced,
        never silently replayed."""
        path = tmp_path / "sweep.jnl"
        path.write_bytes(b"stale leftovers")
        results = run_scenario_tasks(
            planetlab_small,
            _tasks(seed=78),
            config=FAST,
            workers=1,
            journal=SweepJournal(path),
        )
        assert all(errors is not None for errors in results)
        journal = SweepJournal(path, resume=True)
        replayed = journal.open(
            planetlab_small, _tasks(seed=78), config=FAST
        )
        journal.close()
        assert len(replayed) == len(_tasks(seed=78))


@pytest.mark.timeout(600)
class TestSigkillResume:
    def test_sigkilled_coordinator_resumes_bit_identically(self, tmp_path):
        """The acceptance criterion, end to end: SIGKILL the CLI
        mid-sweep, rerun with ``--resume``, and the output matches an
        uninterrupted run byte for byte."""
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_CACHE_DIR", None)
        env.pop("REPRO_WORKERS", None)
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "figure3",
            "--trials",
            "2",
        ]
        journal = tmp_path / "sweep.jnl"

        reference = subprocess.run(
            argv, env=env, capture_output=True, text=True, timeout=300
        )
        assert reference.returncode == 0, reference.stderr

        victim = subprocess.Popen(
            argv + ["--journal", str(journal)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Kill as soon as at least one chunk record is on disk (the
        # sweep header alone is ~200 bytes).  If the run wins the race
        # and finishes first, resume degenerates to pure replay — still
        # a valid (if weaker) exercise of the path.
        deadline = time.monotonic() + 240
        while time.monotonic() < deadline:
            if journal.exists() and journal.stat().st_size > 4096:
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        resumed = subprocess.run(
            argv + ["--journal", str(journal), "--resume"],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == reference.stdout

    def test_resume_requires_journal_flag(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "figure3", "--resume"],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
        assert "--resume needs --journal" in result.stderr
