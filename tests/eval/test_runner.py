"""Unit tests for the comparison runner."""

import numpy as np
import pytest

from repro.eval.runner import run_comparison
from repro.eval.scenario import make_clustered_scenario
from repro.simulate.experiment import ExperimentConfig


@pytest.fixture(scope="module")
def comparison(request):
    planetlab = request.getfixturevalue("planetlab_small")
    scenario = make_clustered_scenario(
        planetlab, congested_fraction=0.10, seed=31
    )
    return run_comparison(
        planetlab.topology,
        scenario,
        config=ExperimentConfig(n_snapshots=600, packets_per_path=500),
        seed=32,
    )


class TestRunComparison:
    def test_both_algorithms_present(self, comparison):
        assert set(comparison.results) == {
            "correlation",
            "independence",
        }
        assert set(comparison.errors) == {
            "correlation",
            "independence",
        }

    def test_error_vectors_match_scored_population(self, comparison):
        n = comparison.scored_links.size
        assert comparison.errors["correlation"].shape == (n,)
        assert comparison.errors["independence"].shape == (n,)

    def test_errors_are_absolute(self, comparison):
        for errors in comparison.errors.values():
            assert np.all(errors >= 0.0)
            assert np.all(errors <= 1.0)

    def test_stats_accessor(self, comparison):
        stats = comparison.stats("correlation")
        assert 0.0 <= stats.mean <= 1.0
        assert stats.n_links == comparison.scored_links.size

    def test_cdf_accessor(self, comparison):
        grid, fractions = comparison.cdf("independence")
        assert fractions[-1] == 1.0
        custom_grid, _ = comparison.cdf(
            "independence", grid=(0.5, 1.0)
        )
        assert list(custom_grid) == [0.5, 1.0]

    def test_deterministic_given_seed(self, planetlab_small):
        scenario = make_clustered_scenario(
            planetlab_small, congested_fraction=0.10, seed=33
        )
        config = ExperimentConfig(
            n_snapshots=200, packets_per_path=300
        )
        a = run_comparison(
            planetlab_small.topology, scenario, config=config, seed=34
        )
        b = run_comparison(
            planetlab_small.topology, scenario, config=config, seed=34
        )
        assert np.allclose(
            a.errors["correlation"], b.errors["correlation"]
        )
