"""Unit tests for evaluation metrics."""

import numpy as np

from repro.eval.metrics import (
    DEFAULT_CDF_GRID,
    absolute_error_stats,
    error_cdf,
    potentially_congested_links,
)
from repro.simulate.observations import PathObservations


class TestPotentiallyCongestedLinks:
    def test_links_of_congested_paths(self, instance_1a):
        # Only P1 (links e3, e1) congested at least once.
        states = np.zeros((4, 3), dtype=bool)
        states[1, 0] = True
        observations = PathObservations(states)
        links = potentially_congested_links(
            instance_1a.topology, observations
        )
        names = {instance_1a.topology.links[k].name for k in links}
        assert names == {"e1", "e3"}

    def test_nothing_congested(self, instance_1a):
        observations = PathObservations(np.zeros((3, 3), dtype=bool))
        links = potentially_congested_links(
            instance_1a.topology, observations
        )
        assert links.size == 0

    def test_everything_congested(self, instance_1a):
        observations = PathObservations(np.ones((2, 3), dtype=bool))
        links = potentially_congested_links(
            instance_1a.topology, observations
        )
        assert list(links) == [0, 1, 2, 3]


class TestErrorStats:
    def test_basic(self):
        stats = absolute_error_stats(np.array([0.0, 0.1, 0.2, 0.3]))
        assert np.isclose(stats.mean, 0.15)
        assert np.isclose(stats.p90, np.percentile([0, 0.1, 0.2, 0.3], 90))
        assert stats.max == 0.3
        assert stats.n_links == 4

    def test_empty(self):
        stats = absolute_error_stats(np.array([]))
        assert stats.mean == 0.0
        assert stats.n_links == 0

    def test_p90_interpretation(self):
        """90% of links have error below the p90 value."""
        errors = np.concatenate([np.zeros(90), np.full(10, 0.5)])
        stats = absolute_error_stats(errors)
        assert (errors <= stats.p90 + 1e-12).mean() >= 0.9


class TestErrorCdf:
    def test_monotone(self):
        errors = np.array([0.0, 0.05, 0.2, 0.9])
        _, fractions = error_cdf(errors)
        assert all(
            a <= b for a, b in zip(fractions, fractions[1:])
        )

    def test_reaches_one_at_max_level(self):
        errors = np.array([0.3, 0.5])
        grid, fractions = error_cdf(errors)
        assert fractions[-1] == 1.0

    def test_values(self):
        errors = np.array([0.0, 0.1, 0.4])
        grid, fractions = error_cdf(errors, grid=(0.05, 0.1, 0.5))
        assert np.allclose(fractions, [1 / 3, 2 / 3, 1.0])

    def test_empty_is_vacuous_perfect(self):
        grid, fractions = error_cdf(np.array([]))
        assert np.all(fractions == 1.0)

    def test_default_grid(self):
        grid, _ = error_cdf(np.array([0.1]))
        assert tuple(grid) == DEFAULT_CDF_GRID
