"""Unit tests for the localization-accuracy evaluation."""

import numpy as np
import pytest

from repro.eval.localization_eval import evaluate_localization
from repro.simulate import ExperimentConfig


class TestEvaluateLocalization:
    @pytest.fixture(scope="class")
    def scores(self, request):
        instance = request.getfixturevalue("instance_1a")
        model = request.getfixturevalue("model_1a")
        truth = model.link_marginals()
        return evaluate_localization(
            instance.topology,
            model,
            {
                "truth": truth,
                "uninformative": np.full(4, 0.5),
                "anti-informed": 1.0 - truth,
            },
            config=ExperimentConfig(
                n_snapshots=200, packets_per_path=None
            ),
            seed=90,
        )

    def test_all_methods_scored(self, scores):
        assert set(scores) == {
            "truth",
            "uninformative",
            "anti-informed",
        }

    def test_snapshot_counts(self, scores):
        for score in scores.values():
            assert score.n_snapshots == 200

    def test_truth_probabilities_detect_well(self, scores):
        assert scores["truth"].precision > 0.75
        assert scores["truth"].recall > 0.5
        assert scores["truth"].f1 > 0.6

    def test_better_probabilities_never_hurt(self, scores):
        """Ground-truth probabilities should beat anti-informed ones."""
        assert scores["truth"].f1 >= scores["anti-informed"].f1

    def test_f1_is_harmonic_mean(self, scores):
        score = scores["truth"]
        expected = (
            2
            * score.precision
            * score.recall
            / (score.precision + score.recall)
        )
        assert np.isclose(score.f1, expected)

    def test_noise_paths_counted(self, scores):
        for score in scores.values():
            assert score.mean_noise_paths >= 0.0


class TestInferredProbabilitiesHelpLocalization:
    def test_correlation_vs_independence_probabilities(
        self, planetlab_small
    ):
        """The extension's point: correlation-aware probability
        estimates make the localizer at least as good as the
        baseline's estimates."""
        from repro.core import (
            infer_congestion,
            infer_congestion_independent,
        )
        from repro.eval import make_clustered_scenario
        from repro.simulate import run_experiment

        scenario = make_clustered_scenario(
            planetlab_small, congested_fraction=0.08, seed=91
        )
        train = run_experiment(
            planetlab_small.topology,
            scenario.truth_model,
            config=ExperimentConfig(
                n_snapshots=1000, packets_per_path=800
            ),
            seed=92,
        )
        correlation_probabilities = infer_congestion(
            planetlab_small.topology,
            scenario.algorithm_correlation,
            train.observations,
        ).congestion_probabilities
        independence_probabilities = infer_congestion_independent(
            planetlab_small.topology, train.observations
        ).congestion_probabilities
        scores = evaluate_localization(
            planetlab_small.topology,
            scenario.truth_model,
            {
                "correlation": correlation_probabilities,
                "independence": independence_probabilities,
            },
            config=ExperimentConfig(
                n_snapshots=40, packets_per_path=800
            ),
            max_nodes=20_000,
            seed=93,
        )
        assert (
            scores["correlation"].f1
            >= scores["independence"].f1 - 0.05
        )
