"""The persistent trial-result cache: keys, storage, engine integration."""

import json
import threading

import numpy as np
import pytest

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval import parallel as engine
from repro.eval.cache import (
    CODE_SALT,
    CacheStats,
    TrialCache,
    resolve_cache_dir,
    seed_fingerprint,
    trial_key,
)
from repro.eval.figures import figure3_sweep, figure4_cdf
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.io import canonical_json, instance_fingerprint
from repro.simulate.experiment import ExperimentConfig
from repro.utils.rng import spawn_children

FAST = ExperimentConfig(n_snapshots=120, packets_per_path=200)


def _tasks(seed=21, n_trials=2, fraction=0.1):
    return scenario_tasks(
        "clustered",
        {"congested_fraction": fraction},
        n_trials=n_trials,
        seed=seed,
    )


class TestKeyDerivation:
    def test_same_inputs_same_key(self, planetlab_small):
        fp = instance_fingerprint(planetlab_small)
        key_a = trial_key(fp, _tasks()[0], config=FAST)
        key_b = trial_key(fp, _tasks()[0], config=FAST)
        assert key_a == key_b
        # Hex sha256.
        assert len(key_a) == 64 and int(key_a, 16) >= 0

    def test_config_invalidates(self, planetlab_small):
        fp = instance_fingerprint(planetlab_small)
        task = _tasks()[0]
        other = ExperimentConfig(n_snapshots=121, packets_per_path=200)
        assert trial_key(fp, task, config=FAST) != trial_key(
            fp, task, config=other
        )

    def test_options_invalidate(self, planetlab_small):
        fp = instance_fingerprint(planetlab_small)
        task = _tasks()[0]
        assert trial_key(fp, task, config=FAST) != trial_key(
            fp,
            task,
            config=FAST,
            options=AlgorithmOptions(selection="all"),
        )

    def test_default_config_and_options_canonicalise(self, planetlab_small):
        """``None`` keys like the explicit dataclass defaults."""
        fp = instance_fingerprint(planetlab_small)
        task = _tasks()[0]
        assert trial_key(fp, task) == trial_key(
            fp,
            task,
            config=ExperimentConfig(),
            options=AlgorithmOptions(),
        )

    def test_seed_invalidates(self, planetlab_small):
        fp = instance_fingerprint(planetlab_small)
        task_a = _tasks(seed=21)[0]
        task_b = _tasks(seed=22)[0]
        assert trial_key(fp, task_a, config=FAST) != trial_key(
            fp, task_b, config=FAST
        )

    def test_instance_invalidates(self, planetlab_small, brite_small):
        task = _tasks()[0]
        key_a = trial_key(
            instance_fingerprint(planetlab_small), task, config=FAST
        )
        key_b = trial_key(
            instance_fingerprint(brite_small.instance), task, config=FAST
        )
        assert key_a != key_b

    def test_salt_invalidates(self, planetlab_small, monkeypatch):
        fp = instance_fingerprint(planetlab_small)
        task = _tasks()[0]
        before = trial_key(fp, task, config=FAST)
        monkeypatch.setattr("repro.eval.cache.CODE_SALT", CODE_SALT + "x")
        assert trial_key(fp, task, config=FAST) != before

    def test_group_does_not_key(self, planetlab_small):
        """Group is pooling metadata; regrouped sweeps share entries."""
        fp = instance_fingerprint(planetlab_small)
        task = _tasks()[0]
        regrouped = engine.ScenarioTask(
            group=task.group + 7,
            factory=task.factory,
            factory_kwargs=task.factory_kwargs,
            scenario_seed=task.scenario_seed,
            run_seed=task.run_seed,
        )
        assert trial_key(fp, task, config=FAST) == trial_key(
            fp, regrouped, config=FAST
        )

    def test_canonical_json_is_lossless(self):
        """Key material must never truncate: large arrays encode fully,
        unknown types raise instead of degrading to an eliding str()."""
        encoded = canonical_json({"a": np.arange(2000)})
        assert "..." not in encoded
        assert encoded.endswith("1998,1999]}")
        assert canonical_json({"x": np.float64(0.5)}) == '{"x":0.5}'
        assert canonical_json({"t": (1, 2)}) == '{"t":[1,2]}'
        with pytest.raises(TypeError, match="losslessly"):
            canonical_json({"bad": object()})

    def test_seed_fingerprint_tracks_spawn_tree(self):
        """Same draw stream, different spawn key → different fingerprint."""
        parent_a, parent_b = spawn_children(0, 2)
        fp_a = seed_fingerprint(parent_a)
        fp_b = seed_fingerprint(parent_b)
        assert fp_a != fp_b
        assert fp_a["seed_seq"]["spawn_key"] != fp_b["seed_seq"]["spawn_key"]
        assert seed_fingerprint(None) is None
        # JSON-ready (canonical_json requirement).
        json.dumps(fp_a, default=str)


class TestStore:
    def test_roundtrip(self, tmp_path):
        cache = TrialCache(tmp_path)
        errors = {
            "correlation": np.array([0.1, 0.2, 0.3]),
            "independence": np.array([0.4]),
        }
        cache.put("ab" + "0" * 62, errors)
        loaded = cache.get("ab" + "0" * 62)
        assert set(loaded) == set(errors)
        for name in errors:
            assert np.array_equal(loaded[name], errors[name])
            assert loaded[name].dtype == errors[name].dtype

    def test_miss_and_stats(self, tmp_path):
        cache = TrialCache(tmp_path)
        assert cache.get("cd" + "0" * 62) is None
        assert cache.stats == CacheStats(hits=0, misses=1, stores=0)
        cache.put("cd" + "0" * 62, {"correlation": np.zeros(2)})
        assert cache.get("cd" + "0" * 62) is not None
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1)
        assert "50.0% hits" in cache.stats.render()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = "ef" + "0" * 62
        path = cache._entry_path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz archive")
        assert cache.get(key) is None

    def test_truncated_and_empty_entries_are_misses(self, tmp_path):
        """np.load raises BadZipFile/EOFError for these, not OSError."""
        cache = TrialCache(tmp_path)
        key = "ef" + "1" * 62
        cache.put(key, {"correlation": np.arange(64.0)})
        path = cache._entry_path(key)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.get(key) is None
        path.write_bytes(b"")
        assert cache.get(key) is None
        # Overwriting the bad entry repairs the store.
        cache.put(key, {"correlation": np.arange(64.0)})
        assert cache.get(key) is not None

    def test_concurrent_writers_never_tear(self, tmp_path):
        """Two writers hammering one key: readers always see a full entry."""
        cache = TrialCache(tmp_path)
        key = "aa" + "0" * 62
        payload_a = {"correlation": np.full(512, 1.0)}
        payload_b = {"correlation": np.full(512, 2.0)}
        failures = []

        def write(payload):
            for _ in range(30):
                TrialCache(tmp_path).put(key, payload)

        def read():
            reader = TrialCache(tmp_path)
            for _ in range(60):
                loaded = reader.get(key)
                if loaded is None:
                    continue
                values = loaded["correlation"]
                if not (
                    np.array_equal(values, payload_a["correlation"])
                    or np.array_equal(values, payload_b["correlation"])
                ):
                    failures.append(values)

        cache.put(key, payload_a)
        threads = [
            threading.Thread(target=write, args=(payload_a,)),
            threading.Thread(target=write, args=(payload_b,)),
            threading.Thread(target=read),
            threading.Thread(target=read),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        # No temporary files left behind.
        leftovers = [
            p for p in tmp_path.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestPruneTmp:
    @staticmethod
    def _plant_tmp(cache, name, age_s):
        import os
        import time

        shard = cache.root / "ab"
        shard.mkdir(exist_ok=True)
        path = shard / name
        path.write_bytes(b"torn write")
        stamp = time.time() - age_s
        os.utime(path, (stamp, stamp))
        return path

    def test_prune_removes_stale_keeps_fresh_and_entries(self, tmp_path):
        cache = TrialCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, {"correlation": np.ones(3)})
        stale = self._plant_tmp(cache, "stale.tmp", age_s=7200)
        fresh = self._plant_tmp(cache, "fresh.tmp", age_s=10)
        assert cache.prune_tmp(max_age=3600) == 1
        assert not stale.exists()
        assert fresh.exists()  # an in-flight concurrent write
        assert cache.get(key) is not None  # entries untouched

    @staticmethod
    def _age_marker(root, age_s=7200):
        import os
        import time

        marker = root / ".last-prune"
        stamp = time.time() - age_s
        os.utime(marker, (stamp, stamp))

    def test_open_prunes_opportunistically(self, tmp_path):
        cache = TrialCache(tmp_path)
        stale = self._plant_tmp(cache, "orphan.tmp", age_s=7200)
        self._age_marker(tmp_path)  # pretend the last sweep was old
        TrialCache(tmp_path)  # a second handle on the same store
        assert not stale.exists()

    def test_open_rate_limits_the_sweep(self, tmp_path):
        cache = TrialCache(tmp_path)
        stale = self._plant_tmp(cache, "orphan.tmp", age_s=7200)
        TrialCache(tmp_path)  # marker is fresh: no sweep this time
        assert stale.exists()

    def test_concurrent_opens_elect_exactly_one_pruner(
        self, tmp_path, monkeypatch
    ):
        """The `.last-prune` claim is atomic: a herd of simultaneous
        opens observing one stale marker runs one sweep, not many."""
        import threading

        TrialCache(tmp_path)  # create the store and its marker
        self._age_marker(tmp_path)
        sweeps = []
        monkeypatch.setattr(
            TrialCache,
            "prune_tmp",
            lambda self, *args, **kwargs: sweeps.append(1) or 0,
        )
        barrier = threading.Barrier(8)

        def open_store():
            barrier.wait()
            TrialCache(tmp_path)

        threads = [
            threading.Thread(target=open_store) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(sweeps) == 1
        # The winner removed its claim and refreshed the marker, so a
        # later open neither sweeps again nor finds a stale claim.
        assert not (tmp_path / ".last-prune.claim").exists()
        TrialCache(tmp_path)
        assert len(sweeps) == 1

    def test_stranded_claim_ages_out(self, tmp_path, monkeypatch):
        """A pruner killed mid-sweep must not block pruning forever."""
        import os
        import time

        TrialCache(tmp_path)
        self._age_marker(tmp_path)
        claim = tmp_path / ".last-prune.claim"
        claim.touch()
        stamp = time.time() - 7200
        os.utime(claim, (stamp, stamp))
        sweeps = []
        monkeypatch.setattr(
            TrialCache,
            "prune_tmp",
            lambda self, *args, **kwargs: sweeps.append(1) or 0,
        )
        TrialCache(tmp_path)  # sees the dead claim: removes it, skips
        assert sweeps == []
        assert not claim.exists()
        TrialCache(tmp_path)  # re-elects and sweeps
        assert len(sweeps) == 1

    def test_unwritable_marker_skips_sweep_instead_of_crashing(
        self, tmp_path, monkeypatch
    ):
        """Shared store, marker owned by someone else: the open must
        skip the sweep (best-effort hygiene), not raise."""
        import pathlib

        TrialCache(tmp_path)
        self._age_marker(tmp_path)
        sweeps = []
        monkeypatch.setattr(
            TrialCache,
            "prune_tmp",
            lambda self, *args, **kwargs: sweeps.append(1) or 0,
        )
        real_touch = pathlib.Path.touch

        def deny_marker_touch(self, *args, **kwargs):
            if self.name == ".last-prune":
                raise PermissionError("someone else's marker")
            return real_touch(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "touch", deny_marker_touch)
        TrialCache(tmp_path)  # must not raise
        assert sweeps == []
        # The claim was released, so a later (writable) open prunes.
        assert not (tmp_path / ".last-prune.claim").exists()

    def test_killed_writer_orphan_is_recovered(self, tmp_path, monkeypatch):
        """A put() that dies after mkstemp leaves a tmp a later open reaps."""
        import os

        cache = TrialCache(tmp_path)
        real_replace = os.replace

        def dying_replace(src, dst):
            raise KeyboardInterrupt("killed mid-publish")

        real_unlink = os.unlink
        monkeypatch.setattr(os, "replace", dying_replace)
        # Simulate SIGKILL: even put()'s own unlink cleanup never runs.
        monkeypatch.setattr(os, "unlink", lambda path: None)
        with pytest.raises(KeyboardInterrupt):
            cache.put("ab" + "0" * 62, {"correlation": np.zeros(2)})
        monkeypatch.setattr(os, "replace", real_replace)
        monkeypatch.setattr(os, "unlink", real_unlink)
        orphans = list(cache.root.glob("*/*.tmp"))
        assert len(orphans) == 1
        stamp = __import__("time").time() - 7200
        os.utime(orphans[0], (stamp, stamp))
        self._age_marker(tmp_path)
        TrialCache(tmp_path)
        assert not orphans[0].exists()


class TestEngineIntegration:
    def test_hit_miss_partitioning(self, planetlab_small, tmp_path):
        cache = TrialCache(tmp_path)
        tasks = _tasks(n_trials=3)
        first = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, cache=cache
        )
        assert cache.stats.misses == 3 and cache.stats.stores == 3
        second = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, cache=cache
        )
        assert cache.stats.hits == 3
        for errors_a, errors_b in zip(first, second):
            assert set(errors_a) == set(errors_b)
            for name in errors_a:
                assert np.array_equal(errors_a[name], errors_b[name])

    def test_warm_run_executes_nothing(
        self, planetlab_small, tmp_path, monkeypatch
    ):
        cache = TrialCache(tmp_path)
        tasks = _tasks(n_trials=2)
        run_scenario_tasks(planetlab_small, tasks, config=FAST, cache=cache)

        def boom(*args, **kwargs):
            raise AssertionError("cache hit must not execute the trial")

        monkeypatch.setattr(engine, "_execute_task", boom)
        warm = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, cache=cache
        )
        assert len(warm) == 2

    def test_default_seeds_still_execute(self, planetlab_small):
        """ScenarioTask's declared defaults (None seeds) stay runnable."""
        task = engine.ScenarioTask(
            group=0,
            factory="clustered",
            factory_kwargs={"congested_fraction": 0.1},
        )
        (result,) = run_scenario_tasks(
            planetlab_small, [task], config=FAST
        )
        assert set(result) == {"correlation", "independence"}

    def test_none_seeded_tasks_bypass_the_cache(
        self, planetlab_small, tmp_path
    ):
        """Fresh-entropy trials are irreproducible: never keyed/stored,
        so distinct random trials can't replay each other's results."""
        task = engine.ScenarioTask(
            group=0,
            factory="clustered",
            factory_kwargs={"congested_fraction": 0.1},
        )
        cache = TrialCache(tmp_path)
        run_scenario_tasks(
            planetlab_small, [task], config=FAST, cache=cache
        )
        run_scenario_tasks(
            planetlab_small, [task], config=FAST, cache=cache
        )
        assert cache.stats == CacheStats(hits=0, misses=0, stores=0)
        assert list(tmp_path.rglob("*.npz")) == []

    def test_partial_hits_only_compute_misses(
        self, planetlab_small, tmp_path
    ):
        tasks = _tasks(n_trials=3)
        cache = TrialCache(tmp_path)
        run_scenario_tasks(
            planetlab_small, tasks[:2], config=FAST, cache=cache
        )
        mixed = TrialCache(tmp_path)
        results = run_scenario_tasks(
            planetlab_small, tasks, config=FAST, cache=mixed
        )
        assert mixed.stats.hits == 2
        assert mixed.stats.misses == 1 and mixed.stats.stores == 1
        assert len(results) == 3

    def test_cached_serial_pooled_figures_bit_identical(
        self, planetlab_small, tmp_path
    ):
        kwargs = dict(
            instance=planetlab_small,
            fractions=(0.05, 0.10),
            config=FAST,
            n_trials=2,
            seed=31,
        )
        serial = figure3_sweep(workers=1, **kwargs)
        pooled = figure3_sweep(workers=2, **kwargs)
        cold_cache = TrialCache(tmp_path)
        cold = figure3_sweep(workers=2, cache=cold_cache, **kwargs)
        warm_cache = TrialCache(tmp_path)
        warm = figure3_sweep(workers=1, cache=warm_cache, **kwargs)
        assert serial.points == pooled.points
        assert serial.points == cold.points
        assert serial.points == warm.points
        assert warm_cache.stats.misses == 0
        assert warm_cache.stats.hits == 4

    def test_cdf_driver_uses_cache(self, planetlab_small, tmp_path):
        kwargs = dict(
            instance=planetlab_small,
            config=FAST,
            n_trials=2,
            seed=32,
        )
        plain = figure4_cdf(**kwargs)
        cache = TrialCache(tmp_path)
        cold = figure4_cdf(cache=cache, **kwargs)
        warm = figure4_cdf(cache=cache, **kwargs)
        assert cache.stats.hits == 2 and cache.stats.misses == 2
        for name in plain.curves:
            assert np.array_equal(plain.curves[name], cold.curves[name])
            assert np.array_equal(plain.curves[name], warm.curves[name])


class TestPackedTransport:
    def test_pack_unpack_roundtrip(self):
        dicts = [
            {"correlation": np.array([0.1, 0.2]), "independence": np.array([0.3])},
            {"correlation": np.empty(0), "independence": np.array([0.4, 0.5])},
            {},
        ]
        descriptor, buffer = engine._pack_error_dicts(dicts)
        assert buffer.dtype == np.float64
        assert buffer.size == 5
        restored = engine._unpack_error_dicts(descriptor, buffer)
        assert len(restored) == 3
        for original, copy in zip(dicts, restored):
            assert list(original) == list(copy)
            for name in original:
                assert np.array_equal(original[name], copy[name])

    def test_empty_chunk(self):
        descriptor, buffer = engine._pack_error_dicts([])
        assert engine._unpack_error_dicts(descriptor, buffer) == []

    def test_chunks_cover_in_order(self):
        tasks = list(range(10))
        chunks = engine._chunk_tasks(tasks, 2)
        assert [t for chunk in chunks for t in chunk] == tasks
        assert all(chunks)


class TestResolveCacheDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "cli") == tmp_path / "cli"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_disabled_beats_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "cli", disabled=True) is None

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(None) is None


class TestWorkersEnv:
    def test_repro_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert engine.resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert engine.resolve_workers(None) >= 1
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert engine.resolve_workers(None) == 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert engine.resolve_workers(None) == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert engine.resolve_workers(2) == 2

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            engine.resolve_workers(None)
