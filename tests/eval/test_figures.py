"""Unit tests for the figure drivers (fast, tiny instances)."""

import numpy as np
import pytest

from repro.eval.figures import (
    SCALES,
    CdfResult,
    default_config,
    default_instance,
    figure3_cdf,
    figure3_sweep,
    figure4_cdf,
    figure5_cdf,
)
from repro.simulate.experiment import ExperimentConfig

FAST = ExperimentConfig(n_snapshots=300, packets_per_path=300)


class TestDefaults:
    def test_scales_have_required_keys(self):
        for name, preset in SCALES.items():
            assert "brite" in preset
            assert "planetlab" in preset
            assert preset["n_snapshots"] > 0

    def test_default_instance_brite(self, brite_small):
        # Tiny direct call (not preset sized) to keep tests quick:
        instance = brite_small.instance
        assert instance.metadata["generator"] == "brite"

    def test_default_instance_validation(self):
        with pytest.raises(ValueError):
            default_instance("nonsense")
        with pytest.raises(ValueError):
            default_instance("brite", scale="nonsense")

    def test_default_config(self):
        config = default_config("small")
        assert config.n_snapshots == SCALES["small"]["n_snapshots"]


class TestFigure3(object):
    def test_sweep_structure(self, planetlab_small):
        result = figure3_sweep(
            instance=planetlab_small,
            fractions=(0.05, 0.10),
            config=FAST,
            seed=1,
        )
        assert len(result.points) == 2
        assert result.points[0].congested_fraction == 0.05
        for point in result.points:
            assert point.correlation.n_links > 0

    def test_cdf_structure(self, planetlab_small):
        result = figure3_cdf(
            instance=planetlab_small,
            correlation_level="high",
            config=FAST,
            seed=2,
        )
        assert isinstance(result, CdfResult)
        assert set(result.curves) == {"correlation", "independence"}
        for curve in result.curves.values():
            assert curve[-1] == 1.0
            assert all(a <= b for a, b in zip(curve, curve[1:]))

    def test_loose_level(self, planetlab_small):
        result = figure3_cdf(
            instance=planetlab_small,
            correlation_level="loose",
            config=FAST,
            seed=3,
        )
        assert result.metadata["correlation_level"] == "loose"

    def test_invalid_level_rejected(self, planetlab_small):
        with pytest.raises(ValueError):
            figure3_cdf(
                instance=planetlab_small,
                correlation_level="medium",
                config=FAST,
            )

    def test_trials_pool_links(self, planetlab_small):
        single = figure3_cdf(
            instance=planetlab_small, config=FAST, n_trials=1, seed=4
        )
        double = figure3_cdf(
            instance=planetlab_small, config=FAST, n_trials=2, seed=4
        )
        assert (
            double.metadata["n_scored"]["correlation"]
            > single.metadata["n_scored"]["correlation"]
        )


class TestFigure4And5:
    def test_figure4(self, planetlab_small):
        result = figure4_cdf(
            instance=planetlab_small,
            unidentifiable_fraction=0.25,
            config=FAST,
            seed=5,
        )
        assert result.metadata["unidentifiable_fraction"] == 0.25
        assert np.all(result.curves["correlation"] <= 1.0)

    def test_figure5(self, planetlab_small):
        result = figure5_cdf(
            instance=planetlab_small,
            mislabeled_fraction=0.25,
            config=FAST,
            seed=6,
        )
        assert result.metadata["mislabeled_fraction"] == 0.25
        assert result.curves["independence"][-1] == 1.0


class TestHeadlineShape:
    def test_correlation_beats_independence_under_clustering(
        self, planetlab_small
    ):
        """The paper's core claim at small scale: at 10% congestion with
        high correlation, the correlation algorithm has lower p90 error
        than the independence baseline."""
        result = figure3_sweep(
            instance=planetlab_small,
            fractions=(0.10,),
            config=ExperimentConfig(
                n_snapshots=800, packets_per_path=500
            ),
            seed=7,
        )
        point = result.points[0]
        assert point.correlation.p90 <= point.independence.p90
