"""Unit tests for the common-cause (shared fate) model."""

import math

import pytest

from repro.exceptions import ModelError
from repro.model.common_cause import CommonCauseModel
from repro.utils.rng import as_generator


@pytest.fixture()
def model():
    return CommonCauseModel(
        frozenset({0, 1, 2}),
        cause_probability=0.3,
        background={0: 0.1, 1: 0.05, 2: 0.0},
    )


class TestValidation:
    def test_scalar_background_broadcast(self):
        model = CommonCauseModel(
            frozenset({0, 1}), cause_probability=0.2, background=0.1
        )
        assert model.background_of(0) == 0.1
        assert model.background_of(1) == 0.1

    def test_missing_background_rejected(self):
        with pytest.raises(ModelError, match="missing"):
            CommonCauseModel(
                frozenset({0, 1}),
                cause_probability=0.2,
                background={0: 0.1},
            )

    def test_bad_cause_probability_rejected(self):
        with pytest.raises(ValueError):
            CommonCauseModel(frozenset({0}), cause_probability=1.2)


class TestExactQueries:
    def test_marginal_formula(self, model):
        """P(X=1) = a + (1-a)·b."""
        assert math.isclose(model.marginal(0), 0.3 + 0.7 * 0.1)
        assert math.isclose(model.marginal(2), 0.3)

    def test_joint_formula(self, model):
        """P(all of A) = a + (1-a)·Π b."""
        assert math.isclose(
            model.joint(frozenset({0, 1})), 0.3 + 0.7 * 0.1 * 0.05
        )

    def test_joint_of_empty(self, model):
        assert model.joint(frozenset()) == 1.0

    def test_strong_positive_correlation(self, model):
        joint = model.joint(frozenset({0, 1}))
        product = model.marginal(0) * model.marginal(1)
        assert joint > product

    def test_state_probability_full_set_includes_cause(self, model):
        direct = model.state_probability(frozenset({0, 1, 2}))
        # Cause-on mass (0.3) plus cause-off backgrounds product
        # 0.7 * 0.1 * 0.05 * 0.0 = 0.
        assert math.isclose(direct, 0.3)

    def test_state_probability_partial_excludes_cause(self, model):
        direct = model.state_probability(frozenset({0}))
        assert math.isclose(direct, 0.7 * 0.1 * 0.95 * 1.0)

    def test_support_sums_to_one(self, model):
        assert math.isclose(
            sum(p for _, p in model.support()), 1.0, abs_tol=1e-9
        )

    def test_support_consistent_with_marginals(self, model):
        support = list(model.support())
        for link_id in model.links:
            from_support = sum(
                p for state, p in support if link_id in state
            )
            assert math.isclose(from_support, model.marginal(link_id))


class TestSampling:
    def test_cause_congests_everything(self):
        model = CommonCauseModel(
            frozenset({0, 1}), cause_probability=1.0, background=0.0
        )
        assert model.sample(as_generator(0)) == frozenset({0, 1})

    def test_empirical_joint(self, model):
        matrix = model.sample_matrix(as_generator(8), 20_000)
        both = (matrix[:, 0] & matrix[:, 1]).mean()
        assert abs(both - model.joint(frozenset({0, 1}))) < 0.02

    def test_empirical_marginals(self, model):
        matrix = model.sample_matrix(as_generator(9), 20_000)
        for column, link_id in enumerate(model.member_order):
            assert abs(
                matrix[:, column].mean() - model.marginal(link_id)
            ) < 0.02
