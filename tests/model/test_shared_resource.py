"""Unit tests for the shared-resource (hidden substrate) model."""

import math

import pytest

from repro.exceptions import ModelError
from repro.model.shared_resource import SharedResourceModel
from repro.utils.rng import as_generator


@pytest.fixture()
def model():
    """Two logical links sharing resource "t"; one private each."""
    return SharedResourceModel(
        {0: {"a", "t"}, 1: {"b", "t"}},
        {"a": 0.1, "b": 0.2, "t": 0.15},
    )


class TestValidation:
    def test_empty_map_rejected(self):
        with pytest.raises(ModelError):
            SharedResourceModel({}, {})

    def test_link_without_resources_rejected(self):
        with pytest.raises(ModelError, match="no resource"):
            SharedResourceModel({0: set()}, {})

    def test_missing_resource_probability_rejected(self):
        with pytest.raises(ModelError, match="no probability"):
            SharedResourceModel({0: {"a"}}, {})


class TestExactQueries:
    def test_marginal_formula(self, model):
        """P(X=1) = 1 − Π (1−q_r) over the link's resources."""
        assert math.isclose(model.marginal(0), 1 - 0.9 * 0.85)
        assert math.isclose(model.marginal(1), 1 - 0.8 * 0.85)

    def test_joint_by_inclusion_exclusion(self, model):
        """P(X0 ∧ X1) = 1 − P(X0=0) − P(X1=0) + P(both good)."""
        both_good = 0.9 * 0.8 * 0.85  # all three resources good
        expected = 1 - 0.9 * 0.85 - 0.8 * 0.85 + both_good
        assert math.isclose(model.joint(frozenset({0, 1})), expected)

    def test_sharing_creates_positive_correlation(self, model):
        joint = model.joint(frozenset({0, 1}))
        product = model.marginal(0) * model.marginal(1)
        assert joint > product

    def test_disjoint_resources_are_independent(self):
        model = SharedResourceModel(
            {0: {"a"}, 1: {"b"}}, {"a": 0.3, "b": 0.4}
        )
        assert math.isclose(
            model.joint(frozenset({0, 1})),
            model.marginal(0) * model.marginal(1),
        )

    def test_sharing_pairs(self, model):
        assert model.sharing_pairs() == [(0, 1)]

    def test_support_sums_to_one(self, model):
        assert math.isclose(
            sum(p for _, p in model.support()), 1.0, abs_tol=1e-9
        )

    def test_support_consistent_with_joint(self, model):
        support = list(model.support())
        joint_from_support = sum(
            p for state, p in support if {0, 1} <= state
        )
        assert math.isclose(
            joint_from_support, model.joint(frozenset({0, 1}))
        )

    def test_state_probability(self, model):
        """State {0} alone: t good, a failed, b good... but careful —
        if t fails both links congest, so {0} requires a failed, t good,
        and b anything that doesn't congest link 1 alone: b good."""
        expected = 0.1 * 0.8 * 0.85
        assert math.isclose(
            model.state_probability(frozenset({0})), expected
        )


class TestSampling:
    def test_shared_failure_hits_both(self):
        model = SharedResourceModel(
            {0: {"t"}, 1: {"t"}}, {"t": 1.0}
        )
        assert model.sample(as_generator(0)) == frozenset({0, 1})

    def test_empirical_marginals(self, model):
        matrix = model.sample_matrix(as_generator(11), 20_000)
        for column, link_id in enumerate(model.member_order):
            assert abs(
                matrix[:, column].mean() - model.marginal(link_id)
            ) < 0.02

    def test_empirical_joint(self, model):
        matrix = model.sample_matrix(as_generator(12), 20_000)
        both = (matrix[:, 0] & matrix[:, 1]).mean()
        assert abs(both - model.joint(frozenset({0, 1}))) < 0.02

    def test_resources_listing(self, model):
        assert model.resources == ["a", "b", "t"]
        assert model.resources_of(0) == frozenset({"a", "t"})
