"""Unit tests for the packet-loss-rate model of [13]."""

import math

import numpy as np
import pytest

from repro.model.loss import (
    DEFAULT_LINK_THRESHOLD,
    LossModel,
    path_threshold,
)
from repro.utils.rng import as_generator


class TestPathThreshold:
    def test_single_link(self):
        assert math.isclose(path_threshold(1), DEFAULT_LINK_THRESHOLD)

    def test_formula(self):
        """t_p = 1 − (1 − t_l)^d."""
        assert math.isclose(path_threshold(3), 1 - 0.99**3)

    def test_monotone_in_length(self):
        values = [path_threshold(d) for d in range(1, 10)]
        assert values == sorted(values)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            path_threshold(0)

    def test_custom_threshold(self):
        assert math.isclose(path_threshold(2, 0.5), 0.75)


class TestLossModel:
    def test_default_threshold_is_paper_value(self):
        assert LossModel().link_threshold == 0.01

    def test_degenerate_thresholds_rejected(self):
        with pytest.raises(ValueError):
            LossModel(0.0)
        with pytest.raises(ValueError):
            LossModel(1.0)

    def test_good_links_below_threshold(self):
        model = LossModel()
        congested = np.zeros(1000, dtype=bool)
        rates = model.sample_loss_rates(congested, as_generator(0))
        assert np.all(rates <= model.link_threshold)
        assert np.all(rates >= 0.0)

    def test_congested_links_above_threshold(self):
        model = LossModel()
        congested = np.ones(1000, dtype=bool)
        rates = model.sample_loss_rates(congested, as_generator(1))
        assert np.all(rates >= model.link_threshold)
        assert np.all(rates <= 1.0)

    def test_mixed_states(self):
        model = LossModel()
        congested = np.array([True, False, True, False])
        rates = model.sample_loss_rates(congested, as_generator(2))
        assert rates[0] > model.link_threshold >= rates[1]
        assert rates[2] > model.link_threshold >= rates[3]

    def test_path_threshold_delegation(self):
        model = LossModel(0.02)
        assert math.isclose(model.path_threshold(2), 1 - 0.98**2)

    def test_loss_rates_spread_over_regimes(self):
        """Congested loss rates should span (t_l, 1], not cluster."""
        model = LossModel()
        congested = np.ones(5000, dtype=bool)
        rates = model.sample_loss_rates(congested, as_generator(3))
        assert rates.max() > 0.9
        assert rates.min() < 0.1
