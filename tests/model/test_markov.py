"""Unit tests for the Markov-modulated (bursty) congestion model."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.model.markov import MarkovModulatedModel
from repro.utils.rng import as_generator


@pytest.fixture()
def model():
    return MarkovModulatedModel(
        frozenset({0, 1}),
        calm=0.02,
        burst={0: 0.8, 1: 0.6},
        p_calm_to_burst=0.1,
        p_burst_to_calm=0.3,
    )


class TestValidation:
    def test_non_ergodic_rejected(self):
        with pytest.raises(ModelError, match="ergodic"):
            MarkovModulatedModel(
                frozenset({0}),
                calm=0.1,
                burst=0.9,
                p_calm_to_burst=0.0,
                p_burst_to_calm=0.5,
            )

    def test_missing_state_probability_rejected(self):
        with pytest.raises(ModelError, match="missing"):
            MarkovModulatedModel(
                frozenset({0, 1}),
                calm={0: 0.1},
                burst=0.9,
                p_calm_to_burst=0.1,
                p_burst_to_calm=0.1,
            )


class TestExactQueries:
    def test_stationary_distribution(self, model):
        assert math.isclose(
            model.stationary_burst_probability, 0.1 / 0.4
        )

    def test_marginal_is_mixture(self, model):
        pi = 0.25
        assert math.isclose(
            model.marginal(0), pi * 0.8 + (1 - pi) * 0.02
        )

    def test_joint_is_mixture_of_products(self, model):
        pi = 0.25
        expected = pi * 0.8 * 0.6 + (1 - pi) * 0.02 * 0.02
        assert math.isclose(model.joint(frozenset({0, 1})), expected)

    def test_hidden_state_creates_positive_correlation(self, model):
        joint = model.joint(frozenset({0, 1}))
        assert joint > model.marginal(0) * model.marginal(1)

    def test_support_sums_to_one(self, model):
        assert math.isclose(
            sum(p for _, p in model.support()), 1.0, abs_tol=1e-9
        )

    def test_support_consistent_with_marginals(self, model):
        support = list(model.support())
        for link_id in model.links:
            from_support = sum(
                p for state, p in support if link_id in state
            )
            assert math.isclose(
                from_support, model.marginal(link_id), abs_tol=1e-9
            )


class TestSampling:
    def test_iid_sample_respects_marginals(self, model):
        rng = as_generator(0)
        hits = sum(0 in model.sample(rng) for _ in range(20_000))
        assert abs(hits / 20_000 - model.marginal(0)) < 0.02

    def test_chain_sampling_respects_stationary_marginals(self, model):
        matrix = model.sample_matrix(as_generator(1), 60_000)
        assert abs(matrix[:, 0].mean() - model.marginal(0)) < 0.02

    def test_chain_sampling_is_time_correlated(self, model):
        """Consecutive snapshots must be positively correlated — the
        whole point of the model."""
        matrix = model.sample_matrix(as_generator(2), 40_000)
        x = matrix[:-1, 0].astype(float)
        y = matrix[1:, 0].astype(float)
        correlation = np.corrcoef(x, y)[0, 1]
        assert correlation > 0.1

    def test_single_sample_calls_are_iid(self, model):
        """Scalar sample() draws the state fresh: consecutive calls on
        one generator carry no memory."""
        rng = as_generator(3)
        draws = np.array(
            [0 in model.sample(rng) for _ in range(40_000)], dtype=float
        )
        correlation = np.corrcoef(draws[:-1], draws[1:])[0, 1]
        assert abs(correlation) < 0.03


class TestAssumptionStress:
    def test_estimates_survive_temporal_correlation(self, instance_1a):
        """The algorithms consume per-snapshot frequencies; an ergodic
        chain keeps those consistent, so temporal correlation should
        cost variance, not correctness."""
        from repro.core import infer_congestion
        from repro.model import IndependentModel, NetworkCongestionModel
        from repro.simulate import ExperimentConfig, run_experiment

        topology = instance_1a.topology
        e1, e2, e3, e4 = (
            topology.link(n).id for n in ("e1", "e2", "e3", "e4")
        )
        model = NetworkCongestionModel(
            instance_1a.correlation,
            [
                MarkovModulatedModel(
                    frozenset({e1, e2}),
                    calm=0.02,
                    burst=0.8,
                    p_calm_to_burst=0.05,
                    p_burst_to_calm=0.25,
                ),
                IndependentModel({e3: 0.3}),
                IndependentModel({e4: 0.15}),
            ],
        )
        truth = model.link_marginals()
        run = run_experiment(
            topology,
            model,
            config=ExperimentConfig(n_snapshots=12_000),
            seed=44,
        )
        result = infer_congestion(
            topology, instance_1a.correlation, run.observations
        )
        errors = np.abs(result.congestion_probabilities - truth)
        assert errors.max() < 0.08
