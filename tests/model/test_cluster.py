"""Unit tests for the Figure-3 cluster scenario model."""

import math

import pytest

from repro.exceptions import ModelError
from repro.model.cluster import ActiveSubsetModel, make_cluster_model
from repro.model.common_cause import CommonCauseModel
from repro.model.independent import IndependentModel
from repro.utils.rng import as_generator


@pytest.fixture()
def model():
    """Set {0,1,2,3}; active {0,1} via common cause."""
    inner = CommonCauseModel(
        frozenset({0, 1}), cause_probability=0.25, background=0.1
    )
    return ActiveSubsetModel(frozenset({0, 1, 2, 3}), inner)


class TestActiveSubsetModel:
    def test_inactive_links_never_congest(self, model):
        assert model.marginal(2) == 0.0
        assert model.marginal(3) == 0.0
        rng = as_generator(0)
        for _ in range(100):
            state = model.sample(rng)
            assert not state & {2, 3}

    def test_active_marginals_delegate(self, model):
        assert math.isclose(model.marginal(0), 0.25 + 0.75 * 0.1)

    def test_joint_with_inactive_is_zero(self, model):
        assert model.joint(frozenset({0, 2})) == 0.0

    def test_joint_of_active_subset(self, model):
        assert math.isclose(
            model.joint(frozenset({0, 1})), 0.25 + 0.75 * 0.01
        )

    def test_state_probability_routed(self, model):
        inner = model.inner
        assert model.state_probability(
            frozenset({0})
        ) == inner.state_probability(frozenset({0}))
        assert model.state_probability(frozenset({2})) == 0.0

    def test_active_links_must_be_members(self):
        inner = IndependentModel({9: 0.5})
        with pytest.raises(ModelError, match="not all members"):
            ActiveSubsetModel(frozenset({0, 1}), inner)

    def test_sample_matrix_embeds_columns(self, model):
        matrix = model.sample_matrix(as_generator(1), 2000)
        assert matrix.shape == (2000, 4)
        # Columns follow member_order = [0,1,2,3]; inactive all-False.
        assert not matrix[:, 2].any()
        assert not matrix[:, 3].any()
        assert abs(matrix[:, 0].mean() - model.marginal(0)) < 0.05

    def test_support_is_inner_support(self, model):
        states = {state for state, _ in model.support()}
        assert all(state <= frozenset({0, 1}) for state in states)


class TestMakeClusterModel:
    def test_empty_active_set_never_congests(self):
        model = make_cluster_model(
            frozenset({5, 6}),
            frozenset(),
            cause_probability=0.5,
            background=0.2,
        )
        assert model.marginal(5) == 0.0
        assert model.marginal(6) == 0.0
        assert model.sample(as_generator(0)) == frozenset()

    def test_active_model_is_common_cause(self):
        model = make_cluster_model(
            frozenset({5, 6, 7}),
            frozenset({5, 6}),
            cause_probability=0.4,
            background=0.0,
        )
        # With zero background the actives congest only together.
        assert math.isclose(model.joint(frozenset({5, 6})), 0.4)
        assert math.isclose(model.marginal(5), 0.4)
        assert model.marginal(7) == 0.0

    def test_per_link_background(self):
        model = make_cluster_model(
            frozenset({1, 2}),
            frozenset({1, 2}),
            cause_probability=0.0,
            background={1: 0.3, 2: 0.1},
        )
        assert math.isclose(model.marginal(1), 0.3)
        assert math.isclose(model.marginal(2), 0.1)
