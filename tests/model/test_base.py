"""Unit tests for the SetCongestionModel base-class defaults."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.utils.rng import as_generator


class _MinimalModel(SetCongestionModel):
    """Deterministic toy subclass exercising the base defaults."""

    def sample(self, rng):
        # Always congests the smallest member link.
        return frozenset({min(self.links)})

    def marginal(self, link_id):
        self._check_member(link_id)
        return 1.0 if link_id == min(self.links) else 0.0

    def joint(self, subset):
        subset = self._check_subset(subset)
        return 1.0 if subset <= {min(self.links)} else 0.0


class TestBaseDefaults:
    def test_empty_links_rejected(self):
        with pytest.raises(ModelError):
            _MinimalModel(frozenset())

    def test_member_order_sorted(self):
        model = _MinimalModel(frozenset({5, 2, 9}))
        assert model.member_order == [2, 5, 9]

    def test_default_sample_matrix_loops_over_sample(self):
        model = _MinimalModel(frozenset({2, 5}))
        matrix = model.sample_matrix(as_generator(0), 4)
        assert matrix.shape == (4, 2)
        # Column 0 corresponds to link 2 (the min): always congested.
        assert np.all(matrix[:, 0])
        assert not matrix[:, 1].any()

    def test_support_unavailable_by_default(self):
        model = _MinimalModel(frozenset({1}))
        assert not model.enumerable
        with pytest.raises(ModelError, match="cannot enumerate"):
            list(model.support())

    def test_state_probability_needs_support(self):
        model = _MinimalModel(frozenset({1}))
        with pytest.raises(ModelError):
            model.state_probability(frozenset({1}))

    def test_check_subset_rejects_foreign_links(self):
        model = _MinimalModel(frozenset({1, 2}))
        with pytest.raises(ModelError, match="not a subset"):
            model.joint(frozenset({3}))
