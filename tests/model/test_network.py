"""Unit tests for the network-level congestion model."""

import math

import numpy as np
import pytest

from repro.core.correlation import CorrelationStructure
from repro.exceptions import ModelError
from repro.model import (
    IndependentModel,
    NetworkCongestionModel,
)
from repro.utils.rng import as_generator


class TestConstruction:
    def test_model_count_mismatch_rejected(self, instance_1a):
        with pytest.raises(ModelError, match="set models"):
            NetworkCongestionModel(
                instance_1a.correlation, [IndependentModel({0: 0.1})]
            )

    def test_link_mismatch_rejected(self, instance_1a):
        correlation = instance_1a.correlation
        models = [
            IndependentModel({k: 0.1 for k in group})
            for group in correlation.sets
        ]
        # Swap two models so their links no longer match their sets.
        models[0], models[1] = models[1], models[0]
        with pytest.raises(ModelError, match="governs links"):
            NetworkCongestionModel(correlation, models)

    def test_independent_constructor(self, instance_1a):
        model = NetworkCongestionModel.independent(
            instance_1a.correlation, {0: 0.5, 1: 0.1, 2: 0.2, 3: 0.0}
        )
        truth = model.link_marginals()
        assert truth[0] == 0.5
        assert truth[3] == 0.0

    def test_independent_from_array(self, instance_1a):
        model = NetworkCongestionModel.independent(
            instance_1a.correlation, np.array([0.1, 0.2, 0.3, 0.4])
        )
        assert math.isclose(model.link_marginals()[2], 0.3)


class TestExactQueries:
    def test_marginals_match_set_models(self, model_1a, truth_1a):
        assert np.allclose(model_1a.link_marginals(), truth_1a)

    def test_joint_within_set(self, instance_1a, model_1a):
        topology = instance_1a.topology
        e1, e2 = topology.link("e1").id, topology.link("e2").id
        assert math.isclose(model_1a.joint({e1, e2}), 0.2)

    def test_joint_across_sets_is_product(self, instance_1a, model_1a):
        topology = instance_1a.topology
        e1, e3 = topology.link("e1").id, topology.link("e3").id
        assert math.isclose(model_1a.joint({e1, e3}), 0.25 * 0.3)

    def test_enumerable(self, model_1a):
        assert model_1a.enumerable

    def test_iter_states_total_probability(self, model_1a):
        total = sum(p for _, p in model_1a.iter_states())
        assert math.isclose(total, 1.0, abs_tol=1e-9)

    def test_iter_states_max_guard(self, model_1a):
        with pytest.raises(ModelError, match="max_states"):
            list(model_1a.iter_states(max_states=1))

    def test_iter_states_marginal_consistency(self, model_1a, truth_1a):
        sums = np.zeros(model_1a.n_links)
        for state, probability in model_1a.iter_states():
            for link_id in state:
                sums[link_id] += probability
        assert np.allclose(sums, truth_1a, atol=1e-9)


class TestSampling:
    def test_sample_indicator_shape(self, model_1a):
        indicator = model_1a.sample_indicator(as_generator(0))
        assert indicator.shape == (4,)
        assert indicator.dtype == bool

    def test_sample_states_marginals(self, model_1a, truth_1a):
        states = model_1a.sample_states(as_generator(21), 20_000)
        assert states.shape == (20_000, 4)
        empirical = states.mean(axis=0)
        assert np.allclose(empirical, truth_1a, atol=0.02)

    def test_sample_states_joint(self, instance_1a, model_1a):
        topology = instance_1a.topology
        e1, e2 = topology.link("e1").id, topology.link("e2").id
        states = model_1a.sample_states(as_generator(22), 20_000)
        both = (states[:, e1] & states[:, e2]).mean()
        assert abs(both - 0.2) < 0.02

    def test_cross_set_independence_in_samples(
        self, instance_1a, model_1a
    ):
        topology = instance_1a.topology
        e1, e3 = topology.link("e1").id, topology.link("e3").id
        states = model_1a.sample_states(as_generator(23), 40_000)
        joint = (states[:, e1] & states[:, e3]).mean()
        assert abs(joint - 0.25 * 0.3) < 0.01
