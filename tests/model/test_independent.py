"""Unit tests for the independent congestion model."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.model.independent import IndependentModel
from repro.utils.rng import as_generator


@pytest.fixture()
def model():
    return IndependentModel({0: 0.2, 1: 0.5, 2: 0.0})


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            IndependentModel({})

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            IndependentModel({0: 1.5})


class TestExactQueries:
    def test_marginals(self, model):
        assert model.marginal(0) == 0.2
        assert model.marginal(2) == 0.0

    def test_non_member_rejected(self, model):
        with pytest.raises(ModelError):
            model.marginal(9)

    def test_joint_is_product(self, model):
        assert math.isclose(model.joint(frozenset({0, 1})), 0.1)

    def test_joint_with_impossible_link(self, model):
        assert model.joint(frozenset({0, 2})) == 0.0

    def test_state_probability(self, model):
        # P(S = {0}) = 0.2 * 0.5 * 1.0
        assert math.isclose(
            model.state_probability(frozenset({0})), 0.2 * 0.5
        )

    def test_support_sums_to_one(self, model):
        total = sum(p for _, p in model.support())
        assert math.isclose(total, 1.0)

    def test_support_matches_state_probability(self, model):
        for state, probability in model.support():
            assert math.isclose(
                probability, model.state_probability(state)
            )


class TestSampling:
    def test_sample_within_links(self, model):
        rng = as_generator(0)
        for _ in range(50):
            assert model.sample(rng) <= model.links

    def test_impossible_link_never_sampled(self, model):
        rng = as_generator(1)
        for _ in range(200):
            assert 2 not in model.sample(rng)

    def test_empirical_marginals(self, model):
        matrix = model.sample_matrix(as_generator(3), 20_000)
        order = model.member_order
        for column, link_id in enumerate(order):
            assert abs(
                matrix[:, column].mean() - model.marginal(link_id)
            ) < 0.02

    def test_sample_matrix_shape(self, model):
        matrix = model.sample_matrix(as_generator(0), 7)
        assert matrix.shape == (7, 3)
        assert matrix.dtype == bool

    def test_matrix_and_scalar_sampling_agree_statistically(self, model):
        rng = as_generator(5)
        scalar_hits = sum(
            0 in model.sample(rng) for _ in range(5000)
        )
        matrix_hits = int(
            model.sample_matrix(as_generator(6), 5000)[:, 0].sum()
        )
        assert abs(scalar_hits - matrix_hits) < 300
