"""Unit tests for the explicit joint congestion model."""

import math

import pytest

from repro.exceptions import ModelError
from repro.model.explicit import ExplicitJointModel
from repro.utils.rng import as_generator


@pytest.fixture()
def model():
    """The conftest Fig-1(a) set-1 distribution over {0, 1}."""
    return ExplicitJointModel(
        frozenset({0, 1}),
        {
            frozenset({0}): 0.05,
            frozenset({1}): 0.05,
            frozenset({0, 1}): 0.20,
        },
    )


class TestValidation:
    def test_leftover_mass_goes_to_empty_state(self, model):
        assert math.isclose(
            model.state_probability(frozenset()), 0.7
        )

    def test_explicit_empty_state(self):
        model = ExplicitJointModel(
            frozenset({0}), {frozenset(): 0.4, frozenset({0}): 0.6}
        )
        assert math.isclose(model.marginal(0), 0.6)

    def test_over_unit_mass_rejected(self):
        with pytest.raises(ModelError):
            ExplicitJointModel(
                frozenset({0}), {frozenset({0}): 1.4}
            )

    def test_bad_sum_with_explicit_empty_rejected(self):
        with pytest.raises(ModelError, match="sum to 1"):
            ExplicitJointModel(
                frozenset({0}),
                {frozenset(): 0.1, frozenset({0}): 0.1},
            )

    def test_negative_probability_rejected(self):
        with pytest.raises(ModelError, match="negative"):
            ExplicitJointModel(
                frozenset({0}), {frozenset({0}): -0.2}
            )

    def test_foreign_subset_rejected(self):
        with pytest.raises(ModelError):
            ExplicitJointModel(
                frozenset({0}), {frozenset({5}): 0.5}
            )


class TestExactQueries:
    def test_marginals(self, model):
        assert math.isclose(model.marginal(0), 0.25)
        assert math.isclose(model.marginal(1), 0.25)

    def test_joint(self, model):
        assert math.isclose(model.joint(frozenset({0, 1})), 0.20)

    def test_correlation_is_positive(self, model):
        # Joint 0.2 >> product 0.0625: strongly positively correlated.
        assert model.joint(frozenset({0, 1})) > (
            model.marginal(0) * model.marginal(1)
        )

    def test_support_is_exact(self, model):
        support = dict(model.support())
        assert math.isclose(support[frozenset({0, 1})], 0.2, abs_tol=1e-9)
        assert math.isclose(
            sum(support.values()), 1.0, abs_tol=1e-9
        )

    def test_enumerable(self, model):
        assert model.enumerable


class TestSampling:
    def test_empirical_state_frequencies(self, model):
        rng = as_generator(2)
        counts = {}
        n = 20_000
        for _ in range(n):
            state = model.sample(rng)
            counts[state] = counts.get(state, 0) + 1
        assert abs(counts.get(frozenset({0, 1}), 0) / n - 0.2) < 0.02
        assert abs(counts.get(frozenset(), 0) / n - 0.7) < 0.02

    def test_sample_matrix_marginals(self, model):
        matrix = model.sample_matrix(as_generator(4), 20_000)
        assert abs(matrix[:, 0].mean() - 0.25) < 0.02
        assert abs(matrix[:, 1].mean() - 0.25) < 0.02

    def test_sample_matrix_joint(self, model):
        matrix = model.sample_matrix(as_generator(5), 20_000)
        both = (matrix[:, 0] & matrix[:, 1]).mean()
        assert abs(both - 0.2) < 0.02
