"""Extension benchmarks: the future-work localization pipeline.

E1 — localization accuracy by probability source: MAP localization fed
     with the correlation algorithm's probabilities, the independence
     baseline's, and the true marginals (oracle reference).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.core import infer_congestion, infer_congestion_independent
from repro.eval import evaluate_localization, make_clustered_scenario
from repro.simulate import ExperimentConfig, run_experiment
from repro.utils.tables import format_table


@pytest.mark.benchmark(group="extension")
def test_e1_localization_by_probability_source(
    benchmark, planetlab_instance, out_dir
):
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.08, seed=600
    )
    train = run_experiment(
        planetlab_instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=1200, packets_per_path=800),
        seed=601,
    )
    sources = {
        "correlation": infer_congestion(
            planetlab_instance.topology,
            scenario.algorithm_correlation,
            train.observations,
        ).congestion_probabilities,
        "independence": infer_congestion_independent(
            planetlab_instance.topology, train.observations
        ).congestion_probabilities,
        "true marginals": scenario.truth_model.link_marginals(),
    }

    def run():
        return evaluate_localization(
            planetlab_instance.topology,
            scenario.truth_model,
            sources,
            config=ExperimentConfig(
                n_snapshots=25, packets_per_path=800
            ),
            max_nodes=20_000,
            seed=602,
        )

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        "extension_e1_localization",
        format_table(
            ["probability source", "precision", "recall", "f1"],
            [
                [label, score.precision, score.recall, score.f1]
                for label, score in scores.items()
            ],
            title=(
                "E1: MAP snapshot localization by probability source "
                "(paper future work)"
            ),
        ),
    )
    assert scores["true marginals"].f1 >= 0.5