"""Micro-benchmarks (M1–M4): the pipeline's hot components in isolation.

M1 — equation building (eligibility filtering + rank tracking);
M2 — the L1 linear program;
M3 — bulk snapshot simulation;
M4 — topology generation (Brite hierarchy, PlanetLab mesh);
plus the theorem algorithm and MAP localization on toy instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TheoremAlgorithm, build_equations, localize_map
from repro.core.solvers import solve_l1
from repro.eval import make_clustered_scenario
from repro.simulate import (
    ExactPathStateDistribution,
    ExperimentConfig,
    run_experiment,
)
from repro.topogen import fig_1a, generate_brite, generate_planetlab


@pytest.fixture(scope="module")
def measured_setup(planetlab_instance):
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=500
    )
    run = run_experiment(
        planetlab_instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=800, packets_per_path=800),
        seed=501,
    )
    return planetlab_instance, scenario, run


@pytest.mark.benchmark(group="micro")
def test_m1_equation_building(benchmark, measured_setup):
    instance, scenario, run = measured_setup

    def build():
        return build_equations(
            instance.topology,
            scenario.algorithm_correlation,
            run.observations,
        )

    system = benchmark(build)
    assert system.rows


@pytest.mark.benchmark(group="micro")
def test_m2_l1_solve(benchmark, measured_setup):
    instance, scenario, run = measured_setup
    system = build_equations(
        instance.topology,
        scenario.algorithm_correlation,
        run.observations,
    )
    matrix, values = system.matrix()

    solution = benchmark(lambda: solve_l1(matrix, values))
    assert np.all(solution <= 1e-9)


@pytest.mark.benchmark(group="micro")
def test_m3_snapshot_simulation(benchmark, planetlab_instance):
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=502
    )

    def simulate():
        return run_experiment(
            planetlab_instance.topology,
            scenario.truth_model,
            config=ExperimentConfig(
                n_snapshots=500, packets_per_path=800
            ),
            seed=503,
        )

    run = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert run.observations.n_snapshots == 500


@pytest.mark.benchmark(group="micro")
def test_m4a_brite_generation(benchmark):
    scenario = benchmark.pedantic(
        lambda: generate_brite(
            n_ases=100, routers_per_as=5, n_paths=250, seed=504
        ),
        rounds=3,
        iterations=1,
    )
    assert scenario.instance.n_paths > 0


@pytest.mark.benchmark(group="micro")
def test_m4b_planetlab_generation(benchmark):
    instance = benchmark.pedantic(
        lambda: generate_planetlab(
            n_routers=200, n_vantages=40, n_paths=250, seed=505
        ),
        rounds=3,
        iterations=1,
    )
    assert instance.n_paths > 0


@pytest.mark.benchmark(group="micro")
def test_theorem_algorithm_toy(benchmark):
    from repro.model import (
        ExplicitJointModel,
        IndependentModel,
        NetworkCongestionModel,
    )

    instance = fig_1a()
    topology = instance.topology
    e1, e2, e3, e4 = (
        topology.link(n).id for n in ("e1", "e2", "e3", "e4")
    )
    model = NetworkCongestionModel(
        instance.correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.3}),
            IndependentModel({e4: 0.15}),
        ],
    )
    oracle = ExactPathStateDistribution.from_model(topology, model)
    algorithm = TheoremAlgorithm(topology, instance.correlation)

    result = benchmark(lambda: algorithm.identify(oracle))
    assert abs(result.link_marginals[e3] - 0.3) < 1e-9


@pytest.mark.benchmark(group="micro")
def test_map_localization(benchmark, planetlab_instance):
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=506
    )
    run = run_experiment(
        planetlab_instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=10, packets_per_path=800),
        seed=507,
    )
    truth = scenario.truth_model.link_marginals()
    masks = [
        run.observations.congested_mask_of_snapshot(t)
        for t in range(run.observations.n_snapshots)
    ]

    def localize_all():
        results = []
        for mask in masks:
            results.append(
                localize_map(
                    planetlab_instance.topology,
                    mask,
                    truth,
                    max_nodes=20_000,
                    on_infeasible="trim",
                )
            )
        return results

    results = benchmark.pedantic(localize_all, rounds=1, iterations=1)
    assert len(results) == len(masks)
