"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — value of pair equations: the correlation algorithm with Eq.-10 rows
     versus single-path rows only.
A2 — solver choice under rank deficiency: L1 LP vs bounded least squares.
A3 — snapshot budget: estimator convergence of the final error.
A4 — theorem algorithm vs practical algorithm on a small exact instance.
A5 — probe budget: how many packets per path per snapshot the verdicts
     need before algorithm error, not probing noise, dominates.
A6 — the tomographer protocol (paper "Ongoing Work"): indirect
     validation of the uncorrelated vs correlated variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record
from repro.core import (
    AlgorithmOptions,
    TheoremAlgorithm,
    infer_congestion,
)
from repro.eval import make_clustered_scenario, potentially_congested_links
from repro.simulate import (
    ExactPathStateDistribution,
    ExperimentConfig,
    run_experiment,
)
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def ablation_setup(planetlab_instance):
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=400
    )
    run = run_experiment(
        planetlab_instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=1200, packets_per_path=800),
        seed=401,
    )
    truth = scenario.truth_model.link_marginals()
    scored = potentially_congested_links(
        planetlab_instance.topology, run.observations
    )
    return planetlab_instance, scenario, run, truth, scored


def _mean_error(instance, scenario, run, truth, scored, options):
    result = infer_congestion(
        instance.topology,
        scenario.algorithm_correlation,
        run.observations,
        options=options,
    )
    errors = np.abs(result.congestion_probabilities - truth)[scored]
    return float(errors.mean()), result


@pytest.mark.benchmark(group="ablation")
def test_a1_pair_equations(benchmark, ablation_setup, out_dir):
    """A1: how much accuracy do the Eq.-10 pair rows buy?"""
    instance, scenario, run, truth, scored = ablation_setup

    def run_with_pairs():
        return _mean_error(
            instance, scenario, run, truth, scored, AlgorithmOptions()
        )

    with_pairs, with_result = benchmark.pedantic(
        run_with_pairs, rounds=1, iterations=1
    )
    without_pairs, without_result = _mean_error(
        instance,
        scenario,
        run,
        truth,
        scored,
        AlgorithmOptions(max_pair_candidates=0),
    )
    record(
        out_dir,
        "ablation_a1_pairs",
        format_table(
            ["variant", "mean err", "rank", "N2"],
            [
                [
                    "with pair equations",
                    with_pairs,
                    with_result.rank,
                    with_result.n_pair_equations,
                ],
                [
                    "single-path only",
                    without_pairs,
                    without_result.rank,
                    0,
                ],
            ],
            title="A1: contribution of Eq.-10 pair equations",
        ),
    )
    assert with_result.rank >= without_result.rank
    assert with_pairs <= without_pairs + 0.01


@pytest.mark.benchmark(group="ablation")
def test_a2_solver_choice(benchmark, ablation_setup, out_dir):
    """A2: L1 (paper) vs bounded least squares under rank deficiency."""
    instance, scenario, run, truth, scored = ablation_setup

    def run_l1():
        return _mean_error(
            instance,
            scenario,
            run,
            truth,
            scored,
            AlgorithmOptions(solver="l1"),
        )

    l1_error, _ = benchmark.pedantic(run_l1, rounds=1, iterations=1)
    ls_error, _ = _mean_error(
        instance,
        scenario,
        run,
        truth,
        scored,
        AlgorithmOptions(solver="least_squares"),
    )
    record(
        out_dir,
        "ablation_a2_solver",
        format_table(
            ["solver", "mean err"],
            [["l1 (paper)", l1_error], ["least_squares", ls_error]],
            title="A2: solver choice for the correlation algorithm",
        ),
    )


@pytest.mark.benchmark(group="ablation")
def test_a3_snapshot_budget(
    benchmark, planetlab_instance, out_dir
):
    """A3: error vs number of snapshots (estimator convergence)."""
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=402
    )
    truth = scenario.truth_model.link_marginals()
    budgets = (150, 400, 1000, 2500)

    def measure(n_snapshots: int) -> float:
        run = run_experiment(
            planetlab_instance.topology,
            scenario.truth_model,
            config=ExperimentConfig(
                n_snapshots=n_snapshots, packets_per_path=800
            ),
            seed=403,
        )
        scored = potentially_congested_links(
            planetlab_instance.topology, run.observations
        )
        result = infer_congestion(
            planetlab_instance.topology,
            scenario.algorithm_correlation,
            run.observations,
        )
        errors = np.abs(result.congestion_probabilities - truth)[scored]
        return float(errors.mean())

    def sweep():
        return [measure(n) for n in budgets]

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        out_dir,
        "ablation_a3_snapshots",
        format_table(
            ["snapshots", "mean err"],
            [[n, e] for n, e in zip(budgets, errors)],
            title="A3: estimator convergence with the snapshot budget",
        ),
    )
    assert errors[-1] <= errors[0] + 0.01


@pytest.mark.benchmark(group="ablation")
def test_a5_probe_budget(benchmark, planetlab_instance, out_dir):
    """A5: packets per path per snapshot vs final error."""
    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=404
    )
    truth = scenario.truth_model.link_marginals()
    budgets = (50, 200, 800, None)  # None = infinite-traffic limit

    def measure(packets) -> float:
        run = run_experiment(
            planetlab_instance.topology,
            scenario.truth_model,
            config=ExperimentConfig(
                n_snapshots=800, packets_per_path=packets
            ),
            seed=405,
        )
        scored = potentially_congested_links(
            planetlab_instance.topology, run.observations
        )
        result = infer_congestion(
            planetlab_instance.topology,
            scenario.algorithm_correlation,
            run.observations,
        )
        errors = np.abs(result.congestion_probabilities - truth)[scored]
        return float(errors.mean())

    def sweep():
        return [measure(p) for p in budgets]

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(
        out_dir,
        "ablation_a5_probes",
        format_table(
            ["packets/path", "mean err"],
            [
                [("inf" if p is None else p), e]
                for p, e in zip(budgets, errors)
            ],
            title="A5: probing budget vs final error",
        ),
    )
    assert errors[-1] <= errors[0] + 0.02


@pytest.mark.benchmark(group="ablation")
def test_a6_tomographer_protocol(
    benchmark, planetlab_instance, out_dir
):
    """A6: the paper's planned PlanetLab-tomographer comparison."""
    from repro.eval import run_tomographer

    scenario = make_clustered_scenario(
        planetlab_instance, congested_fraction=0.10, seed=406
    )
    training = run_experiment(
        planetlab_instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=1000, packets_per_path=800),
        seed=407,
    )
    holdout = run_experiment(
        planetlab_instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=600, packets_per_path=800),
        seed=408,
    )

    def run():
        return run_tomographer(
            planetlab_instance.topology,
            planetlab_instance.correlation,
            training.observations,
            holdout.observations,
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        "ablation_a6_tomographer",
        format_table(
            ["variant", "mean path err", "mean err (corr-free paths)"],
            [
                [
                    "(i) uncorrelated",
                    comparison.uncorrelated_validation.mean_error,
                    comparison.uncorrelated_validation.mean_error_correlation_free,
                ],
                [
                    "(ii) correlated",
                    comparison.correlated_validation.mean_error,
                    comparison.correlated_validation.mean_error_correlation_free,
                ],
            ],
            title=(
                "A6: tomographer indirect validation "
                "(paper 'Ongoing Work')"
            ),
        ),
    )
    assert comparison.correlated_wins


@pytest.mark.benchmark(group="ablation")
def test_a4_theorem_vs_practical(benchmark, out_dir):
    """A4: the exact (exponential) theorem algorithm against the
    practical algorithm on the Figure-1(a) instance with oracle input."""
    from repro.model import (
        ExplicitJointModel,
        IndependentModel,
        NetworkCongestionModel,
    )
    from repro.topogen import fig_1a

    instance = fig_1a()
    topology = instance.topology
    e1, e2, e3, e4 = (
        topology.link(n).id for n in ("e1", "e2", "e3", "e4")
    )
    model = NetworkCongestionModel(
        instance.correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.3}),
            IndependentModel({e4: 0.15}),
        ],
    )
    oracle = ExactPathStateDistribution.from_model(topology, model)
    truth = model.link_marginals()

    def run_theorem():
        return TheoremAlgorithm(
            topology, instance.correlation
        ).identify(oracle)

    theorem_result = benchmark.pedantic(
        run_theorem, rounds=3, iterations=1
    )
    practical_result = infer_congestion(
        topology, instance.correlation, oracle
    )
    theorem_errors = [
        abs(theorem_result.link_marginals[k] - truth[k])
        for k in range(topology.n_links)
    ]
    practical_errors = np.abs(
        practical_result.congestion_probabilities - truth
    )
    record(
        out_dir,
        "ablation_a4_theorem",
        format_table(
            ["algorithm", "max err", "recovers joints"],
            [
                ["theorem (exact)", max(theorem_errors), "yes"],
                [
                    "practical (Section 4)",
                    float(practical_errors.max()),
                    "marginals only",
                ],
            ],
            title="A4: theorem vs practical algorithm (oracle input)",
        ),
    )
    assert max(theorem_errors) < 1e-9
    assert practical_errors.max() < 1e-6
