"""Distributed sweep benchmark (the PR-3 tentpole acceptance run).

Runs the figure-3 sweep three ways over the same instance and seed:

* **serial** — the engine in-process (correctness reference);
* **remote** — two localhost worker processes behind a
  :class:`repro.eval.dist.RemoteExecutor` coordinator;
* **remote-kill** — two fresh workers sharing one trial-cache store,
  with one worker dying mid-sweep: the coordinator requeues its chunks
  onto the survivor and the sweep completes anyway.

All three must produce bit-identical figure data (always enforced with
``--require-identical``; always printed).  The kill leg additionally
checks that the sweep *survives* the death and that the shared store
retained the chunks completed before it (``--require-survival``).

Kill modes: the headline run SIGKILLs the worker process as soon as the
shared store shows the sweep is underway; ``--quick`` (the CI smoke)
instead starts the doomed worker with ``--fail-after-chunks 1`` so the
death lands after exactly one chunk, deterministically, on runners of
any speed.

Usage::

    python benchmarks/bench_dist.py --scale medium \
        --require-identical --require-survival       # headline
    python benchmarks/bench_dist.py --quick \
        --require-identical --require-survival       # CI smoke

Every run appends a record to ``BENCH_dist.json`` (see
``benchmarks/bench_util.py``).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
import threading
import time

from bench_util import write_bench_json

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.dist import RemoteExecutor
from repro.eval.figures import (
    default_config,
    default_instance,
    figure3_sweep,
)
from repro.simulate.experiment import ExperimentConfig

FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25)
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_LISTEN_LINE = re.compile(r"listening on .*:(\d+)\s*$")


class _Worker:
    """One ``repro-tomography worker`` subprocess on an ephemeral port."""

    def __init__(self, *, cache_dir=None, fail_after_chunks=None) -> None:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--port",
            "0",
            "--max-sessions",
            "1",
        ]
        if cache_dir is not None:
            command += ["--cache-dir", str(cache_dir)]
        if fail_after_chunks is not None:
            command += ["--fail-after-chunks", str(fail_after_chunks)]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.process = subprocess.Popen(
            command,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self.process.stdout.readline()
        match = _LISTEN_LINE.search(line.strip())
        if not match:
            self.process.kill()
            raise RuntimeError(
                f"worker did not announce its port (got {line!r})"
            )
        self.address = f"127.0.0.1:{match.group(1)}"
        # Drain further log output so the pipe never blocks the worker.
        threading.Thread(
            target=self.process.stdout.read, daemon=True
        ).start()

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait(timeout=10)


def _points_as_dicts(sweep_result):
    return [
        {"correlation": p.correlation, "independence": p.independence}
        for p in sweep_result.points
    ]


def _print_series(label, fractions, stats_per_point):
    print(f"  {label}:")
    for fraction, stats in zip(fractions, stats_per_point):
        corr, ind = stats["correlation"], stats["independence"]
        print(
            f"    f={fraction:4.0%}  corr mean={corr.mean:.4f} "
            f"p90={corr.p90:.4f} | ind mean={ind.mean:.4f} "
            f"p90={ind.p90:.4f}"
        )


def _kill_when_store_populated(worker, store, landed):
    """SIGKILL ``worker`` once the shared store proves the sweep started."""
    store = pathlib.Path(store)
    while worker.process.poll() is None:
        if any(store.rglob("*.npz")):
            worker.process.kill()
            landed.append(True)
            return
        time.sleep(0.02)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "medium", "paper"), default="medium"
    )
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: small instance, short sweep, reduced snapshots, "
            "deterministic fail-after-chunks death instead of SIGKILL"
        ),
    )
    parser.add_argument(
        "--require-identical",
        action="store_true",
        help="exit nonzero unless remote legs match the serial reference",
    )
    parser.add_argument(
        "--require-survival",
        action="store_true",
        help=(
            "exit nonzero unless the kill leg completed after losing a "
            "worker and the shared store retained completed chunks"
        ),
    )
    args = parser.parse_args(argv)

    scale = "small" if args.quick else args.scale
    fractions = FRACTIONS[:2] if args.quick else FRACTIONS
    trials = max(args.trials, 2) if args.quick else args.trials
    instance = default_instance("brite", scale=scale, seed=args.seed)
    config = default_config(scale)
    if args.quick:
        config = ExperimentConfig(n_snapshots=400, packets_per_path=400)
    options = AlgorithmOptions()
    n_tasks = len(fractions) * trials
    print(
        f"distributed sweep benchmark — scale={scale}, "
        f"{instance.n_links} links / {instance.n_paths} paths, "
        f"{len(fractions)} fractions × {trials} trial(s) = "
        f"{n_tasks} tasks, {config.n_snapshots} snapshots, "
        f"2 localhost workers"
    )

    sweep_kwargs = dict(
        instance=instance,
        fractions=fractions,
        config=config,
        n_trials=trials,
        seed=args.seed,
        options=options,
    )

    t0 = time.perf_counter()
    serial = figure3_sweep(workers=1, **sweep_kwargs)
    t_serial = time.perf_counter() - t0
    print(f"serial:                 {t_serial:7.2f} s")

    workers = [_Worker(), _Worker()]
    try:
        t0 = time.perf_counter()
        remote = figure3_sweep(
            executor=RemoteExecutor([w.address for w in workers]),
            **sweep_kwargs,
        )
        t_remote = time.perf_counter() - t0
    finally:
        for worker in workers:
            worker.stop()
    print(f"remote (2 workers):     {t_remote:7.2f} s")

    failures = []
    kill_landed = False
    retained_entries = 0
    with tempfile.TemporaryDirectory() as store:
        survivor = _Worker(cache_dir=store)
        if args.quick:
            doomed = _Worker(cache_dir=store, fail_after_chunks=1)
            kill_landed = True  # deterministic: dies after one chunk
            watcher = None
        else:
            doomed = _Worker(cache_dir=store)
            landed: list[bool] = []
            watcher = threading.Thread(
                target=_kill_when_store_populated,
                args=(doomed, store, landed),
                daemon=True,
            )
            watcher.start()
        try:
            t0 = time.perf_counter()
            survived = figure3_sweep(
                executor=RemoteExecutor(
                    [survivor.address, doomed.address]
                ),
                **sweep_kwargs,
            )
            t_kill = time.perf_counter() - t0
        finally:
            if watcher is not None:
                watcher.join(timeout=10)
                kill_landed = bool(landed)
            survivor.stop()
            doomed.stop()
        retained_entries = len(list(pathlib.Path(store).rglob("*.npz")))
    print(
        f"remote, one worker killed: {t_kill:7.2f} s "
        f"(kill landed mid-sweep: {kill_landed}; store retained "
        f"{retained_entries} entries)"
    )

    _print_series("serial", fractions, _points_as_dicts(serial))

    reference = _points_as_dicts(serial)
    for label, result in (
        ("remote", remote),
        ("remote-kill", survived),
    ):
        if _points_as_dicts(result) != reference:
            failures.append(
                f"{label} figure data differs from the serial reference"
            )
    if not failures:
        print("bit-identical: serial == remote == remote-kill")

    if args.require_survival:
        if not kill_landed:
            failures.append(
                "the sweep finished before the worker could be killed; "
                "nothing was tested — rerun with a larger workload"
            )
        if retained_entries == 0:
            failures.append(
                "shared store retained no completed chunks after the kill"
            )

    speedup = t_serial / t_remote if t_remote > 0 else float("inf")
    print(f"remote speedup over serial: {speedup:.2f}x")
    if (os.cpu_count() or 1) < 3:
        print(
            "note: localhost workers share "
            f"{os.cpu_count() or 1} core(s) with the coordinator — "
            "this run measures correctness and protocol overhead, not "
            "scale-out; real speedup needs workers on other hosts"
        )
    write_bench_json(
        "dist",
        params={
            "scale": scale,
            "fractions": list(fractions),
            "trials": trials,
            "seed": args.seed,
            "n_snapshots": config.n_snapshots,
            "n_tasks": n_tasks,
            "workers": 2,
            "quick": args.quick,
            "kill_mode": "fail-after-chunks" if args.quick else "sigkill",
            "cpu_count": os.cpu_count() or 1,
        },
        timings_s={
            "serial": t_serial,
            "remote": t_remote,
            "remote_kill": t_kill,
        },
        ratios={
            "remote_speedup": speedup,
            "identical": float(not failures),
            "kill_landed": float(kill_landed),
            "retained_entries": float(retained_entries),
        },
    )

    if not args.require_identical:
        # Mismatches are always *reported*; only gate when asked.
        failures = [f for f in failures if "differs" not in f]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
