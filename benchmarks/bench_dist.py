"""Distributed sweep benchmark (PR-3 + elastic-sweep acceptance run).

Runs the figure-3 sweep several ways over the same instance and seed:

* **serial** — the engine in-process (correctness reference);
* **remote** — two localhost worker processes behind a
  :class:`repro.eval.dist.RemoteExecutor` coordinator;
* **remote-kill** — two fresh workers sharing one trial-cache store,
  with one worker dying mid-sweep: the coordinator requeues its chunks
  onto the survivor and the sweep completes anyway;
* **elastic-uniform / elastic-aware** — the heterogeneous-capacity
  scenario: two *autolaunched* workers with capacities 1 and 2 and
  identical injected per-task latency (``--throttle`` sleeps instead
  of burning CPU, so the capacity-2 worker genuinely overlaps two
  chunks even on a one-core box), swept once with capacity
  advertisements ignored (the PR-3 uniform schedule: one chunk in
  flight per worker) and once capacity-aware (the capacity-2 worker
  keeps two chunks in flight).  The capacity-aware schedule must beat
  uniform chunking on wall-clock (``--require-capacity-gain``, on in
  CI too — the latency injection makes the gain reproducible on any
  machine).

* **remote-v3 / remote-socket** — the protocol-v4 acceptance pair:
  the headline fleet shape swept once pinned to the legacy pickled
  wire (``wire_version=3``) and once on v4 frames with the
  shared-memory data plane disabled (``transport="socket"``), so every
  wire generation and data plane lands in the bit-identity check.
  The v4 *speed* gates are microbenches, where the wire work is not
  buried under compute: ``--require-wire-gain [RATIO]`` (default 1.3)
  gates the v4 chunk codec against the v3 pickled codec on a
  chunk-heavy task list, and ``--require-shm-gain [RATIO]`` (default
  1.1) gates shared-memory slot delivery against loopback-TCP frames
  at result-buffer payload sizes, receiver in a separate process both
  ways;

* **remote-chaos** — the fault-matrix leg: two fresh workers whose
  ``REPRO_CHAOS`` environment arms one to corrupt a result frame and
  the other to SIGSTOP itself on its first chunk.  The corruption is
  caught by frame validation, the hang by the PING/PONG heartbeat
  clock, and — both bench workers being single-session — the sweep
  finishes through the ``on_fleet_loss="serial"`` in-process fallback,
  still bit-identical.  ``--require-chaos`` gates detection (a
  recorded heartbeat timeout and worker loss) and the fallback;

* **plain-autolaunch / secure-autolaunch** — the wire-security
  acceptance pair: the same two-worker autolaunched fleet swept over a
  trusted socket and again with TLS plus the shared-secret (protocol
  v3) handshake.  Identical launch and compute on both sides, so the
  ratio isolates the security layer's cost; ``--require-secure-overhead
  [RATIO]`` (default 1.15) gates it, and the **fail-closed checks**
  (``--require-fail-closed``) prove a wrong-secret and a no-secret
  connection are both refused before the worker deserializes a single
  object.

All sweep legs must produce bit-identical figure data (always enforced
with ``--require-identical``; always printed).  ``--require-survival``
additionally gates the kill leg (sweep survives, shared store retained
the chunks completed before the death) and the **orphan check**: a
separate coordinator process autolaunches a fleet, is SIGKILLed
mid-sweep — so no teardown code ever runs — and every autolaunched
worker must still exit (the stdin lifeline) instead of living on as an
orphan, and every ``/dev/shm`` ring segment the coordinator created
for its shared-memory sessions must disappear (the creating process's
``resource_tracker`` survives the SIGKILL and unlinks them).

Kill modes: the headline run SIGKILLs the worker process as soon as the
shared store shows the sweep is underway; ``--quick`` (the CI smoke)
instead starts the doomed worker with ``--fail-after-chunks 1`` so the
death lands after exactly one chunk, deterministically, on runners of
any speed.

Usage::

    python benchmarks/bench_dist.py --scale medium \
        --require-identical --require-survival \
        --require-capacity-gain --require-wire-gain \
        --require-shm-gain                           # headline
    python benchmarks/bench_dist.py --quick \
        --require-identical --require-survival \
        --require-wire-gain --require-shm-gain       # CI smoke
    python benchmarks/bench_dist.py --quick \
        --require-identical --require-chaos          # CI chaos smoke

Every run appends a record to ``BENCH_dist.json`` (see
``benchmarks/bench_util.py``).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

from bench_util import write_bench_json

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.dist import LocalLauncher, RemoteExecutor
from repro.eval.dist.launch import LaunchedWorker, worker_environment
from repro.eval.figures import (
    default_config,
    default_instance,
    figure3_sweep,
)
from repro.simulate.experiment import ExperimentConfig

FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25)
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class _Worker:
    """One ``repro-tomography worker`` subprocess on an ephemeral port.

    A thin harness over :class:`repro.eval.dist.launch.LaunchedWorker`
    (which owns the readiness wait and stdout drain) for the legs that
    need per-worker flags a homogeneous launcher does not model:
    ``--max-sessions 1`` and fault injection on one specific worker.
    """

    def __init__(
        self, *, cache_dir=None, fail_after_chunks=None, chaos=None
    ) -> None:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--port",
            "0",
            "--max-sessions",
            "1",
            # Pinned: these legs measure distribution, and their
            # timings are compared against the PR-3 records in
            # BENCH_dist.json; the CLI's capacity default (CPU count)
            # would add in-host pooling to what they measure.
            "--capacity",
            "1",
        ]
        if cache_dir is not None:
            command += ["--cache-dir", str(cache_dir)]
        if fail_after_chunks is not None:
            command += ["--fail-after-chunks", str(fail_after_chunks)]
        env = worker_environment()
        if chaos is not None:
            # Chaos rides the environment exactly as it would in a real
            # deployment (REPRO_CHAOS on the worker host), and the spec
            # may include process faults — this is a dedicated process.
            env["REPRO_CHAOS"] = chaos
        process = subprocess.Popen(
            command,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.launched = LaunchedWorker(process, "bench-worker")
        self.process = process
        try:
            port = self.launched.await_ready(time.monotonic() + 30.0)
        except BaseException:
            self.stop()  # no lifeline on bench workers: reap explicitly
            raise
        self.address = f"127.0.0.1:{port}"

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait(timeout=10)


def _points_as_dicts(sweep_result):
    return [
        {"correlation": p.correlation, "independence": p.independence}
        for p in sweep_result.points
    ]


def _print_series(label, fractions, stats_per_point):
    print(f"  {label}:")
    for fraction, stats in zip(fractions, stats_per_point):
        corr, ind = stats["correlation"], stats["independence"]
        print(
            f"    f={fraction:4.0%}  corr mean={corr.mean:.4f} "
            f"p90={corr.p90:.4f} | ind mean={ind.mean:.4f} "
            f"p90={ind.p90:.4f}"
        )


def _kill_when_store_populated(worker, store, landed):
    """SIGKILL ``worker`` once the shared store proves the sweep started."""
    store = pathlib.Path(store)
    while worker.process.poll() is None:
        if any(store.rglob("*.npz")):
            worker.process.kill()
            landed.append(True)
            return
        time.sleep(0.02)


def _check_fail_closed(tls_paths, secret, sweep_kwargs) -> dict:
    """Prove refused connections deserialize nothing on the worker.

    Runs one TLS + secret worker in-process with ``pickle`` swapped
    for a counting proxy in *both* unpickle sites a session touches —
    the worker module (init triple, chunk task lists) and the protocol
    module (every frame header inside ``recv_message``) — then
    attempts a sweep with a wrong secret and one with no secret at
    all.  Both must raise :class:`DistSecurityError`, and the counter
    must show the worker-side session threads unpickled zero objects:
    the refusal landed before anything was deserialized (the
    pickle-over-socket RCE surface stays closed).  Counting is
    attributed by thread name because the coordinator shares this
    process and legitimately unpickles the worker's refusal header.
    """
    import types

    import repro.eval.dist.protocol as protocol_module
    import repro.eval.dist.worker as worker_module
    from repro.eval.dist import (
        DistSecurityError,
        WorkerServer,
        client_context,
        server_context,
    )

    loads_calls: list[int] = []
    real_pickle = worker_module.pickle

    def counting_loads(data):
        if threading.current_thread().name.startswith("worker-session"):
            loads_calls.append(1)
        return real_pickle.loads(data)

    counting = types.SimpleNamespace(
        loads=counting_loads,
        dumps=real_pickle.dumps,
        HIGHEST_PROTOCOL=real_pickle.HIGHEST_PROTOCOL,
    )
    server = WorkerServer(
        secret=secret,
        ssl_context=server_context(tls_paths.cert, tls_paths.key),
    )
    server_thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    server_thread.start()
    checks: dict[str, tuple[bool, str]] = {}
    attempts = (
        (
            "wrong_secret",
            dict(
                secret="definitely-not-the-secret",
                ssl_context=client_context(cafile=tls_paths.cert),
            ),
        ),
        (
            "no_secret",
            dict(ssl_context=client_context(cafile=tls_paths.cert)),
        ),
    )
    worker_module.pickle = counting
    protocol_module.pickle = counting
    try:
        # Sanity: the instrumentation actually counts (from a thread
        # named like a worker session, as real counts will be).
        probe = threading.Thread(
            target=lambda: counting.loads(real_pickle.dumps(1)),
            name="worker-session-probe",
        )
        probe.start()
        probe.join()
        assert loads_calls, "fail-closed instrumentation is inert"
        loads_calls.clear()
        for label, security in attempts:
            before = len(loads_calls)
            try:
                figure3_sweep(
                    executor=RemoteExecutor([server.address], **security),
                    **sweep_kwargs,
                )
                checks[label] = (False, "sweep unexpectedly succeeded")
            except DistSecurityError as exc:
                deserialized = len(loads_calls) - before
                checks[label] = (
                    deserialized == 0,
                    f"refused cleanly; worker deserialized "
                    f"{deserialized} objects ({str(exc)[:90]})",
                )
            except Exception as exc:  # noqa: BLE001 - report, don't die
                checks[label] = (
                    False,
                    f"failed with {type(exc).__name__} instead of "
                    f"DistSecurityError: {exc}",
                )
    finally:
        worker_module.pickle = real_pickle
        protocol_module.pickle = real_pickle
        server.close()
    return checks


def _check_wire_codec(seed: int, n_tasks: int = 400, rounds: int = 9):
    """v4 chunk codec vs the v3 pickled wire on one chunk-heavy list.

    Times the exact per-chunk wire work of each generation — v3's
    ``pickle.dumps``/``pickle.loads`` of the task list against v4's
    ``encode_tasks``/``decode_tasks`` — interleaved within each round so
    machine noise lands on all four measurements alike, and reduced by
    median.  Sweep wall-clock cannot gate this (compute buries the
    wire); the microbench isolates what the codec itself costs.
    """
    import pickle
    import statistics

    from repro.eval.dist import decode_tasks, encode_tasks
    from repro.eval.parallel import scenario_tasks

    tasks = scenario_tasks(
        "clustered",
        {"congested_fraction": 0.1},
        n_trials=n_tasks,
        seed=seed,
    )
    v3_blob = pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)
    v4_blob = encode_tasks(tasks)
    samples: dict[str, list[float]] = {
        "v3_enc": [],
        "v3_dec": [],
        "v4_enc": [],
        "v4_dec": [],
    }
    for _ in range(rounds):
        for label, call in (
            (
                "v3_enc",
                lambda: pickle.dumps(
                    tasks, protocol=pickle.HIGHEST_PROTOCOL
                ),
            ),
            ("v4_enc", lambda: encode_tasks(tasks)),
            ("v3_dec", lambda: pickle.loads(v3_blob)),
            ("v4_dec", lambda: decode_tasks(v4_blob)),
        ):
            t0 = time.perf_counter()
            call()
            samples[label].append(time.perf_counter() - t0)
    med = {k: statistics.median(v) for k, v in samples.items()}
    return {
        "n_tasks": n_tasks,
        "encode_speedup": med["v3_enc"] / med["v4_enc"],
        "decode_speedup": med["v3_dec"] / med["v4_dec"],
        "codec_speedup": (med["v3_enc"] + med["v3_dec"])
        / (med["v4_enc"] + med["v4_dec"]),
        "size_ratio": len(v3_blob) / len(v4_blob),
        "v3_bytes": len(v3_blob),
        "v4_bytes": len(v4_blob),
    }


def _run_shm_transfer_child(port: int) -> int:
    """Child mode: the receiving end of the shm-vs-socket microbench.

    Consumes frames the parent delivers either as loopback-TCP payloads
    or as shared-memory ring slots (control frames on the same TCP
    connection, exactly the session's split), copying every payload out
    once — the same single copy either data plane hands the engine.
    """
    import json
    import socket

    from repro.eval.dist.protocol import disable_nagle
    from repro.eval.dist.shm import attach_ring

    conn = socket.create_connection(("127.0.0.1", port), timeout=30)
    disable_nagle(conn)  # as on real session sockets
    io = conn.makefile("rwb")
    ring = None
    try:
        while True:
            line = io.readline()
            if not line:
                return 0
            msg = json.loads(line)
            if msg["op"] == "attach":
                ring = attach_ring(
                    msg["name"], msg["slots"], msg["slot_size"]
                )
            elif msg["op"] == "socket-frames":
                for _ in range(msg["frames"]):
                    data = io.read(msg["frame_bytes"])
                    assert len(data) == msg["frame_bytes"]
            elif msg["op"] == "shm-frame":
                view = ring.read(msg["slot"], msg["size"])
                data = bytes(view)  # the one consumer copy
                view.release()
                assert len(data) == msg["size"]
                io.write(b'{"ack": %d}\n' % msg["slot"])
                io.flush()
            if msg.get("done"):
                io.write(b'{"done": true}\n')
                io.flush()
    finally:
        if ring is not None:
            ring.close()
        io.close()
        conn.close()


def _check_shm_transfer(*, frame_bytes: int, frames: int, rounds: int = 3):
    """Shared-memory slot delivery vs loopback-TCP frames, cross-process.

    Moves the same payload train to a child process both ways: length-
    known frames over a loopback TCP connection, then ring slots (write
    into a 4-slot shm ring, control frame over the same TCP connection,
    slot freed on the child's ack — the session's exact accounting).
    Legs alternate and keep their best time.  Frame size is chosen at
    result-buffer scale, where the data plane dominates the control
    chatter; at sub-100KB chunk payloads the acks would drown the
    memcpy savings, which is why sessions keep small payloads inline.
    """
    import json
    import socket
    from collections import deque

    from repro.eval.dist.protocol import disable_nagle
    from repro.eval.dist.shm import create_ring

    payload = os.urandom(frame_bytes)
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(30)
    port = listener.getsockname()[1]
    child = subprocess.Popen(
        [sys.executable, __file__, "--shm-transfer-child", str(port)],
        cwd=REPO_ROOT,
        env=worker_environment(),
    )
    conn = None
    ring = None
    try:
        conn, _ = listener.accept()
        disable_nagle(conn)  # as on real session sockets
        io = conn.makefile("rwb")

        def _await_done():
            while True:
                reply = json.loads(io.readline())
                if reply.get("done"):
                    return

        def _socket_leg() -> float:
            t0 = time.perf_counter()
            for i in range(frames):
                head = {"op": "socket-frames", "frames": 1,
                        "frame_bytes": frame_bytes}
                if i == frames - 1:
                    head["done"] = True
                io.write(json.dumps(head).encode() + b"\n")
                io.write(payload)
            io.flush()
            _await_done()
            return time.perf_counter() - t0

        def _shm_leg() -> float:
            free = deque(range(ring.n_slots))
            t0 = time.perf_counter()
            for i in range(frames):
                while not free:
                    free.append(json.loads(io.readline())["ack"])
                slot = free.popleft()
                ring.write(slot, payload)
                head = {"op": "shm-frame", "slot": slot,
                        "size": frame_bytes}
                if i == frames - 1:
                    head["done"] = True
                io.write(json.dumps(head).encode() + b"\n")
                io.flush()
            _await_done()
            return time.perf_counter() - t0

        ring = create_ring(4, frame_bytes)
        io.write(json.dumps({"op": "attach", **ring.describe()}).encode()
                 + b"\n")
        io.flush()
        t_socket = min(_socket_leg() for _ in range(rounds))
        t_shm = min(_shm_leg() for _ in range(rounds))
        io.close()
    finally:
        if conn is not None:
            conn.close()
        listener.close()
        if ring is not None:
            ring.close()
        if child.poll() is None:
            try:
                child.wait(timeout=10)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait()
    return {
        "frame_bytes": frame_bytes,
        "frames": frames,
        "socket_s": t_socket,
        "shm_s": t_shm,
        "shm_speedup": t_socket / t_shm if t_shm > 0 else float("inf"),
    }


def _run_orphan_child(args) -> int:
    """Child mode: autolaunch a fleet, announce it, sweep until killed.

    The parent SIGKILLs this process mid-sweep, so the launcher's
    ``shutdown()`` never runs — worker teardown must come entirely from
    the stdin lifeline each worker holds on us.
    """
    launcher = LocalLauncher(2, capacities=[1, 2])
    specs = launcher.launch()
    for worker in launcher.workers:
        print(f"worker-pid {worker.pid}", flush=True)
    print("sweep-start", flush=True)
    instance = default_instance("brite", scale="small", seed=args.seed)
    figure3_sweep(
        instance=instance,
        fractions=FRACTIONS,
        config=ExperimentConfig(n_snapshots=2000, packets_per_path=400),
        n_trials=4,
        seed=args.seed,
        options=AlgorithmOptions(),
        # Pin the shm data plane so the SIGKILL lands while ring
        # segments exist: the orphan check also proves they vanish.
        executor=RemoteExecutor(specs, transport="shm"),
    )
    launcher.shutdown()  # only reached if the parent failed to kill us
    return 0


def _shm_segments() -> list[str]:
    from repro.eval.dist.shm import SHM_PREFIX

    return sorted(
        p.name for p in pathlib.Path("/dev/shm").glob(f"{SHM_PREFIX}*")
    )


def _check_orphan_teardown() -> tuple[bool, str]:
    """SIGKILL a live coordinator; its autolaunched workers must die."""
    process = subprocess.Popen(
        [sys.executable, __file__, "--orphan-child"],
        cwd=REPO_ROOT,
        env=worker_environment(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    pids: list[int] = []
    try:
        for line in process.stdout:
            line = line.strip()
            if line.startswith("worker-pid "):
                pids.append(int(line.split()[1]))
            elif line == "sweep-start":
                break
        else:
            process.wait(timeout=10)
            return False, (
                "orphan check: coordinator never reached its sweep "
                f"(exit status {process.returncode})"
            )
        process.kill()  # SIGKILL mid-sweep: no teardown code runs
        process.wait(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    if not pids:
        return False, "orphan check: coordinator announced no workers"
    deadline = time.monotonic() + 30.0
    for pid in pids:
        while True:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            if time.monotonic() > deadline:
                try:  # do not leak the orphan we just proved exists
                    os.kill(pid, 9)
                except ProcessLookupError:
                    pass
                return False, (
                    f"orphan check: worker {pid} outlived its "
                    "SIGKILLed coordinator"
                )
            time.sleep(0.05)
    # The coordinator created shm rings for its sessions (the child
    # pins transport="shm"); its resource_tracker process survives the
    # SIGKILL and must unlink every segment once the fleet is gone.
    if pathlib.Path("/dev/shm").is_dir():
        shm_deadline = time.monotonic() + 15.0
        while _shm_segments():
            if time.monotonic() > shm_deadline:
                leaked = _shm_segments()
                for name in leaked:  # do not leak what we just proved
                    pathlib.Path("/dev/shm", name).unlink(
                        missing_ok=True
                    )
                return False, (
                    "orphan check: shm segments outlived the "
                    f"SIGKILLed coordinator: {', '.join(leaked)}"
                )
            time.sleep(0.05)
    return True, (
        f"orphan check: all {len(pids)} autolaunched workers exited "
        "after the coordinator was SIGKILLed mid-sweep, and no shm "
        "ring segment survived it"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "medium", "paper"), default="medium"
    )
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke: small instance, short sweep, reduced snapshots, "
            "deterministic fail-after-chunks death instead of SIGKILL"
        ),
    )
    parser.add_argument(
        "--require-identical",
        action="store_true",
        help="exit nonzero unless remote legs match the serial reference",
    )
    parser.add_argument(
        "--require-survival",
        action="store_true",
        help=(
            "exit nonzero unless the kill leg completed after losing a "
            "worker and the shared store retained completed chunks, "
            "and the orphan check found no worker outliving a "
            "SIGKILLed coordinator"
        ),
    )
    parser.add_argument(
        "--require-capacity-gain",
        action="store_true",
        help=(
            "exit nonzero unless the capacity-aware schedule beats "
            "uniform chunking on wall-clock in the heterogeneous "
            "(capacity 1 vs 2, latency-injected) scenario"
        ),
    )
    parser.add_argument(
        "--require-secure-overhead",
        nargs="?",
        const=1.15,
        default=None,
        type=float,
        metavar="RATIO",
        help=(
            "exit nonzero unless the secured (TLS + shared-secret, "
            "autolaunched) sweep stays within RATIO (default 1.15) of "
            "the plain autolaunched sweep's wall-clock"
        ),
    )
    parser.add_argument(
        "--require-fail-closed",
        action="store_true",
        help=(
            "exit nonzero unless wrong-secret and no-secret "
            "connections to a secured worker are refused before any "
            "payload is deserialized"
        ),
    )
    parser.add_argument(
        "--require-wire-gain",
        nargs="?",
        const=1.3,
        default=None,
        type=float,
        metavar="RATIO",
        help=(
            "exit nonzero unless the v4 chunk codec beats the v3 "
            "pickled codec by at least RATIO (default 1.3) on the "
            "chunk-heavy microbench"
        ),
    )
    parser.add_argument(
        "--require-shm-gain",
        nargs="?",
        const=1.1,
        default=None,
        type=float,
        metavar="RATIO",
        help=(
            "exit nonzero unless shared-memory slot delivery beats "
            "loopback-TCP frames by at least RATIO (default 1.1) on "
            "the cross-process transfer microbench"
        ),
    )
    parser.add_argument(
        "--require-chaos",
        action="store_true",
        help=(
            "exit nonzero unless the chaos leg — one worker corrupting "
            "a result frame, one SIGSTOPping itself mid-sweep — is "
            "detected (heartbeat), survived (serial fallback), and "
            "bit-identical"
        ),
    )
    parser.add_argument(
        "--orphan-child",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: coordinator-to-be-killed
    )
    parser.add_argument(
        "--shm-transfer-child",
        type=int,
        default=None,
        metavar="PORT",
        help=argparse.SUPPRESS,  # internal: transfer-bench receiver
    )
    args = parser.parse_args(argv)
    if args.orphan_child:
        return _run_orphan_child(args)
    if args.shm_transfer_child is not None:
        return _run_shm_transfer_child(args.shm_transfer_child)

    scale = "small" if args.quick else args.scale
    fractions = FRACTIONS[:2] if args.quick else FRACTIONS
    trials = max(args.trials, 2) if args.quick else args.trials
    instance = default_instance("brite", scale=scale, seed=args.seed)
    config = default_config(scale)
    if args.quick:
        config = ExperimentConfig(n_snapshots=400, packets_per_path=400)
    options = AlgorithmOptions()
    n_tasks = len(fractions) * trials
    print(
        f"distributed sweep benchmark — scale={scale}, "
        f"{instance.n_links} links / {instance.n_paths} paths, "
        f"{len(fractions)} fractions × {trials} trial(s) = "
        f"{n_tasks} tasks, {config.n_snapshots} snapshots, "
        f"2 localhost workers"
    )

    sweep_kwargs = dict(
        instance=instance,
        fractions=fractions,
        config=config,
        n_trials=trials,
        seed=args.seed,
        options=options,
    )

    t0 = time.perf_counter()
    serial = figure3_sweep(workers=1, **sweep_kwargs)
    t_serial = time.perf_counter() - t0
    print(f"serial:                 {t_serial:7.2f} s")

    workers = []
    try:
        # Construct one at a time inside the try: a failed second
        # spawn must still reap the first.
        workers.append(_Worker())
        workers.append(_Worker())
        t0 = time.perf_counter()
        remote = figure3_sweep(
            executor=RemoteExecutor([w.address for w in workers]),
            **sweep_kwargs,
        )
        t_remote = time.perf_counter() - t0
    finally:
        for worker in workers:
            worker.stop()
    print(f"remote (2 workers, v4 + auto transport): {t_remote:7.2f} s")

    # Wire-generation legs: the same fleet shape pinned to the legacy
    # pickled wire and to v4-frames-over-socket, so every generation
    # and data plane produces figure data for the bit-identity check.
    # (Fresh fleets per leg: bench workers pin --max-sessions 1.)
    def _pinned_leg(**executor_kwargs):
        fleet = []
        try:
            fleet.append(_Worker())
            fleet.append(_Worker())
            t0 = time.perf_counter()
            result = figure3_sweep(
                executor=RemoteExecutor(
                    [w.address for w in fleet], **executor_kwargs
                ),
                **sweep_kwargs,
            )
            return time.perf_counter() - t0, result
        finally:
            for worker in fleet:
                worker.stop()

    t_remote_v3, remote_v3 = _pinned_leg(wire_version=3)
    print(f"remote, v3 pickled wire:   {t_remote_v3:7.2f} s")
    t_remote_socket, remote_socket = _pinned_leg(transport="socket")
    print(f"remote, v4 socket-only:    {t_remote_socket:7.2f} s")

    # The v4 speed gates, isolated from sweep compute (which buries
    # wire costs at any realistic snapshot count).
    wire = _check_wire_codec(args.seed)
    print(
        f"v4 wire codec speedup over v3 (pickle), "
        f"{wire['n_tasks']}-task chunk: {wire['codec_speedup']:.2f}x "
        f"(encode {wire['encode_speedup']:.2f}x, decode "
        f"{wire['decode_speedup']:.2f}x, payload "
        f"{wire['size_ratio']:.2f}x smaller)"
    )
    shm_bench = None
    if pathlib.Path("/dev/shm").is_dir():
        shm_frame_bytes = (1 << 20) if args.quick else (2 << 20)
        shm_frames = 32 if args.quick else 64
        shm_bench = _check_shm_transfer(
            frame_bytes=shm_frame_bytes, frames=shm_frames
        )
        print(
            f"shm slot delivery speedup over loopback TCP "
            f"({shm_frames} × {shm_frame_bytes >> 20} MiB frames): "
            f"{shm_bench['shm_speedup']:.2f}x"
        )
    else:
        print("shm transfer check skipped: /dev/shm unavailable")

    failures = []
    kill_landed = False
    retained_entries = 0
    with tempfile.TemporaryDirectory() as store:
        survivor = None
        doomed = None
        watcher = None
        try:
            survivor = _Worker(cache_dir=store)
            if args.quick:
                doomed = _Worker(cache_dir=store, fail_after_chunks=1)
                kill_landed = True  # deterministic: dies after one chunk
            else:
                doomed = _Worker(cache_dir=store)
                landed: list[bool] = []
                watcher = threading.Thread(
                    target=_kill_when_store_populated,
                    args=(doomed, store, landed),
                    daemon=True,
                )
                watcher.start()
            t0 = time.perf_counter()
            survived = figure3_sweep(
                # Pinned to shm: the kill leg must prove chunk requeue
                # survives losing a worker mid-sweep on the
                # shared-memory data plane too, not just on sockets.
                executor=RemoteExecutor(
                    [survivor.address, doomed.address],
                    transport="shm",
                ),
                **sweep_kwargs,
            )
            t_kill = time.perf_counter() - t0
        finally:
            if watcher is not None:
                watcher.join(timeout=10)
                kill_landed = bool(landed)
            if survivor is not None:
                survivor.stop()
            if doomed is not None:
                doomed.stop()
        retained_entries = len(list(pathlib.Path(store).rglob("*.npz")))
    print(
        f"remote, one worker killed: {t_kill:7.2f} s "
        f"(kill landed mid-sweep: {kill_landed}; store retained "
        f"{retained_entries} entries)"
    )

    # Chaos leg: two fault classes at once, injected through the
    # workers' environment exactly as on a real fleet.  Worker A
    # corrupts its second result frame (detected at the coordinator's
    # frame validation, session dropped, chunk requeued); worker B
    # SIGSTOPs itself on its first chunk — hung but connected, so only
    # the heartbeat clock can see it.  Both bench workers pin
    # --max-sessions 1, so once both faults land the fleet is gone and
    # the serial fallback finishes the remaining chunks in-process.
    # The figure data must come out bit-identical regardless.
    chaos_workers = []
    try:
        chaos_workers.append(
            _Worker(chaos="frame-corrupt:type=result:nth=2")
        )
        chaos_workers.append(_Worker(chaos="worker-sigstop:chunk=1"))
        chaos_executor = RemoteExecutor(
            [w.address for w in chaos_workers],
            transport="shm",
            heartbeat_interval=2.0,
            connect_attempts=4,
            on_fleet_loss="serial",
        )
        t0 = time.perf_counter()
        chaos_result = figure3_sweep(
            executor=chaos_executor, **sweep_kwargs
        )
        t_chaos = time.perf_counter() - t0
    finally:
        for worker in chaos_workers:
            worker.stop()
    chaos_stats = chaos_executor.last_sweep_stats
    print(
        f"remote, chaos (corrupt result + SIGSTOP): {t_chaos:7.2f} s "
        f"({chaos_stats.heartbeat_timeouts} heartbeat timeout(s), "
        f"{chaos_stats.requeued_chunks} chunk(s) requeued, "
        f"{chaos_stats.serial_fallback_chunks} finished in-process)"
    )

    # Heterogeneous capacity: one autolaunched fleet per leg — a
    # capacity-1 and a capacity-2 worker with identical per-task
    # latency injected (`--throttle`: sleep, not CPU, so the
    # capacity-2 worker genuinely runs two chunks at once even on a
    # one-core box) — swept capacity-blind and capacity-aware.  Both
    # legs pay identical launch + pool-spawn + throttle overhead; the
    # wall-clock difference is purely the schedule keeping the wide
    # worker's extra slot busy.  More trials than the headline legs so
    # the chunk count gives the scheduler granularity to exploit.
    hetero_trials = max(2 * trials, 8)
    hetero_kwargs = dict(sweep_kwargs, n_trials=hetero_trials)
    hetero_throttle = 1.5
    hetero_serial = figure3_sweep(workers=1, **hetero_kwargs)
    t0 = time.perf_counter()
    uniform = figure3_sweep(
        executor=RemoteExecutor(
            launcher=LocalLauncher(
                2,
                capacities=[1, 2],
                throttles=hetero_throttle,
            ),
            capacity_aware=False,
        ),
        **hetero_kwargs,
    )
    t_uniform = time.perf_counter() - t0
    print(
        f"elastic hetero ({len(fractions) * hetero_trials} tasks, "
        f"{hetero_throttle}s/task latency), uniform:        "
        f"{t_uniform:7.2f} s"
    )
    t0 = time.perf_counter()
    aware = figure3_sweep(
        executor=RemoteExecutor(
            launcher=LocalLauncher(
                2,
                capacities=[1, 2],
                throttles=hetero_throttle,
            ),
        ),
        **hetero_kwargs,
    )
    t_aware = time.perf_counter() - t0
    capacity_gain = t_uniform / t_aware if t_aware > 0 else float("inf")
    print(
        f"elastic hetero, capacity-aware:                   "
        f"{t_aware:7.2f} s ({capacity_gain:.2f}x vs uniform)"
    )

    # Wire security: the same autolaunched fleet shape swept plain and
    # secured (TLS + shared secret).  Both legs pay identical launch,
    # connect, and compute costs, so the wall-clock ratio isolates what
    # the HMAC handshake plus the TLS record layer actually cost; each
    # leg runs twice and keeps its best time to damp runner noise.
    from repro.eval.dist import client_context, generate_self_signed

    secure_secret = "bench-dist-fleet-token"
    with tempfile.TemporaryDirectory() as tls_dir:
        tls_paths = generate_self_signed(tls_dir)

        def _autolaunch_leg(secured: bool):
            if secured:
                executor = RemoteExecutor(
                    launcher=LocalLauncher(
                        2,
                        secret=secure_secret,
                        tls_cert=tls_paths.cert,
                        tls_key=tls_paths.key,
                    ),
                    secret=secure_secret,
                    ssl_context=client_context(cafile=tls_paths.cert),
                )
            else:
                executor = RemoteExecutor(launcher=LocalLauncher(2))
            t0 = time.perf_counter()
            result = figure3_sweep(executor=executor, **sweep_kwargs)
            return time.perf_counter() - t0, result

        t_plain, plain_autolaunch = _autolaunch_leg(False)
        t_plain = min(t_plain, _autolaunch_leg(False)[0])
        t_secure, secure_autolaunch = _autolaunch_leg(True)
        t_secure = min(t_secure, _autolaunch_leg(True)[0])
        secure_overhead = (
            t_secure / t_plain if t_plain > 0 else float("inf")
        )
        print(
            f"autolaunch (2 workers), plain:       {t_plain:7.2f} s"
        )
        print(
            f"autolaunch, TLS + shared secret:     {t_secure:7.2f} s "
            f"({secure_overhead:.2f}x vs plain)"
        )

        fail_closed = _check_fail_closed(
            tls_paths, secure_secret, sweep_kwargs
        )
        for label, (ok, detail) in fail_closed.items():
            print(
                f"fail-closed [{label}]: "
                f"{'OK' if ok else 'FAILED'} — {detail}"
            )

    orphan_ok, orphan_detail = _check_orphan_teardown()
    print(orphan_detail)

    _print_series("serial", fractions, _points_as_dicts(serial))

    reference = _points_as_dicts(serial)
    hetero_reference = _points_as_dicts(hetero_serial)
    for label, result, expected in (
        ("remote", remote, reference),
        ("remote-v3", remote_v3, reference),
        ("remote-socket", remote_socket, reference),
        ("remote-kill", survived, reference),
        ("remote-chaos", chaos_result, reference),
        ("elastic-uniform", uniform, hetero_reference),
        ("elastic-aware", aware, hetero_reference),
        ("plain-autolaunch", plain_autolaunch, reference),
        ("secure-autolaunch", secure_autolaunch, reference),
    ):
        if _points_as_dicts(result) != expected:
            failures.append(
                f"{label} figure data differs from the serial reference"
            )
    if not failures:
        print(
            "bit-identical: serial == remote == remote-v3 == "
            "remote-socket == remote-kill == remote-chaos == "
            "plain-autolaunch == secure-autolaunch and "
            "serial == elastic-uniform == elastic-aware"
        )

    if args.require_survival:
        if not kill_landed:
            failures.append(
                "the sweep finished before the worker could be killed; "
                "nothing was tested — rerun with a larger workload"
            )
        if retained_entries == 0:
            failures.append(
                "shared store retained no completed chunks after the kill"
            )
        if not orphan_ok:
            failures.append(orphan_detail)
    if args.require_chaos:
        if chaos_stats.heartbeat_timeouts < 1:
            failures.append(
                "chaos leg: the SIGSTOP'd worker was never detected by "
                "the heartbeat clock"
            )
        if chaos_stats.worker_losses < 1:
            failures.append(
                "chaos leg: no worker loss was recorded despite the "
                "injected faults"
            )
        if chaos_stats.serial_fallback_chunks < 1:
            failures.append(
                "chaos leg: the serial fleet-loss fallback never ran"
            )
    if args.require_capacity_gain and capacity_gain <= 1.0:
        failures.append(
            f"capacity-aware schedule did not beat uniform chunking "
            f"({capacity_gain:.2f}x)"
        )
    if (
        args.require_secure_overhead is not None
        and secure_overhead > args.require_secure_overhead
    ):
        failures.append(
            f"secured autolaunch sweep cost {secure_overhead:.2f}x the "
            f"plain autolaunch wall-clock (budget "
            f"{args.require_secure_overhead:.2f}x)"
        )
    if args.require_fail_closed:
        for label, (ok, detail) in fail_closed.items():
            if not ok:
                failures.append(f"fail-closed [{label}]: {detail}")
    if (
        args.require_wire_gain is not None
        and wire["codec_speedup"] < args.require_wire_gain
    ):
        failures.append(
            f"v4 chunk codec beat the v3 pickled codec by only "
            f"{wire['codec_speedup']:.2f}x "
            f"(required {args.require_wire_gain:.2f}x)"
        )
    if args.require_shm_gain is not None:
        if shm_bench is None:
            failures.append(
                "shm transfer gate requested but /dev/shm is unavailable"
            )
        elif shm_bench["shm_speedup"] < args.require_shm_gain:
            failures.append(
                f"shm slot delivery beat loopback TCP by only "
                f"{shm_bench['shm_speedup']:.2f}x "
                f"(required {args.require_shm_gain:.2f}x)"
            )

    speedup = t_serial / t_remote if t_remote > 0 else float("inf")
    print(f"remote speedup over serial: {speedup:.2f}x")
    if (os.cpu_count() or 1) < 3:
        print(
            "note: localhost workers share "
            f"{os.cpu_count() or 1} core(s) with the coordinator — "
            "this run measures correctness and protocol overhead, not "
            "scale-out; real speedup needs workers on other hosts"
        )
    write_bench_json(
        "dist",
        params={
            "scale": scale,
            "fractions": list(fractions),
            "trials": trials,
            "seed": args.seed,
            "n_snapshots": config.n_snapshots,
            "n_tasks": n_tasks,
            "workers": 2,
            "quick": args.quick,
            "kill_mode": "fail-after-chunks" if args.quick else "sigkill",
            "cpu_count": os.cpu_count() or 1,
            "hetero_trials": hetero_trials,
            "hetero_throttle_s": hetero_throttle,
            "wire_bench_tasks": wire["n_tasks"],
            "wire_v3_bytes": wire["v3_bytes"],
            "wire_v4_bytes": wire["v4_bytes"],
            "shm_frame_bytes": (
                shm_bench["frame_bytes"] if shm_bench else None
            ),
            "shm_frames": shm_bench["frames"] if shm_bench else None,
        },
        timings_s={
            "serial": t_serial,
            "remote": t_remote,
            "remote_v3": t_remote_v3,
            "remote_socket": t_remote_socket,
            "remote_kill": t_kill,
            "remote_chaos": t_chaos,
            "elastic_uniform": t_uniform,
            "elastic_aware": t_aware,
            "plain_autolaunch": t_plain,
            "secure_autolaunch": t_secure,
        },
        ratios={
            "remote_speedup": speedup,
            "wire_codec_speedup": wire["codec_speedup"],
            "wire_encode_speedup": wire["encode_speedup"],
            "wire_decode_speedup": wire["decode_speedup"],
            "wire_size_ratio": wire["size_ratio"],
            "shm_transfer_speedup": (
                shm_bench["shm_speedup"] if shm_bench else 0.0
            ),
            "capacity_gain": capacity_gain,
            "secure_overhead": secure_overhead,
            "identical": float(not failures),
            "kill_landed": float(kill_landed),
            "chaos_heartbeat_timeouts": float(
                chaos_stats.heartbeat_timeouts
            ),
            "chaos_requeued_chunks": float(chaos_stats.requeued_chunks),
            "chaos_serial_fallback_chunks": float(
                chaos_stats.serial_fallback_chunks
            ),
            "retained_entries": float(retained_entries),
            "orphan_teardown_ok": float(orphan_ok),
            "fail_closed_wrong_secret": float(
                fail_closed["wrong_secret"][0]
            ),
            "fail_closed_no_secret": float(fail_closed["no_secret"][0]),
        },
    )

    if not args.require_identical:
        # Mismatches are always *reported*; only gate when asked.
        failures = [f for f in failures if "differs" not in f]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
