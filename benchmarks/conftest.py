"""Shared benchmark fixtures.

Figure benchmarks time one full experiment regeneration and *also* write
the rendered series (the same rows the paper plots) to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can cite the exact
numbers produced on this machine.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``small`` (default),
``medium``, or ``paper``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "medium", "paper"):
        raise ValueError(
            f"REPRO_BENCH_SCALE must be small|medium|paper, got {scale!r}"
        )
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def record(out_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    (out_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def brite_instance(scale):
    from repro.eval import default_instance

    return default_instance("brite", scale=scale, seed=0)


@pytest.fixture(scope="session")
def planetlab_instance(scale):
    from repro.eval import default_instance

    return default_instance("planetlab", scale=scale, seed=0)
