"""Figure 5 benchmarks: unknown correlation patterns (mislabeled links).

Regenerates the four panels: CDF of the absolute error when 25% / 50% of
the congested links participate in a hidden flooding pattern the
algorithm cannot know about, on Brite and PlanetLab topologies (10% of
links congested throughout).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.eval import default_config, figure5_cdf, render_cdf

PANELS = [
    ("a", "brite", 0.25),
    ("b", "brite", 0.50),
    ("c", "planetlab", 0.25),
    ("d", "planetlab", 0.50),
]


@pytest.mark.benchmark(group="figure5")
@pytest.mark.parametrize("panel,topology,fraction", PANELS)
def test_fig5_panel(
    benchmark,
    panel,
    topology,
    fraction,
    brite_instance,
    planetlab_instance,
    scale,
    out_dir,
):
    instance = (
        brite_instance if topology == "brite" else planetlab_instance
    )
    config = default_config(scale)

    def run():
        return figure5_cdf(
            instance=instance,
            topology=topology,
            mislabeled_fraction=fraction,
            congested_fraction=0.10,
            config=config,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        f"fig5{panel}_{topology}_{int(fraction * 100)}",
        render_cdf(
            result,
            title=(
                f"Figure 5({panel}): CDF, {fraction:.0%} of congested "
                f"links mislabeled — {topology}, scale={scale}"
            ),
        ),
    )
    grid = list(result.grid)
    at_005 = grid.index(0.05)
    assert (
        result.curves["correlation"][at_005]
        >= result.curves["independence"][at_005]
    )
