"""What-if prediction: memoized exact vs naive, and cache warm vs cold.

Two legs over the same seeded synthetic demand (flows with random ECMP
split sets concentrated on a few paths, so links see genuinely
overlapping load):

* **exact vs naive** — the memoized per-link recursion
  (:func:`repro.predict.model.exceedance_exact`) against full joint
  enumeration of every flow→path assignment
  (:func:`~repro.predict.model.exceedance_naive`, the problib
  ``ExactCongestionProbability`` shape).  The recursion prunes
  can't-exceed subtrees and collapses equal partial loads, so it beats
  the ``prod(n_candidates)`` enumeration by orders of magnitude.
  Correctness is enforced both ways: exact must match naive to 1e-9
  and a seeded Monte Carlo estimate within the statistical tolerance.
* **warm vs cold cache** — a large Monte Carlo demand (above the
  exact-flow threshold, the production fallback) predicted through a
  :class:`repro.eval.cache.TrialCache`: the cold call pays the full
  resampling, the warm call is one content-hash plus an npz read.

The headline gates::

    python benchmarks/bench_predict.py --require-exact-speedup 5 \
        --require-cache-speedup 10

``--quick`` is the CI smoke mode (same gates, smaller sizes).  Every
run appends a record to ``BENCH_predict.json`` (see
``benchmarks/bench_util.py``).
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time

import numpy as np

from bench_util import write_bench_json

PROFILES = {
    "quick": {
        "generator": {
            "kind": "brite",
            "n_ases": 12,
            "routers_per_as": 3,
            "n_paths": 30,
            "seed": 7,
        },
        "exact_flows": 14,
        "exact_path_pool": 6,
        "exact_capacity": 4.0,
        "mc_flows": 32,
        "mc_path_pool": 10,
        "mc_capacity": 8.0,
        "mc_samples": 60_000,
        "agreement_samples": 60_000,
        "agreement_tol": 0.02,
        "repeats": 3,
        "default_exact_gate": 5.0,
        "default_cache_gate": 10.0,
    },
    "full": {
        "generator": {
            "kind": "brite",
            "n_ases": 12,
            "routers_per_as": 3,
            "n_paths": 30,
            "seed": 7,
        },
        "exact_flows": 16,
        "exact_path_pool": 6,
        "exact_capacity": 4.5,
        "mc_flows": 40,
        "mc_path_pool": 10,
        "mc_capacity": 10.0,
        "mc_samples": 150_000,
        "agreement_samples": 120_000,
        "agreement_tol": 0.015,
        "repeats": 5,
        "default_exact_gate": 5.0,
        "default_cache_gate": 10.0,
    },
}


def _synthetic_demand(topology, *, n_flows, path_pool, capacity, seed):
    """A seeded demand whose flows share a small path pool.

    Concentrating every split set on the first ``path_pool`` paths makes
    the covered links genuinely contended — the regime the exact
    recursion exists for — while rates stay heterogeneous enough that
    memoization has to work for its speedup.
    """
    from repro.predict.demand import DemandMatrix

    rng = np.random.default_rng(seed)
    rate_pool = [0.6, 1.0, 1.4]
    flows = []
    for index in range(n_flows):
        split = sorted(
            int(p) for p in rng.choice(path_pool, size=2, replace=False)
        )
        flows.append(
            {
                "name": f"f{index}",
                "rate": float(rng.choice(rate_pool)),
                "paths": split,
            }
        )
    return DemandMatrix.from_payload(
        {"flows": flows, "capacities": {"default": float(capacity)}}
    )


def run_benchmark(profile: dict) -> dict:
    from repro.eval.cache import TrialCache
    from repro.predict.model import (
        CongestionModel,
        exceedance_exact,
        exceedance_naive,
        exceedance_sample,
    )
    from repro.serve.registry import instance_from_payload

    instance = instance_from_payload({"generator": profile["generator"]})
    topology = instance.topology
    repeats = profile["repeats"]

    # ---- leg 1: memoized exact vs naive joint enumeration ------------
    demand = _synthetic_demand(
        topology,
        n_flows=profile["exact_flows"],
        path_pool=profile["exact_path_pool"],
        capacity=profile["exact_capacity"],
        seed=42,
    )
    resolved = demand.resolve(topology)
    limits = 0.85 * resolved.capacities
    states = int(
        np.prod([len(split) for split in resolved.candidates])
    )

    exact_s, naive_s = [], []
    exact = naive = None
    for _ in range(repeats):
        start = time.perf_counter()
        exact = exceedance_exact(resolved.rates, resolved.incidences, limits)
        exact_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        naive = exceedance_naive(resolved.rates, resolved.incidences, limits)
        naive_s.append(time.perf_counter() - start)

    if not np.allclose(exact, naive, atol=1e-9):
        raise SystemExit(
            "FAIL: memoized exact probabilities differ from the naive "
            f"enumeration (max gap {np.abs(exact - naive).max():.3g})"
        )
    print(
        f"exactness: memoized recursion == naive enumeration over "
        f"{states} joint states (atol 1e-9)"
    )
    sampled = exceedance_sample(
        resolved.rates,
        resolved.incidences,
        limits,
        rng=np.random.default_rng(2024),
        n_samples=profile["agreement_samples"],
    )
    mc_gap = float(np.abs(exact - sampled).max())
    if mc_gap > profile["agreement_tol"]:
        raise SystemExit(
            f"FAIL: exact vs Monte Carlo gap {mc_gap:.4f} exceeds the "
            f"{profile['agreement_tol']:.4f} tolerance at "
            f"{profile['agreement_samples']} samples"
        )
    print(
        f"agreement: exact vs Monte Carlo max gap {mc_gap:.4f} "
        f"(tol {profile['agreement_tol']:.3f} at "
        f"{profile['agreement_samples']} samples)"
    )

    # ---- leg 2: warm trial-cache hit vs cold prediction --------------
    mc_demand = _synthetic_demand(
        topology,
        n_flows=profile["mc_flows"],
        path_pool=profile["mc_path_pool"],
        capacity=profile["mc_capacity"],
        seed=43,
    )
    mc_resolved = mc_demand.resolve(topology)
    model = CongestionModel(
        exact_max_flows=16, mc_samples=profile["mc_samples"]
    )
    cold_s, warm_s = [], []
    with tempfile.TemporaryDirectory(prefix="bench-predict-") as root:
        cache = TrialCache(root)
        start = time.perf_counter()
        cold = model.predict(mc_resolved, seed=11, cache=cache)
        cold_s.append(time.perf_counter() - start)
        assert cold.method == "monte-carlo" and not cold.cached
        for _ in range(max(repeats, 3)):
            start = time.perf_counter()
            warm = model.predict(mc_resolved, seed=11, cache=cache)
            warm_s.append(time.perf_counter() - start)
            if not warm.cached:
                raise SystemExit(
                    "FAIL: repeated prediction missed the trial cache"
                )
            if warm.probability.tobytes() != cold.probability.tobytes():
                raise SystemExit(
                    "FAIL: cached prediction differs from the cold one"
                )
    print("cache: warm hits byte-identical to the cold prediction")

    return {
        "exact_mean_s": statistics.mean(exact_s),
        "naive_mean_s": statistics.mean(naive_s),
        "cold_predict_s": cold_s[0],
        "warm_predict_p50_s": statistics.median(warm_s),
        "joint_states": states,
        "mc_gap": mc_gap,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "benchmark memoized exact congestion prediction against "
            "naive enumeration, and warm cache hits against cold "
            "predictions"
        )
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller flow sets, same gates",
    )
    parser.add_argument(
        "--require-exact-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "fail unless naive mean / exact mean >= X (default: 5)"
        ),
    )
    parser.add_argument(
        "--require-cache-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "fail unless cold predict / warm predict p50 >= X "
            "(default: 10)"
        ),
    )
    args = parser.parse_args(argv)
    name = "quick" if args.quick else "full"
    profile = PROFILES[name]
    exact_gate = (
        args.require_exact_speedup
        if args.require_exact_speedup is not None
        else profile["default_exact_gate"]
    )
    cache_gate = (
        args.require_cache_speedup
        if args.require_cache_speedup is not None
        else profile["default_cache_gate"]
    )

    measured = run_benchmark(profile)
    exact_speedup = measured["naive_mean_s"] / measured["exact_mean_s"]
    cache_speedup = (
        measured["cold_predict_s"] / measured["warm_predict_p50_s"]
    )
    print(
        f"memoized exact: {measured['exact_mean_s'] * 1000:.2f} ms mean; "
        f"naive enumeration over {measured['joint_states']} states: "
        f"{measured['naive_mean_s'] * 1000:.2f} ms mean"
    )
    print(
        f"exact speedup: {exact_speedup:.1f}x (gate: >= {exact_gate:.1f}x)"
    )
    print(
        f"cold predict: {measured['cold_predict_s'] * 1000:.2f} ms; "
        f"warm cache hit: {measured['warm_predict_p50_s'] * 1000:.2f} ms p50"
    )
    print(
        f"cache speedup: {cache_speedup:.1f}x (gate: >= {cache_gate:.1f}x)"
    )

    joint_states = measured.pop("joint_states")
    mc_gap = measured.pop("mc_gap")
    path = write_bench_json(
        "predict",
        params={
            "profile": name,
            "generator": profile["generator"],
            "exact_flows": profile["exact_flows"],
            "mc_flows": profile["mc_flows"],
            "mc_samples": profile["mc_samples"],
            "joint_states": joint_states,
            "agreement_samples": profile["agreement_samples"],
            "exact_gate": exact_gate,
            "cache_gate": cache_gate,
        },
        timings_s=measured,
        ratios={
            "exact_over_naive": exact_speedup,
            "warm_over_cold": cache_speedup,
            "exact_mc_gap": mc_gap,
        },
    )
    print(f"recorded -> {path}")

    failed = False
    if exact_speedup < exact_gate:
        print(
            f"FAIL: exact speedup {exact_speedup:.1f}x below the "
            f"{exact_gate:.1f}x gate",
            file=sys.stderr,
        )
        failed = True
    if cache_speedup < cache_gate:
        print(
            f"FAIL: cache speedup {cache_speedup:.1f}x below the "
            f"{cache_gate:.1f}x gate",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
