"""Machine-readable benchmark records.

Each gated benchmark appends one run record to ``BENCH_<name>.json`` at
the repository root (override the directory with the
``REPRO_BENCH_JSON_DIR`` environment variable).  Records carry the git
revision, the raw timings, and the derived speedup ratios, so the perf
trajectory is diffable across PRs; the file keeps the last
:data:`MAX_RUNS` records.

Schema::

    {
      "format": "repro-bench",
      "version": 1,
      "bench": "<name>",
      "runs": [
        {"git_rev": "...", "unix_time": ..., "params": {...},
         "timings_s": {...}, "ratios": {...}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Records kept per benchmark file (oldest dropped first).
MAX_RUNS = 20

_FORMAT = "repro-bench"
_VERSION = 1


def git_revision() -> str:
    """Current git HEAD, or ``"unknown"`` outside a work tree."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return output or "unknown"


def write_bench_json(
    name: str,
    *,
    params: dict,
    timings_s: dict,
    ratios: dict,
    out_dir=None,
) -> pathlib.Path:
    """Append one run record to ``BENCH_<name>.json`` and return its path."""
    directory = pathlib.Path(
        out_dir
        or os.environ.get("REPRO_BENCH_JSON_DIR", "").strip()
        or REPO_ROOT
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    runs: list[dict] = []
    if path.exists():
        try:
            document = json.loads(path.read_text())
            if document.get("format") == _FORMAT:
                runs = list(document.get("runs", []))
        except (OSError, ValueError):
            runs = []
    runs.append(
        {
            "git_rev": git_revision(),
            "unix_time": time.time(),
            "params": params,
            "timings_s": timings_s,
            "ratios": ratios,
        }
    )
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "bench": name,
        "runs": runs[-MAX_RUNS:],
    }
    # Publish atomically: concurrent benchmarks sharing a directory must
    # never leave a torn file (a torn file reads as runs=[] next time).
    descriptor, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
