"""Figure 4 benchmarks: unidentifiable links.

Regenerates the four panels: CDF of the absolute error when 25% / 50% of
the congested links are unidentifiable, on Brite and PlanetLab
topologies (10% of links congested throughout, as in the paper).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.eval import default_config, figure4_cdf, render_cdf

PANELS = [
    ("a", "brite", 0.25),
    ("b", "brite", 0.50),
    ("c", "planetlab", 0.25),
    ("d", "planetlab", 0.50),
]


@pytest.mark.benchmark(group="figure4")
@pytest.mark.parametrize("panel,topology,fraction", PANELS)
def test_fig4_panel(
    benchmark,
    panel,
    topology,
    fraction,
    brite_instance,
    planetlab_instance,
    scale,
    out_dir,
):
    instance = (
        brite_instance if topology == "brite" else planetlab_instance
    )
    config = default_config(scale)

    def run():
        return figure4_cdf(
            instance=instance,
            topology=topology,
            unidentifiable_fraction=fraction,
            congested_fraction=0.10,
            config=config,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        f"fig4{panel}_{topology}_{int(fraction * 100)}",
        render_cdf(
            result,
            title=(
                f"Figure 4({panel}): CDF, {fraction:.0%} of congested "
                f"links unidentifiable — {topology}, scale={scale}"
            ),
        ),
    )
    # Paper claim: the correlation algorithm beats the baseline at the
    # small-error end even with unidentifiable links present.
    grid = list(result.grid)
    at_005 = grid.index(0.05)
    assert (
        result.curves["correlation"][at_005]
        >= result.curves["independence"][at_005]
    )
