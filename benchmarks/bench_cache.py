"""Persistent trial-result cache benchmark (the PR-2 perf headline).

Runs the figure-3 sweep four ways over the same instance and seed:

* **serial** — the engine without cache or pool (correctness reference);
* **pr1-pooled** — the pool path with the PR-1 transport: one task per
  ``pool.map`` item, one dict-of-arrays pickle back per trial;
* **cold-cached** — the current pooled path (chunked submission, packed
  float transport) writing every trial into a fresh cache;
* **warm-cached** — the same sweep again from the same store: every
  trial is a cache hit, zero compute.

All four must produce bit-identical figure data (always enforced).  The
headline gates::

    python benchmarks/bench_cache.py --scale medium \
        --require-speedup 10 --require-cold-parity 1.15 --require-hits

* warm-cached must be >= 10x faster than cold-cached (``--require-speedup``);
* cold-cached must be no slower than the PR-1 pooled baseline within a
  tolerance ratio (``--require-cold-parity``);
* the warm run must report 100% cache hits (``--require-hits``).

``--quick`` is the CI smoke mode (small instance, short sweep, reduced
snapshots).  Every run appends a record to ``BENCH_cache.json`` (see
``benchmarks/bench_util.py``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor

from bench_util import write_bench_json

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval import parallel as engine
from repro.eval.cache import TrialCache
from repro.eval.figures import (
    default_config,
    default_instance,
    figure3_sweep,
    figure3_sweep_tasks,
)
from repro.eval.metrics import absolute_error_stats
from repro.eval.parallel import pool_errors
from repro.eval.scenario import HIGH_CORRELATION_RANGE
from repro.simulate.experiment import ExperimentConfig

FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25)


def _pr1_pooled_sweep(instance, tasks, fractions, config, options, workers):
    """PR-1 transport: per-task submission, per-trial result pickles."""
    workers = max(1, min(workers, len(tasks)))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=engine._init_worker,
        initargs=(instance, config, options),
    ) as pool:
        results = list(pool.map(engine._run_in_worker, tasks))
    pooled = pool_errors(tasks, results, len(fractions))
    return [
        {
            "correlation": absolute_error_stats(errors["correlation"]),
            "independence": absolute_error_stats(errors["independence"]),
        }
        for errors in pooled
    ]


def _points_as_dicts(sweep_result):
    return [
        {"correlation": p.correlation, "independence": p.independence}
        for p in sweep_result.points
    ]


def _print_series(label, fractions, stats_per_point):
    print(f"  {label}:")
    for fraction, stats in zip(fractions, stats_per_point):
        corr, ind = stats["correlation"], stats["independence"]
        print(
            f"    f={fraction:4.0%}  corr mean={corr.mean:.4f} "
            f"p90={corr.p90:.4f} | ind mean={ind.mean:.4f} "
            f"p90={ind.p90:.4f}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "medium", "paper"), default="medium"
    )
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="workers for the pooled paths (0 = all cores)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persist the store here instead of a temporary directory "
            "(must be empty: the cold leg needs an unpopulated cache)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small instance, short sweep, reduced snapshots",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless warm-cached is >= X times faster than cold",
    )
    parser.add_argument(
        "--require-cold-parity",
        type=float,
        default=None,
        metavar="R",
        help=(
            "exit nonzero unless cold-cached time <= R x the PR-1 "
            "pooled baseline"
        ),
    )
    parser.add_argument(
        "--require-hits",
        action="store_true",
        help="exit nonzero unless the warm run reports 100%% cache hits",
    )
    args = parser.parse_args(argv)

    scale = "small" if args.quick else args.scale
    fractions = FRACTIONS[:2] if args.quick else FRACTIONS
    instance = default_instance("brite", scale=scale, seed=args.seed)
    config = default_config(scale)
    if args.quick:
        config = ExperimentConfig(n_snapshots=400, packets_per_path=400)
    options = AlgorithmOptions()
    workers = engine.resolve_workers(args.workers or 0)
    n_tasks = len(fractions) * args.trials
    print(
        f"trial-cache benchmark — scale={scale}, "
        f"{instance.n_links} links / {instance.n_paths} paths, "
        f"{len(fractions)} fractions × {args.trials} trial(s) = "
        f"{n_tasks} tasks, {config.n_snapshots} snapshots, "
        f"{workers} workers"
    )

    sweep_kwargs = dict(
        instance=instance,
        fractions=fractions,
        config=config,
        n_trials=args.trials,
        seed=args.seed,
        options=options,
    )

    t0 = time.perf_counter()
    serial = figure3_sweep(workers=1, **sweep_kwargs)
    t_serial = time.perf_counter() - t0
    print(f"serial (no cache):          {t_serial:7.2f} s")

    tasks = figure3_sweep_tasks(
        fractions, HIGH_CORRELATION_RANGE, args.trials, args.seed
    )
    t0 = time.perf_counter()
    pr1_points = _pr1_pooled_sweep(
        instance, tasks, fractions, config, options, workers
    )
    t_pr1 = time.perf_counter() - t0
    print(f"pr1-pooled (per-task pickles): {t_pr1:7.2f} s")

    with tempfile.TemporaryDirectory() as scratch:
        store = args.cache_dir or scratch
        if args.cache_dir and any(pathlib.Path(store).rglob("*.npz")):
            # A populated store would make the "cold" leg warm: the
            # speedup gate would fail spuriously and the parity gate
            # would no longer measure the compute path.
            print(
                f"FAIL: --cache-dir {store} already holds entries; "
                "the cold leg needs an empty store",
                file=sys.stderr,
            )
            return 1
        cold_cache = TrialCache(store)
        t0 = time.perf_counter()
        cold = figure3_sweep(workers=workers, cache=cold_cache, **sweep_kwargs)
        t_cold = time.perf_counter() - t0
        print(
            f"cold-cached pooled:         {t_cold:7.2f} s "
            f"({cold_cache.stats.render()})"
        )

        warm_cache = TrialCache(store)
        t0 = time.perf_counter()
        warm = figure3_sweep(workers=workers, cache=warm_cache, **sweep_kwargs)
        t_warm = time.perf_counter() - t0
        print(
            f"warm-cached:                {t_warm:7.2f} s "
            f"({warm_cache.stats.render()})"
        )

    _print_series("serial", fractions, _points_as_dicts(serial))

    failures = []
    series = {
        "pr1-pooled": pr1_points,
        "cold-cached": _points_as_dicts(cold),
        "warm-cached": _points_as_dicts(warm),
    }
    reference = _points_as_dicts(serial)
    for label, points in series.items():
        if points != reference:
            failures.append(
                f"{label} figure data differs from the serial reference"
            )
    if not failures:
        print("bit-identical: serial == pr1-pooled == cold == warm")

    warm_speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    cold_ratio = t_cold / t_pr1 if t_pr1 > 0 else float("inf")
    hit_rate = warm_cache.stats.hit_rate
    print(
        f"warm speedup: {warm_speedup:.2f}x  |  cold vs pr1: "
        f"{cold_ratio:.2f}x  |  warm run: "
        f"{100.0 * hit_rate:.1f}% hits"
    )

    if args.require_speedup is not None and warm_speedup < args.require_speedup:
        failures.append(
            f"warm speedup {warm_speedup:.2f}x below required "
            f"{args.require_speedup:.2f}x"
        )
    if (
        args.require_cold_parity is not None
        and cold_ratio > args.require_cold_parity
    ):
        failures.append(
            f"cold-cached {cold_ratio:.2f}x the PR-1 baseline exceeds "
            f"allowed {args.require_cold_parity:.2f}x"
        )
    if args.require_hits and (
        warm_cache.stats.misses or warm_cache.stats.hits != n_tasks
    ):
        failures.append(
            f"warm run not 100% hits: {warm_cache.stats.render()}"
        )

    write_bench_json(
        "cache",
        params={
            "scale": scale,
            "fractions": list(fractions),
            "trials": args.trials,
            "workers": workers,
            "seed": args.seed,
            "n_snapshots": config.n_snapshots,
            "n_tasks": n_tasks,
            "quick": args.quick,
        },
        timings_s={
            "serial": t_serial,
            "pr1_pooled": t_pr1,
            "cold_cached": t_cold,
            "warm_cached": t_warm,
        },
        ratios={
            "warm_speedup": warm_speedup,
            "cold_vs_pr1": cold_ratio,
            "warm_hit_rate": hit_rate,
        },
    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
