"""Batch-vs-scalar pipeline benchmark (the PR-1 refactor headline).

Runs the figure-3 sweep twice over the same instance and seed:

* **reference** — a faithful in-file copy of the pre-refactor pipeline:
  per-pair estimators called one at a time, the list-of-rows rank
  tracker with its Python reduction loop, a densified equation system,
  the per-column bounds loop in the L1 solver, a separate SVD for the
  baseline's rank, and a strictly serial trial loop;
* **batch** — the current library path: Gram-matrix estimators, the
  RREF rank tracker with batch candidate rejection, sparse COO assembly
  straight into HiGHS, and the parallel scenario engine.

Both paths regenerate the same figure (identical seed discipline), so
the printed series double as an equivalence eyeball check.  Usage::

    python benchmarks/bench_batch.py --scale medium          # headline
    python benchmarks/bench_batch.py --quick                 # CI smoke
    python benchmarks/bench_batch.py --scale medium --workers 4

The headline acceptance number is the medium-scale sweep speedup, which
must be >= 3x on a single core (parallel workers add on top).
"""

from __future__ import annotations

import argparse
import itertools
import math
import sys
import time

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from bench_util import write_bench_json

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.figures import (
    default_config,
    default_instance,
    figure3_sweep,
)
from repro.eval.metrics import (
    absolute_error_stats,
    potentially_congested_links,
)
from repro.eval.scenario import (
    HIGH_CORRELATION_RANGE,
    make_clustered_scenario,
)
from repro.simulate.experiment import ExperimentConfig
from repro.utils.rng import as_generator, spawn_children

FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25)


# ----------------------------------------------------------------------
# Reference (pre-refactor) pipeline — kept verbatim-in-spirit so the
# benchmark always measures against the historical scalar/serial path.
# ----------------------------------------------------------------------
class _ReferenceObservations:
    """Scalar estimators: one pairwise count per call, Python mask loop."""

    def __init__(self, path_states: np.ndarray) -> None:
        self._states = np.asarray(path_states, dtype=bool)
        self._good = ~self._states
        self._n_snapshots, self._n_paths = self._states.shape
        self._good_counts = self._good.sum(axis=0).astype(np.int64)

    @property
    def path_states(self) -> np.ndarray:
        return self._states

    @property
    def n_snapshots(self) -> int:
        return self._n_snapshots

    def _smooth(self, count: int) -> float:
        if count <= 0:
            return 0.5 / self._n_snapshots
        if count >= self._n_snapshots:
            return 1.0 - 0.5 / self._n_snapshots
        return count / self._n_snapshots

    def log_good(self, path_id: int) -> float:
        return math.log(self._smooth(int(self._good_counts[path_id])))

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        both = int(np.sum(self._good[:, path_a] & self._good[:, path_b]))
        return math.log(self._smooth(both))


class _ReferenceTracker:
    """The list-of-rows tracker with the per-row Python reduction loop."""

    def __init__(self, n_cols: int, tol: float = 1e-9) -> None:
        self._tol = tol
        self._rows: list[np.ndarray] = []
        self._pivots: list[int] = []

    @property
    def rank(self) -> int:
        return len(self._rows)

    def try_add(self, row: np.ndarray) -> bool:
        reduced = row.astype(np.float64, copy=True)
        for pivot, stored in zip(self._pivots, self._rows):
            coefficient = reduced[pivot]
            if coefficient != 0.0:
                reduced -= coefficient * stored
        pivot = int(np.argmax(np.abs(reduced)))
        if abs(reduced[pivot]) <= self._tol:
            return False
        reduced /= reduced[pivot]
        self._rows.append(reduced)
        self._pivots.append(pivot)
        return True


def _reference_build(topology, correlation, measurements):
    """Seed-era equation builder: scalar eligibility, dense rows."""
    n_links = topology.n_links
    tracker = _ReferenceTracker(n_links)
    rows: list[tuple[frozenset, float]] = []
    eligible = [
        path.id
        for path in topology.paths
        if correlation.path_is_correlation_free(path.id)
    ]
    eligible_set = set(eligible)

    def row_vector(link_ids):
        row = np.zeros(n_links, dtype=np.float64)
        row[sorted(link_ids)] = 1.0
        return row

    for path_id in eligible:
        link_ids = frozenset(topology.paths[path_id].link_ids)
        if tracker.try_add(row_vector(link_ids)):
            rows.append((link_ids, measurements.log_good(path_id)))
    if tracker.rank < n_links:
        seen: set[tuple[int, int]] = set()
        candidates: list[tuple[int, int]] = []
        for link_id in range(n_links):
            through = [
                path.id
                for path in topology.paths_through(link_id)
                if path.id in eligible_set
            ]
            for a, b in itertools.combinations(through, 2):
                pair = (a, b) if a < b else (b, a)
                if pair not in seen:
                    seen.add(pair)
                    candidates.append(pair)
        as_generator(0).shuffle(candidates)
        for path_a, path_b in candidates:
            if tracker.rank >= n_links:
                break
            if not correlation.pair_is_correlation_free(path_a, path_b):
                continue
            link_ids = frozenset(
                topology.paths[path_a].link_ids
            ) | frozenset(topology.paths[path_b].link_ids)
            if tracker.try_add(row_vector(link_ids)):
                rows.append(
                    (link_ids, measurements.log_good_pair(path_a, path_b))
                )
    matrix = np.zeros((len(rows), n_links), dtype=np.float64)
    values = np.empty(len(rows), dtype=np.float64)
    for index, (link_ids, value) in enumerate(rows):
        matrix[index, sorted(link_ids)] = 1.0
        values[index] = value
    return matrix, values


def _reference_solve_l1(matrix: np.ndarray, values: np.ndarray):
    """Seed-era L1 solve: densified input, per-column bounds loop."""
    n_rows, n_cols = matrix.shape
    sparse_matrix = sparse.csr_matrix(matrix)
    identity = sparse.identity(n_rows, format="csr")
    constraint = sparse.vstack(
        [
            sparse.hstack([sparse_matrix, -identity]),
            sparse.hstack([-sparse_matrix, -identity]),
        ],
        format="csr",
    )
    rhs = np.concatenate([values, -values])
    objective = np.concatenate([np.zeros(n_cols), np.ones(n_rows)])
    covered = np.asarray(np.abs(matrix).sum(axis=0) > 0).ravel()
    bounds: list[tuple[float | None, float | None]] = []
    for column in range(n_cols):
        bounds.append((None, 0.0) if covered[column] else (0.0, 0.0))
    bounds.extend([(0.0, None)] * n_rows)
    result = linprog(
        objective,
        A_ub=constraint,
        b_ub=rhs,
        bounds=bounds,
        method="highs",
    )
    return result.x[:n_cols]


def _reference_run_experiment(topology, model, config, seed):
    """Seed-era simulation loop: np.where + fresh temporaries."""
    from repro.model.loss import LossModel
    from repro.simulate.probes import PathProber, ProbeConfig

    rng = as_generator(seed)
    loss_model = LossModel(config.link_threshold)
    prober = PathProber(
        topology,
        ProbeConfig(
            packets_per_path=config.packets_per_path,
            link_threshold=config.link_threshold,
        ),
    )
    routing = sparse.csr_matrix(topology.routing_matrix())
    thresholds = prober.path_thresholds
    link_states = np.zeros((config.n_snapshots, topology.n_links), bool)
    path_states = np.zeros((config.n_snapshots, topology.n_paths), bool)
    done = 0
    while done < config.n_snapshots:
        batch = min(config.batch_size, config.n_snapshots - done)
        states = model.sample_states(rng, batch)
        uniforms = rng.random((batch, topology.n_links))
        loss = np.where(
            states,
            loss_model.link_threshold
            + uniforms * (1.0 - loss_model.link_threshold),
            uniforms * loss_model.link_threshold,
        )
        log_survival = np.log1p(-loss) @ routing.T
        true_loss = 1.0 - np.exp(log_survival)
        if config.packets_per_path is None:
            measured = true_loss
        else:
            lost = rng.binomial(config.packets_per_path, true_loss)
            measured = lost / config.packets_per_path
        link_states[done : done + batch] = states
        path_states[done : done + batch] = measured > thresholds
        done += batch
    return link_states, path_states


def _reference_infer_correlation(topology, correlation, observations):
    matrix, values = _reference_build(topology, correlation, observations)
    solution = np.minimum(_reference_solve_l1(matrix, values), 0.0)
    return np.clip(1.0 - np.exp(solution), 0.0, 1.0)


def _reference_infer_independent(topology, observations):
    matrix = np.asarray(topology.routing_matrix())
    values = np.array(
        [observations.log_good(path.id) for path in topology.paths]
    )
    solution, *_ = np.linalg.lstsq(matrix, values, rcond=None)
    int(np.linalg.matrix_rank(matrix))  # the seed's separate rank SVD
    solution = np.minimum(solution, 0.0)
    return np.clip(1.0 - np.exp(solution), 0.0, 1.0)


def reference_figure3_sweep(instance, fractions, config, n_trials, seed):
    """The serial pre-refactor sweep loop."""
    from repro.simulate.observations import PathObservations

    points = []
    sweep_rngs = spawn_children(seed, len(fractions))
    for fraction, rng in zip(fractions, sweep_rngs):
        trial_rngs = spawn_children(rng, 2 * n_trials)
        pooled: dict[str, list[np.ndarray]] = {}
        for trial in range(n_trials):
            scenario = make_clustered_scenario(
                instance,
                congested_fraction=fraction,
                per_set_range=HIGH_CORRELATION_RANGE,
                seed=trial_rngs[2 * trial],
            )
            (sim_rng,) = spawn_children(trial_rngs[2 * trial + 1], 1)
            _, path_states = _reference_run_experiment(
                instance.topology, scenario.truth_model, config, sim_rng
            )
            observations = _ReferenceObservations(path_states)
            truth = scenario.truth_model.link_marginals()
            scored = potentially_congested_links(
                instance.topology, PathObservations(path_states)
            )
            for name, probabilities in (
                (
                    "correlation",
                    _reference_infer_correlation(
                        instance.topology,
                        scenario.algorithm_correlation,
                        observations,
                    ),
                ),
                (
                    "independence",
                    _reference_infer_independent(
                        instance.topology, observations
                    ),
                ),
            ):
                errors = np.abs(probabilities - truth)[scored]
                pooled.setdefault(name, []).append(errors)
        points.append(
            {
                name: absolute_error_stats(np.concatenate(chunks))
                for name, chunks in pooled.items()
            }
        )
    return points


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _print_series(label, fractions, stats_per_point):
    print(f"  {label}:")
    for fraction, stats in zip(fractions, stats_per_point):
        corr, ind = stats["correlation"], stats["independence"]
        print(
            f"    f={fraction:4.0%}  corr mean={corr.mean:.4f} "
            f"p90={corr.p90:.4f} | ind mean={ind.mean:.4f} "
            f"p90={ind.p90:.4f}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "medium", "paper"), default="medium"
    )
    parser.add_argument("--trials", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the batch path (1 = serial, 0 = all cores)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small instance, short sweep, reduced snapshots",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit nonzero unless the sweep speedup reaches X",
    )
    args = parser.parse_args(argv)

    scale = "small" if args.quick else args.scale
    fractions = FRACTIONS[:2] if args.quick else FRACTIONS
    instance = default_instance("brite", scale=scale, seed=args.seed)
    config = default_config(scale)
    if args.quick:
        config = ExperimentConfig(n_snapshots=400, packets_per_path=400)
    print(
        f"figure-3 sweep benchmark — scale={scale}, "
        f"{instance.n_links} links / {instance.n_paths} paths, "
        f"{len(fractions)} fractions × {args.trials} trial(s), "
        f"{config.n_snapshots} snapshots"
    )

    t0 = time.perf_counter()
    reference_points = reference_figure3_sweep(
        instance, fractions, config, args.trials, args.seed
    )
    reference_seconds = time.perf_counter() - t0
    print(f"reference (scalar/serial): {reference_seconds:7.2f} s")
    _print_series("reference", fractions, reference_points)

    t0 = time.perf_counter()
    result = figure3_sweep(
        instance=instance,
        fractions=fractions,
        config=config,
        n_trials=args.trials,
        seed=args.seed,
        options=AlgorithmOptions(),
        workers=args.workers,
    )
    batch_seconds = time.perf_counter() - t0
    print(f"batch (vectorised{', parallel' if args.workers != 1 else ''}):"
          f"   {batch_seconds:7.2f} s")
    _print_series(
        "batch",
        fractions,
        [
            {"correlation": p.correlation, "independence": p.independence}
            for p in result.points
        ],
    )

    speedup = reference_seconds / batch_seconds
    print(f"speedup: {speedup:.2f}x")
    write_bench_json(
        "batch",
        params={
            "scale": scale,
            "fractions": list(fractions),
            "trials": args.trials,
            "workers": args.workers,
            "seed": args.seed,
            "n_snapshots": config.n_snapshots,
            "quick": args.quick,
        },
        timings_s={
            "reference": reference_seconds,
            "batch": batch_seconds,
        },
        ratios={"speedup": speedup},
    )
    if args.require_speedup is not None and speedup < args.require_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below required "
            f"{args.require_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
