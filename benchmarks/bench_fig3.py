"""Figure 3 benchmarks: performance under ideal conditions.

Regenerates the four panels of the paper's Figure 3:

* 3(a) mean absolute error vs % congested links (high correlation);
* 3(b) 90th percentile of the absolute error vs % congested links;
* 3(c) error CDF at 10% congested, highly correlated (>2/set);
* 3(d) error CDF at 10% congested, loosely correlated (≤2/set).

Each benchmark times one full regeneration (scenario + simulation + both
algorithms) and writes the series to ``benchmarks/out/``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record
from repro.eval import (
    default_config,
    figure3_cdf,
    figure3_sweep,
    render_cdf,
    render_sweep,
)

FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25)


@pytest.mark.benchmark(group="figure3")
def test_fig3a_fig3b_sweep(benchmark, brite_instance, scale, out_dir):
    """Figures 3(a) and 3(b): one sweep produces both series."""
    config = default_config(scale)

    def run():
        return figure3_sweep(
            instance=brite_instance,
            fractions=FRACTIONS,
            config=config,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        "fig3ab_sweep",
        render_sweep(
            result,
            title=(
                "Figure 3(a,b): error vs congested fraction — Brite, "
                f"high correlation, scale={scale}"
            ),
        ),
    )
    # Shape assertions (the paper's qualitative claims).
    first, last = result.points[0], result.points[-1]
    assert last.independence.mean > first.independence.mean
    assert last.correlation.mean <= last.independence.mean


@pytest.mark.benchmark(group="figure3")
def test_fig3c_cdf_high_correlation(
    benchmark, brite_instance, scale, out_dir
):
    config = default_config(scale)

    def run():
        return figure3_cdf(
            instance=brite_instance,
            correlation_level="high",
            congested_fraction=0.10,
            config=config,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        "fig3c_cdf_high",
        render_cdf(
            result,
            title=(
                "Figure 3(c): CDF of abs error @10% congested, high "
                f"correlation — Brite, scale={scale}"
            ),
        ),
    )
    grid = list(result.grid)
    at_01 = grid.index(0.1)
    assert (
        result.curves["correlation"][at_01]
        >= result.curves["independence"][at_01]
    )


@pytest.mark.benchmark(group="figure3")
def test_fig3d_cdf_loose_correlation(
    benchmark, brite_instance, scale, out_dir
):
    config = default_config(scale)

    def run():
        return figure3_cdf(
            instance=brite_instance,
            correlation_level="loose",
            congested_fraction=0.10,
            config=config,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        out_dir,
        "fig3d_cdf_loose",
        render_cdf(
            result,
            title=(
                "Figure 3(d): CDF of abs error @10% congested, loose "
                f"correlation — Brite, scale={scale}"
            ),
        ),
    )
    assert result.curves["correlation"][-1] == 1.0
