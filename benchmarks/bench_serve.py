"""Resident tomography service vs cold batch CLI (the PR-8 headline).

Measures the thing tomography-as-a-service exists for: once a topology
is loaded and its measurement-independent equation prep is warm, a
localization query costs simulation + inference only — no interpreter
start-up, no imports, no topology generation, no prep rebuild.

Three legs over the same generator spec and query:

* **warm service** — closed-loop sequential queries against a resident
  ``repro-tomography serve`` process (p50/p99 latency), plus a
  multi-client burst for throughput (QPS);
* **cold CLI** — ``repro-tomography localize`` subprocesses, one per
  query, each paying the full batch start-up;
* **bit-identity** — always enforced: the warm service answer for the
  gate seed must equal the cold CLI answer byte for byte.

The headline gate::

    python benchmarks/bench_serve.py --require-warm-gain 20

asserts ``cold CLI p50 / warm service p50 >= 20``.  ``--quick`` is the
CI smoke mode (tiny instance, fewer queries).  Every run appends a
record to ``BENCH_serve.json`` (see ``benchmarks/bench_util.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import threading
import time

from bench_util import write_bench_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PROFILES = {
    "quick": {
        "generator": {
            "kind": "brite",
            "n_ases": 12,
            "routers_per_as": 3,
            "n_paths": 30,
            "seed": 7,
        },
        "query": {
            "n_snapshots": 30,
            "packets_per_path": 200,
            "loc_snapshots": 2,
        },
        "warm_queries": 10,
        "burst_clients": 4,
        "burst_queries": 12,
        "cold_runs": 2,
    },
    "full": {
        "generator": {
            "kind": "brite",
            "n_ases": 40,
            "routers_per_as": 5,
            "n_paths": 120,
            "seed": 7,
        },
        "query": {
            "n_snapshots": 60,
            "packets_per_path": 400,
            "loc_snapshots": 4,
        },
        "warm_queries": 20,
        "burst_clients": 6,
        "burst_queries": 24,
        "cold_runs": 3,
    },
}

GATE_SEED = 3


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (
            os.path.join(REPO_ROOT, "src"),
            env.get("PYTHONPATH", ""),
        )
        if part
    )
    return env


def _localize_command(profile, seed):
    query = profile["query"]
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "localize",
        "--generator",
        json.dumps(profile["generator"]),
        "--seed",
        str(seed),
        "--n-snapshots",
        str(query["n_snapshots"]),
        "--packets-per-path",
        str(query["packets_per_path"]),
        "--loc-snapshots",
        str(query["loc_snapshots"]),
        "--no-cache",
    ]


def _run_cold_cli(profile, seed):
    """One full batch invocation; returns (wall seconds, result JSON)."""
    start = time.perf_counter()
    completed = subprocess.run(
        _localize_command(profile, seed),
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=_cli_env(),
        check=False,
    )
    elapsed = time.perf_counter() - start
    if completed.returncode != 0:
        raise RuntimeError(
            f"cold CLI failed (rc={completed.returncode}):\n"
            f"{completed.stderr[-2000:]}"
        )
    return elapsed, json.loads(completed.stdout)["result"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny instance, fewer queries",
    )
    parser.add_argument(
        "--require-warm-gain",
        type=float,
        default=None,
        metavar="RATIO",
        help=(
            "fail unless cold-CLI p50 / warm-service p50 is at least "
            "this ratio"
        ),
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="write BENCH_serve.json here (default: repo root)",
    )
    args = parser.parse_args(argv)

    profile = PROFILES["quick" if args.quick else "full"]
    query = dict(profile["query"], kind="localization")

    # Late imports: the service client is part of the measured package.
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.client import ServiceClient

    print(f"== bench_serve ({'quick' if args.quick else 'full'}) ==")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--no-cache",
        ],
        stdout=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
        env=_cli_env(),
    )
    try:
        banner = process.stdout.readline().strip()
        if not banner.startswith("serving on "):
            raise RuntimeError(f"unexpected service banner: {banner!r}")
        port = int(banner.rsplit(":", 1)[1])

        with ServiceClient(port=port, timeout=600) as client:
            load_start = time.perf_counter()
            fingerprint = client.load_topology(
                generator=profile["generator"], name="bench"
            )
            load_s = time.perf_counter() - load_start
            print(f"  loaded {fingerprint[:12]} in {load_s:.3f}s")

            # Warm-up: first query pays any lazy-import / allocator
            # costs inside the resident process.
            client.query(fingerprint, dict(query, seed=GATE_SEED))

            # Closed-loop warm latency.
            warm_s = []
            gate_answer = None
            for index in range(profile["warm_queries"]):
                seed = GATE_SEED + index
                start = time.perf_counter()
                answer = client.query(fingerprint, dict(query, seed=seed))
                warm_s.append(time.perf_counter() - start)
                if seed == GATE_SEED:
                    gate_answer = answer

            # Multi-client burst for throughput.
            burst_errors = []
            burst_lock = threading.Lock()
            counter = iter(range(profile["burst_queries"]))

            def burst_worker():
                try:
                    with ServiceClient(port=port, timeout=600) as own:
                        while True:
                            with burst_lock:
                                try:
                                    index = next(counter)
                                except StopIteration:
                                    return
                            own.query(
                                fingerprint,
                                dict(query, seed=1000 + index),
                            )
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    burst_errors.append(exc)

            threads = [
                threading.Thread(target=burst_worker)
                for _ in range(profile["burst_clients"])
            ]
            burst_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            burst_s = time.perf_counter() - burst_start
            if burst_errors:
                raise RuntimeError(f"burst failed: {burst_errors[0]}")
            stats = client.stats()
    finally:
        process.terminate()
        process.wait(timeout=30)

    # Cold CLI leg + bit-identity check on the gate seed.
    cold_s = []
    cold_reference = None
    for _ in range(profile["cold_runs"]):
        elapsed, result = _run_cold_cli(profile, GATE_SEED)
        cold_s.append(elapsed)
        cold_reference = result

    from repro.serve.queries import decode_vectors, encode_vectors

    reference = decode_vectors(cold_reference)
    served = gate_answer
    mismatched = [
        name
        for name in reference
        if encode_vectors({name: served[name]})[name]
        != encode_vectors({name: reference[name]})[name]
    ]
    if set(served) != set(reference) or mismatched:
        raise SystemExit(
            f"BIT-IDENTITY FAILED: service != cold CLI on {mismatched}"
        )
    print("  bit-identity: service == cold CLI (gate seed)")

    warm_p50 = statistics.median(warm_s)
    warm_p99 = _percentile(warm_s, 0.99)
    cold_p50 = statistics.median(cold_s)
    qps = profile["burst_queries"] / burst_s
    warm_gain = cold_p50 / warm_p50
    batcher = next(iter(stats["batchers"].values()))

    print(
        f"  warm service : p50={warm_p50 * 1000:8.1f}ms  "
        f"p99={warm_p99 * 1000:8.1f}ms  ({len(warm_s)} queries)"
    )
    print(
        f"  burst        : {qps:8.1f} QPS  "
        f"({profile['burst_clients']} clients, "
        f"max batch {batcher['max_batch']})"
    )
    print(
        f"  cold CLI     : p50={cold_p50 * 1000:8.1f}ms  "
        f"({len(cold_s)} runs)"
    )
    print(f"  warm gain    : {warm_gain:8.1f}x")

    write_bench_json(
        "serve",
        params={
            "quick": bool(args.quick),
            "generator": profile["generator"],
            "query": query,
            "warm_queries": profile["warm_queries"],
            "burst_clients": profile["burst_clients"],
            "burst_queries": profile["burst_queries"],
            "cold_runs": profile["cold_runs"],
        },
        timings_s={
            "topology_load": load_s,
            "warm_p50": warm_p50,
            "warm_p99": warm_p99,
            "cold_cli_p50": cold_p50,
            "burst_wall": burst_s,
        },
        ratios={"warm_gain": warm_gain, "qps": qps},
        out_dir=args.json_dir,
    )

    if args.require_warm_gain is not None and warm_gain < args.require_warm_gain:
        print(
            f"GATE FAILED: warm gain {warm_gain:.1f}x < "
            f"required {args.require_warm_gain:.1f}x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
