"""Incremental per-window update vs full recompute (the PR-9 headline).

Measures the thing the streaming engine exists for: once a window
stream is flowing, updating the estimate for one new window costs an
O(window) Gram accumulation, a y-vector gather over the cached equation
structure, and one solve — while a full recompute rebuilds the
observation caches (Gram, packed rows, log tables) over the *entire*
history and re-runs equation selection before the same solve.  The gap
therefore widens with history length; the gate is taken at >= 20
windows of history, per the streaming engine's contract.

Two legs over the same simulated window stream (scripted scenario,
fixed seeds):

* **incremental** — ``PathObservations.append_window`` +
  ``StreamingTomography.update`` per window, equation structure and
  prepared state warm;
* **recompute** — ``PathObservations`` over the concatenated history +
  ``infer_congestion`` per window, against the same warm prepared
  registry (so the comparison isolates the streaming machinery, not
  prep caching, which PR 8 already measures).

Bit-identity is always enforced: after the last window, the streaming
engine's full-history answer must equal the batch answer byte for byte.

The headline gate::

    python benchmarks/bench_stream.py --require-speedup 5

asserts ``recompute mean / incremental mean >= 5`` over the gated
windows.  ``--quick`` is the CI smoke mode (shorter windows, gate 2x by
default).  Every run appends a record to ``BENCH_stream.json`` (see
``benchmarks/bench_util.py``).
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

import numpy as np

from bench_util import write_bench_json

PROFILES = {
    "quick": {
        "generator": {
            "kind": "brite",
            "n_ases": 20,
            "routers_per_as": 3,
            "n_paths": 60,
            "seed": 7,
        },
        "n_windows": 24,
        "window_size": 1500,
        "history_windows": 20,
        "packets_per_path": 400,
        "default_gate": 2.0,
    },
    "full": {
        "generator": {
            "kind": "brite",
            "n_ases": 20,
            "routers_per_as": 3,
            "n_paths": 60,
            "seed": 7,
        },
        "n_windows": 30,
        "window_size": 5000,
        "history_windows": 20,
        "packets_per_path": 400,
        "default_gate": 5.0,
    },
}

SCENARIO_SEED = 11


def _simulate_windows(instance, profile):
    from repro.eval.scenario import make_clustered_scenario
    from repro.model.loss import LossModel
    from repro.simulate.probes import PathProber, ProbeConfig
    from repro.simulate.stream import SnapshotStream
    from repro.utils.rng import spawn_children

    scenario_seed, stream_seed = spawn_children(SCENARIO_SEED, 2)
    scenario = make_clustered_scenario(instance, seed=scenario_seed)
    stream = SnapshotStream(
        scenario.truth_model,
        LossModel(),
        PathProber(
            instance.topology,
            ProbeConfig(packets_per_path=profile["packets_per_path"]),
        ),
        window_size=profile["window_size"],
        rng=stream_seed,
    )
    return [
        window.path_states
        for window in stream.windows(profile["n_windows"])
    ]


def run_benchmark(profile):
    from repro.core.correlation_algorithm import infer_congestion
    from repro.core.prepared import PreparedRegistry
    from repro.core.streaming import StreamingTomography
    from repro.serve.registry import instance_from_payload
    from repro.simulate.observations import PathObservations

    instance = instance_from_payload(
        {"generator": profile["generator"]}
    )
    print(
        f"simulating {profile['n_windows']} windows x "
        f"{profile['window_size']} snapshots "
        f"({instance.topology.n_paths} paths) ...",
        flush=True,
    )
    windows = _simulate_windows(instance, profile)
    history = profile["history_windows"]

    # Both legs share one warm prepared registry: the comparison is
    # streaming machinery vs observation/equation rebuild, not prep.
    registry = PreparedRegistry()
    engine = StreamingTomography(
        instance.topology, instance.correlation, registry=registry
    )

    incremental_s = []
    observations = None
    for index, window in enumerate(windows):
        start = time.perf_counter()
        if observations is None:
            observations = PathObservations(window)
        else:
            observations.append_window(window)
        engine.update(observations)
        elapsed = time.perf_counter() - start
        if index >= history:
            incremental_s.append(elapsed)

    recompute_s = []
    for index in range(history, len(windows)):
        start = time.perf_counter()
        full = PathObservations(
            np.concatenate(windows[: index + 1], axis=0)
        )
        infer_congestion(
            instance.topology,
            instance.correlation,
            full,
            registry=registry,
        )
        recompute_s.append(time.perf_counter() - start)

    # Bit-identity: the streaming engine's full-history answer must be
    # byte-equal to the cold batch answer over the same snapshots.
    streamed = engine.template().infer(observations)
    batch = infer_congestion(
        instance.topology,
        instance.correlation,
        PathObservations(np.concatenate(windows, axis=0)),
        registry=registry,
    )
    identical = (
        streamed.congestion_probabilities.tobytes()
        == batch.congestion_probabilities.tobytes()
        and streamed.log_good.tobytes() == batch.log_good.tobytes()
    )
    if not identical:
        raise SystemExit(
            "FAIL: streaming full-history answer differs from the "
            "batch answer — the incremental state has diverged"
        )
    print("bit-identity: streaming final == batch final (byte-equal)")

    return {
        "incremental_mean_s": statistics.mean(incremental_s),
        "incremental_p50_s": statistics.median(incremental_s),
        "recompute_mean_s": statistics.mean(recompute_s),
        "recompute_p50_s": statistics.median(recompute_s),
        "gated_windows": len(incremental_s),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "benchmark the incremental windowed engine against full "
            "per-window recompute"
        )
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: shorter windows, default gate 2x",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help=(
            "fail unless recompute mean / incremental mean >= X "
            "(default: 5 full, 2 --quick)"
        ),
    )
    args = parser.parse_args(argv)
    name = "quick" if args.quick else "full"
    profile = PROFILES[name]
    gate = (
        args.require_speedup
        if args.require_speedup is not None
        else profile["default_gate"]
    )

    measured = run_benchmark(profile)
    speedup = (
        measured["recompute_mean_s"] / measured["incremental_mean_s"]
    )
    print(
        f"incremental per-window update: "
        f"{measured['incremental_mean_s'] * 1000:.2f} ms mean "
        f"(p50 {measured['incremental_p50_s'] * 1000:.2f} ms) over "
        f"{measured['gated_windows']} windows at >= "
        f"{profile['history_windows']}-window history"
    )
    print(
        f"full recompute:                "
        f"{measured['recompute_mean_s'] * 1000:.2f} ms mean "
        f"(p50 {measured['recompute_p50_s'] * 1000:.2f} ms)"
    )
    print(f"speedup: {speedup:.1f}x (gate: >= {gate:.1f}x)")

    gated_windows = measured.pop("gated_windows")
    path = write_bench_json(
        "stream",
        params={
            "profile": name,
            "generator": profile["generator"],
            "n_windows": profile["n_windows"],
            "window_size": profile["window_size"],
            "history_windows": profile["history_windows"],
            "gated_windows": gated_windows,
            "gate": gate,
        },
        timings_s=measured,
        ratios={"incremental_speedup": speedup},
    )
    print(f"recorded -> {path}")

    if speedup < gate:
        print(
            f"FAIL: incremental speedup {speedup:.1f}x below the "
            f"{gate:.1f}x gate",
            file=sys.stderr,
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
